"""Thermal design exploration for stacked 2T-nC FeRAM on a compute die.

Reproduces the paper's §VII analysis (peak 351.88 K for the 5-layer,
2 GB die on a 28 W TPU), then explores beyond it: capacitor-deck count,
package quality, and ferroelectric stability margins — the kind of
design sweep a system architect would run with this library.

Run:  python examples/thermal_stack_design.py
"""

from repro.experiments.fig7_thermal import (
    GRID_NX,
    GRID_NY,
    solve_workload_stack,
)
from repro.ferro import FAB_HZO, check_thermal_stability
from repro.thermal import (
    build_fig7_stack,
    memory_power_maps,
    solve_steady_state,
    tpu_power_map,
)
from repro.workloads import BitmapIndexQuery, make_workloads

GIB = 1 << 30


def paper_point() -> None:
    print("-- the paper's design point (Fig. 7) --")
    result = solve_workload_stack(BitmapIndexQuery(GIB))
    print(f"  peak temperature: {result.peak_k:.2f} K (paper: 351.88 K)")
    print("  layer profile (mean / peak K):")
    for name, (mean, peak) in result.layer_profile().items():
        print(f"    {name:<12} {mean:7.2f} / {peak:7.2f}")
    stability = check_thermal_stability(FAB_HZO, result.peak_k)
    print(f"  ferroelectric stable: {stability.stable} "
          f"(Pr retained: {stability.pr_fraction:.1%})\n")


def workload_insensitivity() -> None:
    print("-- peak temperature across all eight workloads --")
    peaks = {}
    for workload in make_workloads(GIB):
        result = solve_workload_stack(workload)
        peaks[workload.title] = result.peak_k
        print(f"  {workload.title:<24} {result.peak_k:7.2f} K")
    spread = max(peaks.values()) - min(peaks.values())
    print(f"  spread: {spread:.2f} K — the profile is dominated by the "
          f"28 W compute die, as the paper reports\n")


def deck_count_sweep() -> None:
    print("-- capacitor-deck sweep: n = 1..5 (2T-nC, n+2 layers) --")
    for n_caps in range(1, 6):
        stack = build_fig7_stack(n_caps)
        power = {0: tpu_power_map(GRID_NX, GRID_NY)}
        memory_layers = list(range(2, 2 + n_caps + 2))
        power.update(memory_power_maps(0.3, memory_layers,
                                       GRID_NX, GRID_NY))
        result = solve_steady_state(stack, power, nx=GRID_NX, ny=GRID_NY)
        print(f"  n = {n_caps} ({n_caps + 2} device layers): peak "
              f"{result.peak_k:.2f} K")
    print("  (extra thin BEOL decks barely move the thermals)\n")


def package_sensitivity() -> None:
    print("-- package-quality sensitivity --")
    workload = BitmapIndexQuery(GIB)
    for r_pkg, label in ((0.5, "forced-air sink"),
                         (1.691, "paper calibration"),
                         (3.0, "weak natural convection")):
        result = solve_workload_stack(workload,
                                      package_resistance_k_w=r_pkg)
        stability = check_thermal_stability(FAB_HZO, result.peak_k)
        print(f"  R_pkg = {r_pkg:5.2f} K/W ({label:<24}): peak "
              f"{result.peak_k:7.2f} K, stable: {stability.stable}")
    print()


def main() -> None:
    print("=== Thermal design of stacked 2T-nC FeRAM ===\n")
    paper_point()
    workload_insensitivity()
    deck_count_sweep()
    package_sensitivity()


if __name__ == "__main__":
    main()
