"""Bulk-bitwise database analytics served by the sharded query service.

The workload the paper's intro motivates: bitmap-index analytics over a
large user table.  This example stands up a :class:`BitwiseService`
(named bit columns sharded across 2T-nC FeRAM engine instances), runs a
batch of compiled queries with per-query energy attribution, shows the
compiler's primitive-count win over naive op chaining and the result
cache, and finally projects the paper's 1 GB Fig. 6 numbers in counting
mode.

Run:  python examples/bulk_database_analytics.py
"""

import numpy as np

from repro.arch.expr import compile_expr
from repro.service import BitwiseService
from repro.workloads import SetIntersection, SetUnion, run_comparison, run_fig6

N_USERS = 1 << 20  # one million users


def build_service() -> tuple[BitwiseService, dict[str, np.ndarray]]:
    rng = np.random.default_rng(7)
    table = {
        "active_jan": (rng.random(N_USERS) < 0.30).astype(np.uint8),
        "active_feb": (rng.random(N_USERS) < 0.30).astype(np.uint8),
        "premium": (rng.random(N_USERS) < 0.10).astype(np.uint8),
        "eu_region": (rng.random(N_USERS) < 0.40).astype(np.uint8),
        "beta_optin": (rng.random(N_USERS) < 0.15).astype(np.uint8),
    }
    service = BitwiseService("feram-2tnc", n_bits=N_USERS, n_shards=4)
    for name, bits in table.items():
        service.create_column(name, bits)
    return service, table


def batched_query_demo(service: BitwiseService,
                       table: dict[str, np.ndarray]) -> None:
    print("-- batched analytics (1M users x 4 shards, bit-exact) --")
    queries = [
        "active_jan | active_feb",                      # any activity
        "active_jan & active_feb",                      # retained
        "active_jan & ~active_feb",                     # churned
        "(active_jan & active_feb & ~beta_optin) | "
        "(premium & eu_region & beta_optin)",           # campaign target
    ]
    for result in service.execute(queries):
        print(f"  {result.query:<55} {result.count:>7} hits   "
              f"{result.energy_j * 1e6:7.1f} uJ   "
              f"{result.primitives_per_row}/row primitives")
    # Cross-check one against numpy.
    churned = service.query("active_jan & ~active_feb")
    expected = int((table["active_jan"] & (1 - table["active_feb"])).sum())
    assert churned.count == expected
    stats = service.stats()
    print(f"  service: {stats['queries_served']} queries, "
          f"{stats['cache_hits']} cache hits, "
          f"{stats['energy_total_nj'] / 1e6:.3f} mJ total\n")


def compiler_win_demo(service: BitwiseService) -> None:
    print("-- expression compiler vs naive chaining --")
    cases = {
        "bitmap predicate":
            "(active_jan & active_feb & ~premium) | "
            "(eu_region & beta_optin & premium)",
        "shared sub-terms":
            "(active_jan & active_feb & ~premium) | "
            "(active_jan & active_feb & beta_optin) | "
            "(eu_region & premium)",
    }
    for label, query in cases.items():
        plan = service.compile(query)
        print(f"  {label:<18} {plan.primitives:>2} ACPs/row compiled vs "
              f"{plan.naive_primitives} naive "
              f"({plan.naive_primitives - plan.primitives} saved)")
    # The cache serves canonically-equal queries without re-execution.
    first = service.query("premium & eu_region")
    again = service.query("eu_region & premium")  # commuted
    print(f"  commuted re-query  cache_hit={again.cache_hit} "
          f"(first run cost {first.energy_j * 1e6:.1f} uJ, "
          f"re-query 0.0 uJ)\n")


def paper_scale_projection() -> None:
    print("-- paper-scale projection: Fig. 6 at 1 GB (counting mode) --")
    table = run_fig6(1 << 30)
    print("\n".join("  " + line for line in table.format().splitlines()))
    print(f"\n  headline: {table.mean_energy_ratio():.2f}x lower energy, "
          f"{table.mean_cycle_ratio():.2f}x fewer cycles "
          f"(paper: 2.5x / 2x)")


def main() -> None:
    print("=== Bulk-bitwise analytics on 2T-nC FeRAM ===\n")
    service, table = build_service()
    try:
        batched_query_demo(service, table)
        compiler_win_demo(service)
    finally:
        service.close()
    paper_scale_projection()
    # Individual set operations keep the paper's advantage.
    print("\n-- individual set operations (16 MB, counting mode) --")
    for cls in (SetUnion, SetIntersection):
        comparison = run_comparison(cls(16 << 20))
        print(f"  {cls.name:<18} E {comparison.energy_ratio:.2f}x  "
              f"C {comparison.cycle_ratio:.2f}x")
    # And the compiler's plan for the Fig. 6 bitmap predicate:
    plan = compile_expr("(c0 & c1 & ~c2) | (c3 & c4 & c5)")
    print(f"\n  fig6 bitmap query: {plan.primitives} ACPs/row compiled "
          f"vs {plan.naive_primitives} naive")


if __name__ == "__main__":
    main()
