"""Bulk-bitwise database analytics on DRAM vs 2T-nC FeRAM.

The workload the paper's intro motivates: bitmap-index analytics over a
large table.  This example runs a verified (bit-exact) query plus set
algebra on both technologies at MB scale, then projects the paper's
1 GB Fig. 6 numbers in counting mode.

Run:  python examples/bulk_database_analytics.py
"""

import numpy as np

from repro.arch import make_engine
from repro.workloads import (
    BitmapIndexQuery,
    SetIntersection,
    SetUnion,
    run_comparison,
    run_fig6,
)


def verified_query_demo() -> None:
    print("-- verified bitmap query (4 MB, bit-exact on both techs) --")
    workload = BitmapIndexQuery(4 << 20)
    comparison = run_comparison(workload, functional=True)
    for result in (comparison.dram, comparison.feram):
        print(f"  {result.technology:<12} energy {result.energy_j * 1e3:8.3f} mJ   "
              f"cycles {result.cycles:>9}   verified={result.verified}")
    print(f"  FeRAM advantage: {comparison.energy_ratio:.2f}x energy, "
          f"{comparison.cycle_ratio:.2f}x cycles\n")


def set_algebra_demo() -> None:
    print("-- set algebra: churned-user analysis --")
    rng = np.random.default_rng(7)
    n = 1 << 20  # one million users
    active_jan = (rng.random(n) < 0.3).astype(np.uint8)
    active_feb = (rng.random(n) < 0.3).astype(np.uint8)

    eng = make_engine("feram-2tnc", functional=True)
    jan = eng.load(active_jan, "jan")
    feb = eng.load(active_feb, "feb", group_with=jan)
    either = eng.or_(jan, feb, "either")
    both = eng.and_(jan, feb, "both")
    churned = eng.andnot(jan, feb, "churned")
    stats = eng.finalize()

    print(f"  users active either month : {either.logical_bits().sum():>7}")
    print(f"  users active both months  : {both.logical_bits().sum():>7}")
    print(f"  churned (jan, not feb)    : {churned.logical_bits().sum():>7}")
    print(f"  in-memory cost: {stats.total_energy_j * 1e6:.1f} uJ, "
          f"{stats.total_cycles} cycles "
          f"({stats.counts} commands)\n")

    # Cross-check against numpy.
    assert either.logical_bits().sum() == (active_jan | active_feb).sum()
    assert both.logical_bits().sum() == (active_jan & active_feb).sum()
    assert churned.logical_bits().sum() == (
        active_jan & (1 - active_feb)).sum()


def paper_scale_projection() -> None:
    print("-- paper-scale projection: Fig. 6 at 1 GB (counting mode) --")
    table = run_fig6(1 << 30)
    print("\n".join("  " + line for line in table.format().splitlines()))
    print(f"\n  headline: {table.mean_energy_ratio():.2f}x lower energy, "
          f"{table.mean_cycle_ratio():.2f}x fewer cycles "
          f"(paper: 2.5x / 2x)")


def main() -> None:
    print("=== Bulk-bitwise analytics: DRAM/Ambit vs 2T-nC FeRAM ===\n")
    verified_query_demo()
    set_algebra_demo()
    paper_scale_projection()
    # Also show that individual set ops keep the same advantage.
    print("\n-- individual set operations (16 MB, counting mode) --")
    for cls in (SetUnion, SetIntersection):
        comparison = run_comparison(cls(16 << 20))
        print(f"  {cls.name:<18} E {comparison.energy_ratio:.2f}x  "
              f"C {comparison.cycle_ratio:.2f}x")


if __name__ == "__main__":
    main()
