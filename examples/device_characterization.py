"""Virtual probe station: characterize the fabricated 2T-nC test chip.

Replays the paper's §IV measurement campaign on the device models:
transfer curve, temperature-dependent P-V loops, endurance, switching
kinetics, QNRO read disturb, and the measured MINORITY levels.

Run:  python examples/device_characterization.py
"""

import numpy as np

from repro.core.logic import minority3
from repro.core.sense_amp import SenseAmp, reference_between
from repro.experiments.fig4_minority import make_fabricated_cell
from repro.ferro import (
    FAB_HZO,
    NVDRAM_CAL,
    UC_PER_CM2,
    endurance_sweep,
    minimum_full_switch_pulse,
    pulse_switched_polarization,
    reads_until_disturb,
    temperature_family,
)
from repro.spice.mosfet import FAB_NMOS, Mosfet, subthreshold_swing_mv_per_dec


def transfer_curve() -> None:
    print("-- transistor transfer curve (Fig. 4(d)) --")
    dut = Mosfet("dut", "d", "g", "s", FAB_NMOS)
    for vg in (-1.0, 0.0, 1.0, 2.0, 3.0):
        print(f"  VG = {vg:5.1f} V   ID = {dut.ids(vg, 0.1):.3e} A")
    sweep = [dut.ids(v, 0.1) for v in np.linspace(-1, 3, 81)]
    print(f"  on/off = {max(sweep) / min(sweep):.2e} (paper: 1e7), "
          f"SS = {subthreshold_swing_mv_per_dec(FAB_NMOS):.0f} mV/dec "
          f"(paper: 110)\n")


def pv_loops() -> None:
    print("-- P-V loops vs temperature (Fig. 4(e)) --")
    family = temperature_family(FAB_HZO)
    for temp, metrics in family.items():
        print(f"  T = {temp:5.0f} K   Pr = {metrics['pr_plus'] * UC_PER_CM2:5.2f} "
              f"uC/cm2   Vc = {metrics['vc_plus']:4.2f} V")
    print("  (Pr nearly constant; Vc decreases with temperature)\n")


def endurance() -> None:
    print("-- endurance, +-3 V / 10 us cycling (Fig. 4(f)) --")
    cycles, pr_plus, _ = endurance_sweep(FAB_HZO)
    for k in range(0, len(cycles), 6):
        print(f"  N = {cycles[k]:9.0f}   Pr = "
              f"{pr_plus[k] * UC_PER_CM2:5.2f} uC/cm2")
    print()


def kinetics() -> None:
    print("-- switching kinetics (Fig. 4(g,h)) --")
    for amp in (1.5, 2.0, 2.5, 3.0):
        t90 = minimum_full_switch_pulse(FAB_HZO, amp)
        dp_100us = pulse_switched_polarization(FAB_HZO, amp, 1e-4)
        label = f"{t90 * 1e9:.0f} ns" if np.isfinite(t90) else ">10 ms"
        print(f"  {amp:3.1f} V: 90% switch in {label:>8}, "
              f"dP(100 us) = {dp_100us * UC_PER_CM2:5.1f} uC/cm2")
    print("  (paper: full switching below 300 ns at +-3 V)\n")


def read_disturb() -> None:
    print("-- QNRO accumulative read disturb (paper SII) --")
    for v_read in (0.5, 0.6, 0.75):
        count = reads_until_disturb(NVDRAM_CAL, v_read=v_read,
                                    t_read=50e-9)
        print(f"  V_read = {v_read:4.2f} V: {count:>5} reads before 50% "
              f"margin loss")
    print("  (non-destructive enough to amortize write-backs)\n")


def measured_minority() -> None:
    print("-- measured MINORITY levels (Fig. 4(i,j)) --")
    cell = make_fabricated_cell()
    levels = cell.level_sweep(mode="charge")
    by_ones = {}
    for state, current in levels.items():
        by_ones.setdefault(sum(state), []).append(current)
    for ones in range(4):
        mean = np.mean(by_ones[ones])
        print(f"  #1s = {ones}: I_RBL = {mean * 1e6:5.2f} uA")
    ref = reference_between(levels[(0, 1, 1)], levels[(0, 0, 1)])
    sa = SenseAmp(ref)
    ok = all(sa.compare(levels[(a, b, c)]) == minority3(a, b, c)
             for a in (0, 1) for b in (0, 1) for c in (0, 1))
    print(f"  comparator between '001' and '011' levels -> "
          f"MINORITY correct for all 8 states: {ok}")


def main() -> None:
    print("=== Virtual probe station: 2T-nC FeRAM test chip ===\n")
    transfer_curve()
    pv_loops()
    endurance()
    kinetics()
    read_disturb()
    measured_minority()


if __name__ == "__main__":
    main()
