"""Async multi-tenant serving demo: clients driving the TCP server.

Stands up the asyncio JSON-lines query server over one shared
:class:`BitwiseService` table and drives it end-to-end with asyncio
stream clients:

* two tenants ingest their own columns into isolated namespaces of
  the shared store (same logical names, different data);
* concurrent query streams from several connections coalesce into
  shared vector batches inside the scheduler's batching window;
* one tenant mutates a column in place (`update_column` /
  `write_slice`) — dirty rows are charged TBA-write energy through
  the QNRO write-back economics, and *only* the plans reading that
  column lose their cache entries (dependency-aware invalidation);
* result payloads are paged back over the wire with the ``bits`` op;
* a second connection negotiates the **binary wire** (``hello`` with
  ``"wire": "binary"``) and moves the same bulk payloads as packed
  little-endian words instead of JSON digit arrays;
* a flooding client overruns its admission limit and recovers by
  honoring the server's machine-readable ``retry_after_ms`` hint with
  jittered exponential backoff (the sync :class:`repro.client.
  ServiceClient` packages the same loop, plus reconnect).

Run:  PYTHONPATH=src python examples/serving_client.py
"""

import asyncio
import json
import threading
import time

import numpy as np

from repro.service import BitwiseService, serve_tcp
from repro.service import wire

N_BITS = 1 << 16


class Client:
    """A tiny asyncio client bound to one tenant.

    Speaks JSON-lines by default; pass ``wire="binary"`` to negotiate
    the packed-word frame protocol during the hello (the hello itself
    always flows as a JSON line).
    """

    def __init__(self, port: int, tenant: str | None = None,
                 wire_mode: str = "json"):
        self.port = port
        self.tenant = tenant
        self.wire = wire_mode
        self.latencies: list[float] = []
        self.encode_s = 0.0  # client-side wire-encode time

    async def __aenter__(self):
        self.reader, self.writer = await asyncio.open_connection(
            "127.0.0.1", self.port, limit=1 << 26)
        hello = {"op": "hello", "tenant": self.tenant}
        if self.wire != "json":
            hello["wire"] = self.wire
        self.writer.write((json.dumps(hello) + "\n").encode())
        await self.writer.drain()
        response = json.loads(await self.reader.readline())
        if not response.get("ok"):
            raise RuntimeError(response.get("error"))
        return self

    async def __aexit__(self, *exc_info):
        self.writer.close()

    async def call(self, request: dict) -> dict:
        response = await self.call_raw(request)
        if not response.get("ok"):
            raise RuntimeError(response.get("error"))
        return response

    async def call_raw(self, request: dict) -> dict:
        """One exchange; error responses return instead of raising."""
        start = time.perf_counter()
        if self.wire == "binary":
            response = await self._call_binary(request)
        else:
            encode_start = time.perf_counter()
            line = (json.dumps(request) + "\n").encode()
            self.encode_s += time.perf_counter() - encode_start
            self.writer.write(line)
            await self.writer.drain()
            response = json.loads(await self.reader.readline())
        self.latencies.append(time.perf_counter() - start)
        return response

    async def call_with_retry(self, request: dict, *,
                              max_attempts: int = 8,
                              base_ms: float = 2.0,
                              rng: np.random.Generator | None = None,
                              ) -> tuple[dict, int]:
        """Retry loop honoring the server's retry_after_ms hint.

        Admission rejections back off for the hinted duration (or
        jittered exponential growth when no hint arrives) and retry;
        anything else is final.  Returns (response, retries)."""
        rng = rng or np.random.default_rng()
        for attempt in range(max_attempts):
            response = await self.call_raw(request)
            if response.get("ok"):
                return response, attempt
            if response.get("code") != "admission":
                raise RuntimeError(response.get("error"))
            hint_ms = response.get("retry_after_ms",
                                   base_ms * 2 ** attempt)
            jitter = 1.0 + rng.uniform(-0.2, 0.2)
            await asyncio.sleep(hint_ms * jitter / 1e3)
        raise RuntimeError(f"gave up after {max_attempts} attempts")

    async def _call_binary(self, request: dict) -> dict:
        meta = dict(request)
        bits = meta.pop("bits", None)
        if bits is not None:  # one flat payload, not segments
            bits = np.asarray(bits, dtype=np.uint8)
        if meta.get("op") == "append_rows" and meta.get("values"):
            values = meta.pop("values")
            meta["value_names"] = list(values)
            bits = [np.asarray(v) for v in values.values()]
        encode_start = time.perf_counter()
        frame = wire.encode_frame(wire.KIND_REQUEST, meta, bits)
        self.encode_s += time.perf_counter() - encode_start
        self.writer.write(frame)
        await self.writer.drain()
        response, page = await wire.read_frame_async(self.reader)
        if page is not None:
            response["bits"] = page  # 0/1 ndarray, not text
        return response


async def tenant_session(port: int, tenant: str, seed: int) -> dict:
    """One tenant ingests columns and runs an analytics loop."""
    rng = np.random.default_rng(seed)
    async with Client(port, tenant) as client:
        for name in ("active", "premium", "churned"):
            await client.call({
                "op": "create_column", "name": name,
                "bits": (rng.random(N_BITS) < 0.3).astype(int).tolist(),
            })
        counts = []
        for _ in range(20):
            response = await client.call(
                {"op": "query", "expr": "active & premium & ~churned"})
            counts.append(response["count"])
        return {"tenant": tenant, "count": counts[-1],
                "cache_hit": response["cache_hit"],
                "latencies": client.latencies}


async def mutation_session(port: int) -> None:
    """The public namespace: mutate one column mid-traffic."""
    async with Client(port) as client:
        fresh = np.zeros(N_BITS, dtype=int)
        response = await client.call({"op": "update_column",
                                      "name": "m",
                                      "bits": fresh.tolist()})
        print(f"  update_column(m): {response['rows_written']} dirty "
              f"rows, {response['energy_nj']:.0f} nJ TBA-write, "
              f"{response['invalidated']} cached plans evicted")
        response = await client.call({"op": "write_slice", "name": "m",
                                      "offset": 128,
                                      "bits": [1] * 64})
        print(f"  write_slice(m, 128): {response['rows_written']} "
              f"dirty row(s) on {response['dirty_shards']} shard(s)")
        page = await client.call({"op": "bits", "name": "m",
                                  "offset": 120, "limit": 16})
        print(f"  bits m[120:136] -> {page['bits']}")


async def binary_session(port: int) -> None:
    """The same bulk ops over the negotiated binary wire."""
    rng = np.random.default_rng(7)
    payload = (rng.random(N_BITS) < 0.5).astype(np.uint8)
    async with Client(port, wire_mode="binary") as client:
        response = await client.call({"op": "create_column",
                                      "name": "bw", "bits": payload})
        print(f"  create_column(bw): {response['created']!r} via "
              f"{N_BITS // 8} payload bytes "
              f"(JSON ships ~{2 * N_BITS} bytes of digits)")
        await client.call({"op": "write_slice", "name": "bw",
                           "offset": 64, "bits": 1 - payload[64:128]})
        payload[64:128] = 1 - payload[64:128]
        page = await client.call({"op": "bits", "name": "bw",
                                  "offset": 0, "limit": 4096})
        assert np.array_equal(page["bits"], payload[:4096])
    # Byte-identical to what a JSON-lines client reads back.
    async with Client(port) as json_client:
        json_page = await json_client.call(
            {"op": "bits", "name": "bw", "offset": 0, "limit": 4096})
    text = (page["bits"] + ord("0")).tobytes().decode("ascii")
    assert text == json_page["bits"]
    print("  bits bw[0:4096]: binary page matches the JSON read-back")


async def backoff_session(port: int) -> None:
    """Flood past the admission limit, then recover via backoff.

    The "bursty" tenant allows 2 in-flight requests; 12 concurrent
    connections flooding it must see typed admission rejections
    carrying ``retry_after_ms`` — and the retry loop turns every one
    of them into an eventual success."""
    rng = np.random.default_rng(11)

    async def one_shot(expr: str) -> dict:
        async with Client(port, "bursty") as client:
            return await client.call_raw({"op": "query", "expr": expr})

    responses = await asyncio.gather(
        *[one_shot(f"q & {'~' * (i % 2)}q") for i in range(12)])
    rejected = [r for r in responses if not r.get("ok")]
    hints = {r.get("retry_after_ms") for r in rejected}
    print(f"  flood of 12: {len(rejected)} admission rejections, "
          f"retry_after_ms hint(s): {sorted(hints)}")

    async def persistent(expr: str) -> int:
        async with Client(port, "bursty") as client:
            _, retries = await client.call_with_retry(
                {"op": "query", "expr": expr}, rng=rng)
            return retries

    retries = await asyncio.gather(
        *[persistent(f"q | {'~' * (i % 2)}q") for i in range(12)])
    print(f"  12 retried queries all succeeded "
          f"({sum(retries)} backoff retries)")


async def main_async(port: int) -> None:
    print("-- two tenants, concurrent query streams --")
    sessions = [tenant_session(port, "acme", seed=1),
                tenant_session(port, "globex", seed=2)]
    results = await asyncio.gather(*sessions)
    for record in results:
        latencies = sorted(record["latencies"])
        p50 = latencies[len(latencies) // 2] * 1e3
        print(f"  {record['tenant']:>8}: count={record['count']} "
              f"(isolated data), steady-state cache_hit="
              f"{record['cache_hit']}, p50={p50:.2f} ms")

    print("-- in-place mutation with dependency-aware invalidation --")
    await mutation_session(port)

    print("-- binary wire: packed-word frames for bulk payloads --")
    await binary_session(port)

    print("-- admission backoff: retry_after_ms-guided recovery --")
    await backoff_session(port)


def main() -> None:
    rng = np.random.default_rng(0)
    service = BitwiseService("feram-2tnc", n_bits=N_BITS, n_shards=4)
    for name in ("q", "m"):
        service.create_column(
            name, (rng.random(N_BITS) < 0.4).astype(np.uint8))
    # Warm a public plan over q only: it must survive the m mutations.
    service.query("q | ~q")
    # A deliberately tight tenant for the backoff demo.
    service.register_tenant("bursty", max_pending=2)
    service.create_column(
        "q", (rng.random(N_BITS) < 0.4).astype(np.uint8),
        tenant="bursty")

    server = serve_tcp(service, 0, batch_window_s=0.001)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    port = server.server_address[1]
    print(f"async server on 127.0.0.1:{port} "
          f"({service.n_bits} bits x {service.n_shards} shards)\n")
    try:
        asyncio.run(main_async(port))
        assert service.query("q | ~q").cache_hit, \
            "plans over unmutated columns must stay cached"
        print("  q-only plan still cached after the m mutations: True")

        stats = service.stats()
        scheduler = server.scheduler.metrics
        writeback = stats["writeback"]
        print("\n-- service counters --")
        print(f"  queries served      : {stats['queries_served']} "
              f"(cache hits {stats['cache_hits']})")
        print(f"  coalesced batches   : {scheduler['batches']} "
              f"(largest {scheduler['largest_batch']})")
        print(f"  mutations applied   : {stats['mutations_applied']} "
              f"({writeback['rows_written']} rows, "
              f"{writeback['write_energy_nj']:.0f} nJ)")
        print(f"  write-back policy   : {writeback['policy']}")
    finally:
        server.shutdown()
        server.server_close()
        service.close()


if __name__ == "__main__":
    main()
