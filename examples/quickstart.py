"""Quickstart: single-cell universal logic in a 2T-3C FeRAM cell.

Builds the paper's cell at SPICE level, then:
1. writes and QNRO-reads a bit (the read output is the *complement* —
   NOT for free);
2. runs Triple-Bit-Activation for every stored state, showing the RSL
   current ordering that makes the MINORITY function sensible;
3. computes NAND and NOR by setting the control capacitor.

Run:  python examples/quickstart.py
"""

from repro.core import CellOperations, TwoTnCCell, minority3


def main() -> None:
    print("=== 2T-3C FeRAM logic-in-memory quickstart ===\n")
    cell = TwoTnCCell(n_caps=3, n_domains=24)
    ops = CellOperations(cell, dt=1e-9)

    print("-- NOT via inverting QNRO read (paper Fig. 3(c,d)) --")
    ops.calibrate_not_reference()
    for bit in (0, 1):
        result = ops.op_not(bit)
        print(f"  stored {bit} -> SA output {result.output_bit}   "
              f"I_RSL = {result.rsl_current:.3e} A, "
              f"V_int = {result.vint:.3f} V, "
              f"state preserved: {result.state_preserved()}")

    print("\n-- TBA levels for every stored state (Fig. 3(f)) --")
    levels = ops.tba_level_sweep()
    for state in sorted(levels, key=lambda s: (-levels[s])):
        ones = sum(state)
        print(f"  A,B,C = {state}  (#1s = {ones})  "
              f"I_RSL = {levels[state]:.3e} A")

    print("\n-- MINORITY -> universal NAND / NOR --")
    ops.calibrate_minority_reference()
    print("  A B | MIN(A,B,0)=NAND  MIN(A,B,1)=NOR")
    for a in (0, 1):
        for b in (0, 1):
            nand = ops.op_nand(a, b).output_bit
            nor = ops.op_nor(a, b).output_bit
            check = "ok" if (nand == 1 - (a & b)
                             and nor == 1 - (a | b)) else "FAIL"
            print(f"  {a} {b} |        {nand}                {nor}"
                  f"      [{check}]")

    print("\n-- truth-table cross-check --")
    table_ok = all(
        ops.op_minority(a, b, c).output_bit == minority3(a, b, c)
        for a in (0, 1) for b in (0, 1) for c in (0, 1))
    print(f"  all 8 MINORITY states correct: {table_ok}")


if __name__ == "__main__":
    main()
