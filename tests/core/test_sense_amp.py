"""Sense-amplifier behaviour tests."""

import numpy as np
import pytest

from repro.core.sense_amp import SenseAmp, reference_between
from repro.errors import ProtocolError


class TestReferenceBetween:
    def test_midpoint(self):
        assert reference_between(1.0, 3.0) == 2.0

    def test_order_insensitive(self):
        assert reference_between(3.0, 1.0) == 2.0

    def test_position(self):
        assert reference_between(0.0, 10.0, position=0.25) == 2.5

    def test_validates_position(self):
        with pytest.raises(ProtocolError):
            reference_between(0.0, 1.0, position=1.0)


class TestCompare:
    def test_above_reads_one(self):
        assert SenseAmp(1.0).compare(2.0) == 1

    def test_below_reads_zero(self):
        assert SenseAmp(1.0).compare(0.5) == 0

    def test_margin_signed(self):
        sa = SenseAmp(1.0)
        assert sa.margin(1.5) == pytest.approx(0.5)
        assert sa.margin(0.5) == pytest.approx(-0.5)

    def test_validates_reference(self):
        with pytest.raises(ProtocolError):
            SenseAmp(0.0)
        with pytest.raises(ProtocolError):
            SenseAmp(1.0, offset_sigma=-0.1)


class TestOffset:
    def test_ideal_is_deterministic(self):
        sa = SenseAmp(1.0)
        assert all(sa.compare(1.1) == 1 for _ in range(10))

    def test_offset_flips_marginal_decisions(self):
        rng = np.random.default_rng(0)
        sa = SenseAmp(1.0, offset_sigma=0.5, rng=rng)
        decisions = {sa.compare(1.01) for _ in range(200)}
        assert decisions == {0, 1}

    def test_yield_ideal_is_one(self):
        assert SenseAmp(1.0).sense_yield(2.0) == 1.0

    def test_yield_degrades_near_reference(self):
        rng = np.random.default_rng(0)
        sa = SenseAmp(1.0, offset_sigma=0.2, rng=rng)
        far = sa.sense_yield(2.0, trials=2000)
        near = sa.sense_yield(1.05, trials=2000)
        assert far > near

    def test_yield_validates(self):
        with pytest.raises(ProtocolError):
            SenseAmp(1.0).sense_yield(1.0, trials=0)


class TestFromLevels:
    def test_splits_levels(self):
        sa = SenseAmp.from_levels([1.0, 2.0, 4.0, 8.0], split_after=2)
        assert sa.reference == pytest.approx(3.0)

    def test_unsorted_input_ok(self):
        sa = SenseAmp.from_levels([8.0, 1.0, 4.0, 2.0], split_after=2)
        assert sa.reference == pytest.approx(3.0)

    def test_validates_split(self):
        with pytest.raises(ProtocolError):
            SenseAmp.from_levels([1.0, 2.0], split_after=2)
