"""Behavioural 2T-nC cell tests (fast closed-form model)."""

import numpy as np
import pytest

from repro.core.behavioral import BehavioralCell
from repro.core.logic import minority3
from repro.errors import ProtocolError

ALL_TRIPLES = [(a, b, c) for a in (0, 1) for b in (0, 1) for c in (0, 1)]


@pytest.fixture(scope="module")
def sweep_levels():
    return BehavioralCell(n_caps=3).level_sweep()


class TestConstruction:
    def test_rejects_zero_caps(self):
        with pytest.raises(ProtocolError):
            BehavioralCell(n_caps=0)

    def test_write_validates(self):
        cell = BehavioralCell()
        with pytest.raises(ProtocolError):
            cell.write({5: 1})
        with pytest.raises(ProtocolError):
            cell.write({0: 3})

    def test_write_sets_bits(self):
        cell = BehavioralCell()
        cell.write({0: 1, 1: 0, 2: 1})
        assert cell.stored_bits() == [1, 0, 1]

    def test_polarizations_have_correct_signs(self):
        cell = BehavioralCell()
        cell.write({0: 1, 1: 0, 2: 1})
        p = cell.polarizations_uc_cm2()
        assert p[0] > 0 > p[1]


class TestReadLevels:
    def test_levels_monotone_in_zeros(self, sweep_levels):
        by_zeros = {}
        for state, current in sweep_levels.items():
            by_zeros.setdefault(3 - sum(state), []).append(current)
        means = [np.mean(by_zeros[k]) for k in range(4)]
        assert all(a < b for a, b in zip(means, means[1:]))

    def test_same_weight_states_degenerate(self, sweep_levels):
        for weight in (1, 2):
            values = [v for s, v in sweep_levels.items()
                      if sum(s) == weight]
            assert max(values) / min(values) < 1.01

    def test_contrast_between_extremes(self, sweep_levels):
        assert sweep_levels[(0, 0, 0)] > 5 * sweep_levels[(1, 1, 1)]

    def test_qnro_read_validates_cap(self):
        with pytest.raises(ProtocolError):
            BehavioralCell().qnro_read([7])

    def test_tba_needs_three_caps(self):
        with pytest.raises(ProtocolError):
            BehavioralCell(n_caps=2).tba_read()

    def test_single_cap_read_inverting_contrast(self):
        cell = BehavioralCell()
        cell.write({0: 0})
        i_zero, v_zero = cell.qnro_read([0], commit_disturb=False)
        cell.write({0: 1})
        i_one, v_one = cell.qnro_read([0], commit_disturb=False)
        assert i_zero > i_one        # '0' reads high: inverting output
        assert v_zero > v_one

    def test_level_sweep_mode_validation(self):
        with pytest.raises(ProtocolError):
            BehavioralCell().level_sweep(mode="bogus")


class TestDisturb:
    def test_commit_disturb_accumulates(self):
        cell = BehavioralCell()
        cell.write({0: 0, 1: 0, 2: 0})
        p0 = cell.polarizations_uc_cm2()[0]
        for _ in range(5):
            cell.tba_read(commit_disturb=True)
        p5 = cell.polarizations_uc_cm2()[0]
        assert p5 > p0  # drifts toward the read polarity

    def test_no_commit_no_disturb(self):
        cell = BehavioralCell()
        cell.write({0: 0, 1: 0, 2: 0})
        p0 = cell.polarizations_uc_cm2()
        cell.tba_read(commit_disturb=False)
        assert cell.polarizations_uc_cm2() == pytest.approx(p0)

    def test_stored_one_immune_to_read(self):
        cell = BehavioralCell()
        cell.write({0: 1, 1: 1, 2: 1})
        p0 = cell.polarizations_uc_cm2()
        for _ in range(10):
            cell.tba_read(commit_disturb=True)
        assert cell.polarizations_uc_cm2() == pytest.approx(p0, abs=0.5)


class TestLogicOps:
    def test_minority_all_states(self):
        cell = BehavioralCell()
        sa = cell.minority_sense_amp()
        for a, b, c in ALL_TRIPLES:
            assert cell.op_minority(a, b, c, sa) == minority3(a, b, c)

    def test_nand_table(self):
        cell = BehavioralCell()
        sa = cell.minority_sense_amp()
        for a in (0, 1):
            for b in (0, 1):
                assert cell.op_nand(a, b, sa) == 1 - (a & b)

    def test_nor_table(self):
        cell = BehavioralCell()
        sa = cell.minority_sense_amp()
        for a in (0, 1):
            for b in (0, 1):
                assert cell.op_nor(a, b, sa) == 1 - (a | b)

    def test_charge_current_linear_in_zeros(self):
        from repro.experiments.fig4_minority import make_fabricated_cell
        cell = make_fabricated_cell()
        levels = cell.level_sweep(mode="charge")
        by_zeros = {}
        for state, current in levels.items():
            by_zeros.setdefault(3 - sum(state), []).append(current)
        means = np.array([np.mean(by_zeros[k]) for k in range(4)])
        steps = np.diff(means)
        assert np.all(steps > 0)
        assert steps.max() / steps.min() < 1.3  # near-linear spacing
