"""MINORITY/MAJORITY logic tests, scalar and packed-word forms."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.logic import (
    majority3,
    majority_words,
    minority3,
    minority_truth_table,
    minority_words,
    nand2,
    nand_words,
    nor2,
    nor_words,
    not1,
    not_words,
)
from repro.errors import ProtocolError

ALL_TRIPLES = [(a, b, c) for a in (0, 1) for b in (0, 1) for c in (0, 1)]


class TestScalar:
    def test_majority_truth_table(self):
        for a, b, c in ALL_TRIPLES:
            assert majority3(a, b, c) == (1 if a + b + c >= 2 else 0)

    def test_minority_is_not_majority(self):
        for a, b, c in ALL_TRIPLES:
            assert minority3(a, b, c) == 1 - majority3(a, b, c)

    def test_paper_boolean_identity(self):
        # MIN(A,B,C) = C'(A' + B') + C(A'·B')
        for a, b, c in ALL_TRIPLES:
            na, nb, nc = 1 - a, 1 - b, 1 - c
            expected = (nc & (na | nb)) | (c & (na & nb))
            assert minority3(a, b, c) == expected

    def test_nand_is_minority_with_zero(self):
        for a in (0, 1):
            for b in (0, 1):
                assert nand2(a, b) == 1 - (a & b)
                assert nand2(a, b) == minority3(a, b, 0)

    def test_nor_is_minority_with_one(self):
        for a in (0, 1):
            for b in (0, 1):
                assert nor2(a, b) == 1 - (a | b)
                assert nor2(a, b) == minority3(a, b, 1)

    def test_not(self):
        assert not1(0) == 1
        assert not1(1) == 0

    def test_validates_bits(self):
        with pytest.raises(ProtocolError):
            majority3(2, 0, 0)
        with pytest.raises(ProtocolError):
            not1(-1)

    def test_truth_table_has_eight_rows(self):
        table = minority_truth_table()
        assert len(table) == 8
        assert table[(0, 0, 0)] == 1
        assert table[(1, 1, 1)] == 0

    def test_self_duality(self):
        # MAJ(~a,~b,~c) == ~MAJ(a,b,c)
        for a, b, c in ALL_TRIPLES:
            assert majority3(1 - a, 1 - b, 1 - c) == 1 - majority3(a, b, c)


words = st.integers(min_value=0, max_value=2**64 - 1)


class TestWords:
    @given(words, words, words)
    def test_majority_words_bitwise(self, a, b, c):
        av, bv, cv = (np.array([x], dtype=np.uint64) for x in (a, b, c))
        out = int(majority_words(av, bv, cv)[0])
        for bit in range(64):
            bits = ((a >> bit) & 1, (b >> bit) & 1, (c >> bit) & 1)
            assert (out >> bit) & 1 == majority3(*bits)

    @given(words, words, words)
    def test_minority_complements_majority(self, a, b, c):
        av, bv, cv = (np.array([x], dtype=np.uint64) for x in (a, b, c))
        assert int((minority_words(av, bv, cv)
                    ^ majority_words(av, bv, cv))[0]) == 2**64 - 1

    @given(words, words)
    def test_nand_words(self, a, b):
        av, bv = (np.array([x], dtype=np.uint64) for x in (a, b))
        assert int(nand_words(av, bv)[0]) == (~(a & b)) & (2**64 - 1)

    @given(words, words)
    def test_nor_words(self, a, b):
        av, bv = (np.array([x], dtype=np.uint64) for x in (a, b))
        assert int(nor_words(av, bv)[0]) == (~(a | b)) & (2**64 - 1)

    @given(words)
    def test_not_words(self, a):
        av = np.array([a], dtype=np.uint64)
        assert int(not_words(av)[0]) == (~a) & (2**64 - 1)

    def test_words_preserve_shape(self):
        a = np.zeros((3, 4), dtype=np.uint64)
        assert minority_words(a, a, a).shape == (3, 4)
