"""Operation-layer API coverage: results, reads, calibration edges."""

import pytest

from repro.core.cell import TwoTnCCell
from repro.core.operations import CellOperations
from repro.core.sense_amp import SenseAmp
from repro.errors import ProtocolError

N_DOMAINS = 16
DT = 1e-9


@pytest.fixture(scope="module")
def ops():
    cell = TwoTnCCell(n_caps=1, n_domains=N_DOMAINS)
    return CellOperations(cell, dt=DT)


class TestOperationResult:
    def test_correct_property(self, ops):
        ops.calibrate_not_reference()
        op = ops.op_not(0)
        assert op.correct is True

    def test_correct_none_for_plain_read(self, ops):
        op = ops.qnro_read(0)
        assert op.correct is None
        assert op.output_bit is None

    def test_write_result_has_no_sensing(self, ops):
        op = ops.write_bits({0: 1})
        assert op.rsl_current is None
        assert op.vint is None

    def test_result_carries_traces(self, ops):
        op = ops.qnro_read(0)
        assert len(op.result) > 10
        assert "sense_window" in op.meta

    def test_meta_records_inputs_for_minority(self):
        cell = TwoTnCCell(n_caps=3, n_domains=N_DOMAINS)
        tba = CellOperations(cell, dt=DT)
        tba.calibrate_minority_reference()
        op = tba.op_minority(1, 0, 1)
        assert op.meta["inputs"] == (1, 0, 1)


class TestSensing:
    def test_qnro_read_reports_current_and_vint(self, ops):
        ops.write_bits({0: 0})
        op = ops.qnro_read(0)
        assert op.rsl_current > 0
        assert 0.0 < op.vint < 1.0

    def test_custom_sense_amp_used(self, ops):
        # An absurdly high reference forces output 0 regardless of state.
        sa = SenseAmp(1.0)
        op = ops.op_not(0, sense_amp=sa)
        assert op.output_bit == 0

    def test_not_validates_bit(self, ops):
        with pytest.raises(ProtocolError):
            ops.op_not(2)

    def test_calibration_returns_positive_reference(self, ops):
        ref = ops.calibrate_not_reference()
        assert ref > 0

    def test_minority_reference_needs_three_caps(self, ops):
        with pytest.raises(ProtocolError):
            ops.calibrate_minority_reference()


class TestWriteFailureDetection:
    def test_failed_write_raises(self):
        # A write pulse far too short to switch any domain must be
        # detected and reported, not silently accepted.
        from repro.core.waveforms import CellTiming
        cell = TwoTnCCell(n_caps=1, n_domains=N_DOMAINS)
        feeble = CellOperations(
            cell, dt=0.25e-9,
            timing=CellTiming(t_write=2e-9, t_edge=0.25e-9))
        cell.force_bits({0: 1})
        with pytest.raises(ProtocolError, match="write failed"):
            feeble.write_bits({0: 0})
