"""Monte-Carlo variation study tests."""

import pytest

from repro.core.variation import MarginSample, run_variation_study
from repro.errors import ProtocolError

N_CELLS = 8  # keep CI fast; the experiment driver uses more


@pytest.fixture(scope="module")
def tracking_study():
    return run_variation_study(N_CELLS, reference_mode="tracking",
                               n_domains=512, seed=1)


class TestStudy:
    def test_sample_count(self, tracking_study):
        assert tracking_study.n_cells == N_CELLS
        assert len(tracking_study.samples) == N_CELLS

    def test_margins_recorded(self, tracking_study):
        assert tracking_study.margins.shape == (N_CELLS,)

    def test_summary_keys(self, tracking_study):
        summary = tracking_study.summary()
        for key in ("n_cells", "read_yield", "hard_failures"):
            assert key in summary

    def test_yield_in_unit_interval(self, tracking_study):
        assert 0.0 <= tracking_study.read_yield <= 1.0

    def test_deterministic_given_seed(self):
        s1 = run_variation_study(4, n_domains=256, seed=7)
        s2 = run_variation_study(4, n_domains=256, seed=7)
        assert s1.margins == pytest.approx(s2.margins)

    def test_seed_changes_outcome(self):
        s1 = run_variation_study(4, n_domains=256, seed=1)
        s2 = run_variation_study(4, n_domains=256, seed=2)
        assert not (s1.margins == s2.margins).all()

    def test_more_grains_tighter_margins(self):
        small = run_variation_study(6, n_domains=256, seed=3)
        large = run_variation_study(6, n_domains=1024, seed=3)
        assert large.margin_sigma < small.margin_sigma

    def test_validation(self):
        with pytest.raises(ProtocolError):
            run_variation_study(0)
        with pytest.raises(ProtocolError):
            run_variation_study(2, offset_sigma_fraction=1.5)
        with pytest.raises(ProtocolError):
            run_variation_study(2, reference_mode="bogus")


class TestMarginSample:
    def test_worst_margin_positive_when_separated(self):
        levels = {}
        for a in (0, 1):
            for b in (0, 1):
                for c in (0, 1):
                    ones = a + b + c
                    levels[(a, b, c)] = 10.0 - 2.0 * ones
        sample = MarginSample(levels)
        # MIN=1 for <=1 ones (levels 10, 8); MIN=0 for >=2 (6, 4).
        assert sample.worst_minority_margin(7.0) == pytest.approx(1.0)

    def test_worst_margin_negative_when_violated(self):
        levels = {state: 5.0 for state in
                  [(a, b, c) for a in (0, 1) for b in (0, 1)
                   for c in (0, 1)]}
        sample = MarginSample(levels)
        assert sample.worst_minority_margin(5.0) == pytest.approx(0.0)
