"""SPICE-level 2T-nC cell tests (transient solver in the loop).

Kept fast with reduced domain counts; the full-resolution runs live in
the experiment drivers and benchmarks.
"""

import pytest

from repro.core.cell import OneT1CFeRAMCell, TwoTnCCell
from repro.core.logic import minority3
from repro.core.operations import CellOperations
from repro.errors import ProtocolError

N_DOMAINS = 16
DT = 1e-9


@pytest.fixture(scope="module")
def not_ops():
    cell = TwoTnCCell(n_caps=1, n_domains=N_DOMAINS)
    ops = CellOperations(cell, dt=DT)
    ops.calibrate_not_reference()
    return ops


@pytest.fixture(scope="module")
def tba_ops():
    cell = TwoTnCCell(n_caps=3, n_domains=N_DOMAINS)
    ops = CellOperations(cell, dt=DT)
    ops.calibrate_minority_reference()
    return ops


class TestConstruction:
    def test_rejects_zero_caps(self):
        with pytest.raises(ProtocolError):
            TwoTnCCell(n_caps=0)

    def test_netlist_contents(self):
        cell = TwoTnCCell(n_caps=3, n_domains=N_DOMAINS)
        for name in ("t_w", "t_r", "c_node", "fe1", "fe2", "fe3",
                     "v_wwl", "v_wpl", "v_rbl", TwoTnCCell.RSL_SENSE):
            assert name in cell.circuit

    def test_initial_bits(self):
        cell = TwoTnCCell(n_caps=2, initial_bits={0: 1, 1: 0},
                          n_domains=N_DOMAINS)
        assert cell.stored_bits() == [1, 0]

    def test_force_bits_validates(self):
        cell = TwoTnCCell(n_caps=1, n_domains=N_DOMAINS)
        with pytest.raises(ProtocolError):
            cell.force_bits({3: 1})

    def test_schedule_cap_count_mismatch(self):
        cell = TwoTnCCell(n_caps=1, n_domains=N_DOMAINS)
        wrong = TwoTnCCell(n_caps=3, n_domains=N_DOMAINS).new_schedule()
        wrong.add_read([0])
        with pytest.raises(ProtocolError):
            cell.run(wrong)


class TestWrite:
    def test_write_both_polarities(self):
        cell = TwoTnCCell(n_caps=2, n_domains=N_DOMAINS)
        ops = CellOperations(cell, dt=DT)
        ops.write_bits({0: 1, 1: 0})
        assert cell.stored_bits() == [1, 0]

    def test_write_reaches_deep_polarization(self):
        cell = TwoTnCCell(n_caps=1, n_domains=N_DOMAINS)
        ops = CellOperations(cell, dt=DT)
        ops.write_bits({0: 1})
        assert cell.polarizations_uc_cm2()[0] > 20.0

    def test_rewrite_flips(self):
        cell = TwoTnCCell(n_caps=1, n_domains=N_DOMAINS)
        ops = CellOperations(cell, dt=DT)
        ops.write_bits({0: 1})
        ops.write_bits({0: 0})
        assert cell.stored_bits() == [0]

    def test_write_does_not_disturb_neighbours(self):
        cell = TwoTnCCell(n_caps=3, n_domains=N_DOMAINS)
        ops = CellOperations(cell, dt=DT)
        ops.write_bits({0: 1, 1: 1, 2: 1})
        p_before = cell.polarizations_uc_cm2()[2]
        ops.write_bits({0: 0})  # rewrite one cap only
        p_after = cell.polarizations_uc_cm2()[2]
        assert p_after == pytest.approx(p_before, abs=3.0)


class TestNot(object):
    def test_not_zero(self, not_ops):
        op = not_ops.op_not(0)
        assert op.output_bit == 1
        assert op.correct

    def test_not_one(self, not_ops):
        op = not_ops.op_not(1)
        assert op.output_bit == 0
        assert op.correct

    def test_state_preserved(self, not_ops):
        for bit in (0, 1):
            assert not_ops.op_not(bit).state_preserved()

    def test_vint_contrast(self, not_ops):
        v0 = not_ops.op_not(0).vint
        v1 = not_ops.op_not(1).vint
        assert v0 > v1 + 0.05


class TestMinority:
    @pytest.mark.parametrize("state", [(0, 0, 0), (1, 0, 0), (0, 1, 1),
                                       (1, 1, 1)])
    def test_minority_subset(self, tba_ops, state):
        op = tba_ops.op_minority(*state)
        assert op.output_bit == minority3(*state)

    def test_nand(self, tba_ops):
        assert tba_ops.op_nand(1, 1).output_bit == 0
        assert tba_ops.op_nand(1, 0).output_bit == 1

    def test_nor(self, tba_ops):
        assert tba_ops.op_nor(0, 0).output_bit == 1
        assert tba_ops.op_nor(1, 0).output_bit == 0

    def test_levels_ordered(self, tba_ops):
        levels = tba_ops.tba_level_sweep()
        assert levels[(0, 0, 0)] > levels[(0, 0, 1)] \
            > levels[(0, 1, 1)] > levels[(1, 1, 1)]

    def test_minority_validates_inputs(self, tba_ops):
        with pytest.raises(ProtocolError):
            tba_ops.op_minority(2, 0, 0)

    def test_minority_needs_three_caps(self):
        cell = TwoTnCCell(n_caps=1, n_domains=N_DOMAINS)
        ops = CellOperations(cell, dt=DT)
        with pytest.raises(ProtocolError):
            ops.op_minority(0, 0, 0)


class Test1T1C:
    def test_destructive_read_flips_one(self):
        cell = OneT1CFeRAMCell(initial_bit=1, n_domains=N_DOMAINS)
        p_before = cell.fecap.polarization_uc_cm2()
        _, p_after = cell.destructive_read()
        assert p_after < 0.5 * p_before

    def test_signal_contrast(self):
        v1, _ = OneT1CFeRAMCell(initial_bit=1,
                                n_domains=N_DOMAINS).destructive_read()
        v0, _ = OneT1CFeRAMCell(initial_bit=0,
                                n_domains=N_DOMAINS).destructive_read()
        assert v1 > 2 * v0
