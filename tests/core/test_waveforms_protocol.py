"""Cell protocol schedule tests."""

import pytest

from repro.core.waveforms import CellLevels, CellSchedule, CellTiming
from repro.errors import ProtocolError


def _schedule(n_caps=3) -> CellSchedule:
    return CellSchedule(n_caps)


class TestValidation:
    def test_rejects_zero_caps(self):
        with pytest.raises(ProtocolError):
            CellSchedule(0)

    def test_timing_validation(self):
        with pytest.raises(ProtocolError):
            CellTiming(t_write=0.0)

    def test_levels_validation(self):
        with pytest.raises(ProtocolError):
            CellLevels(v_read=2.0, v_write=1.5)
        with pytest.raises(ProtocolError):
            CellLevels(v_write=-1.0)

    def test_write_rejects_bad_cap(self):
        with pytest.raises(ProtocolError):
            _schedule().add_write({5: 1})

    def test_write_rejects_bad_bit(self):
        with pytest.raises(ProtocolError):
            _schedule().add_write({0: 2})

    def test_write_rejects_empty(self):
        with pytest.raises(ProtocolError):
            _schedule().add_write({})

    def test_read_rejects_empty(self):
        with pytest.raises(ProtocolError):
            _schedule().add_read([])


class TestWritePhases:
    def test_single_polarity_one_phase(self):
        sched = _schedule()
        sched.add_write({0: 1, 1: 1})
        names = [p.name for p in sched.phases]
        assert names == ["write-ones"]

    def test_mixed_polarity_two_phases(self):
        sched = _schedule()
        sched.add_write({0: 1, 1: 0})
        names = [p.name for p in sched.phases]
        assert names == ["write-ones", "write-zeros"]

    def test_unselected_wbl_tracks_wpl_during_zero_write(self):
        # Writing a '0' raises WPL; unselected WBLs must follow to avoid
        # half-select disturb.
        sched = _schedule()
        sched.add_write({0: 0})
        phase = sched.phase("write-zeros")
        waves = sched.waveforms()
        t_mid = 0.5 * (phase.t_start + phase.t_end)
        assert waves["wpl"](t_mid) == sched.levels.v_write
        assert waves["wbl2"](t_mid) == sched.levels.v_write
        assert waves["wbl1"](t_mid) == 0.0

    def test_write_ends_with_node_drain(self):
        # After the zero-write the schedule must hold WWL high with WPL
        # low before releasing, draining the trapped node charge.
        sched = _schedule()
        sched.add_write({0: 0})
        waves = sched.waveforms()
        phase = sched.phase("write-zeros")
        t_drain = phase.t_end + sched.timing.t_edge \
            + 0.5 * sched.timing.t_reset
        assert waves["wwl"](t_drain) > 1.0
        assert waves["wpl"](t_drain) == 0.0


class TestReadPhases:
    def test_qnro_kind_for_single_cap(self):
        phase = _schedule().add_read([0])
        assert phase.kind == "qnro"

    def test_tba_kind_for_multiple(self):
        phase = _schedule().add_read([0, 1, 2])
        assert phase.kind == "tba"

    def test_read_biases_only_targets(self):
        sched = _schedule()
        phase = sched.add_read([0, 2])
        waves = sched.waveforms()
        t_mid = 0.5 * (phase.t_start + phase.t_end)
        assert waves["wbl1"](t_mid) == sched.levels.v_read
        assert waves["wbl2"](t_mid) == 0.0
        assert waves["wbl3"](t_mid) == sched.levels.v_read
        assert waves["wwl"](t_mid) == 0.0
        assert waves["rbl"](t_mid) == sched.levels.v_rbl

    def test_sense_window_inside_phase(self):
        phase = _schedule().add_read([0])
        t0, t1 = phase.sense_window(0.4)
        assert phase.t_start < t0 < t1 == phase.t_end

    def test_sense_window_validates(self):
        phase = _schedule().add_read([0])
        with pytest.raises(ProtocolError):
            phase.sense_window(0.0)


class TestScheduleStructure:
    def test_phases_ordered_in_time(self):
        sched = _schedule()
        sched.add_write({0: 1, 1: 0})
        sched.add_read([0, 1, 2])
        sched.add_reset()
        starts = [p.t_start for p in sched.phases]
        assert starts == sorted(starts)

    def test_t_stop_after_last_phase(self):
        sched = _schedule()
        sched.add_read([0])
        assert sched.t_stop > sched.phases[-1].t_end

    def test_waveform_times_nondecreasing(self):
        sched = _schedule()
        sched.add_write({0: 1, 1: 0, 2: 1})
        sched.add_read([0, 1, 2])
        sched.add_reset()
        for net, wave in sched.waveforms().items():
            times = [t for t, _ in wave.points]
            assert times == sorted(times), net

    def test_unknown_phase_raises(self):
        with pytest.raises(ProtocolError):
            _schedule().phase("nope")

    def test_all_nets_end_at_zero(self):
        sched = _schedule()
        sched.add_write({0: 1})
        sched.add_reset()
        waves = sched.waveforms()
        for net, wave in waves.items():
            assert wave(sched.t_stop) == 0.0, net

    def test_net_names(self):
        assert CellSchedule.net_names(2) == ["wwl", "wpl", "rbl", "wbl1",
                                             "wbl2"]
