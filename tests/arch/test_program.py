"""Program layer: construction, compilation, shadowing, liveness."""

import numpy as np
import pytest

from repro.arch.expr import Col, Xor
from repro.arch.primitives import make_engine, probe_program_events
from repro.arch.program import (
    CompiledProgram,
    Program,
    ProgramBuilder,
    compile_program,
    parse_program,
)
from repro.errors import QueryError

N_BITS = 300


@pytest.fixture
def table(rng):
    return {name: rng.integers(0, 2, N_BITS, dtype=np.uint8)
            for name in "abcd"}


def _load(engine, table):
    columns = {}
    first = None
    for name, bits in table.items():
        columns[name] = engine.load(bits, name, group_with=first,
                                    charge=False)
        first = first or columns[name]
    return columns


class TestProgramConstruction:
    def test_cols_are_reads_before_assignment(self):
        program = Program([("t", "a & b"), ("u", "t | c")])
        assert program.cols() == ("a", "b", "c")
        assert program.outputs == ("u",)

    def test_assigned_name_is_not_a_column(self):
        program = Program([("t", "a"), ("u", "t & t")])
        assert "t" not in program.cols()

    def test_shadowed_table_column_reads_old_then_new(self):
        # 'a' is a table column until the second statement rebinds it.
        program = Program([("t", "a & b"), ("a", "~a"), ("u", "a & t")],
                          outputs=["u"])
        assert program.cols() == ("a", "b")

    def test_output_must_be_assigned(self):
        with pytest.raises(QueryError, match="never assigned"):
            Program([("t", "a & b")], outputs=["missing"])

    def test_duplicate_outputs_rejected(self):
        with pytest.raises(QueryError, match="duplicate"):
            Program([("t", "a")], outputs=["t", "t"])

    def test_empty_program_rejected(self):
        with pytest.raises(QueryError, match="at least one"):
            Program([])

    def test_bad_statement_name_rejected(self):
        with pytest.raises(QueryError, match="invalid"):
            Program([("2bad", "a & b")])

    def test_parse_program(self):
        program = parse_program("""
            t = a & b     # conjunction
            u = t | ~c;  v = t ^ u
        """, outputs=["u", "v"])
        assert len(program) == 3
        assert program.cols() == ("a", "b", "c")
        assert program.outputs == ("u", "v")

    def test_parse_program_rejects_bare_expression(self):
        with pytest.raises(QueryError, match="name = expr"):
            parse_program("a & b")

    def test_builder_fresh_names_unique(self):
        builder = ProgramBuilder()
        first = builder.emit("t", "a & b")
        second = builder.emit("t", "a | b")
        assert first.name != second.name
        program = builder.build()
        assert len(program) == 2


class TestShadowingRegression:
    """Reassigning a name must not corrupt earlier readers — the
    program-layer mirror of the PR 2 aliased-operand bug class."""

    PROGRAM = Program([
        ("t", "a & b"),
        ("u", "t | c"),     # reads the OLD t
        ("t", "~t"),        # rebinds t (reading the old binding)
        ("v", "t ^ u"),     # reads the NEW t and the old-t-based u
    ], outputs=["u", "v"])

    def _expected(self, table):
        t_old = table["a"] & table["b"]
        u = t_old | table["c"]
        v = (1 - t_old) ^ u
        return {"u": u, "v": v}

    @pytest.mark.parametrize("inverting", [True, False])
    def test_engine_replay_reads_pre_shadow_value(self, inverting,
                                                  table):
        engine = make_engine(
            "feram-2tnc" if inverting else "dram")
        columns = _load(engine, table)
        outputs, stats = compile_program(
            self.PROGRAM, inverting=inverting).run(engine, columns)
        expected = self._expected(table)
        for name in ("u", "v"):
            assert np.array_equal(
                outputs[name].logical_bits()[:N_BITS], expected[name])
        assert len(stats) == 4
        engine.free(*outputs.values())

    @pytest.mark.parametrize("inverting", [True, False])
    def test_vector_bytecode_reads_pre_shadow_value(self, inverting,
                                                    table):
        cprog = compile_program(self.PROGRAM, inverting=inverting)
        words = {
            name: np.packbits(
                np.pad(bits, (0, 320 - N_BITS)),
                bitorder="little").view(np.uint64).reshape(1, -1)
            for name, bits in table.items()
        }
        matrices = cprog.vector_program().run_outputs(words)
        expected = self._expected(table)
        for name in ("u", "v"):
            got = np.unpackbits(matrices[name].view(np.uint8),
                                bitorder="little")[:N_BITS]
            assert np.array_equal(got, expected[name])

    def test_shadowed_table_column_not_mutated(self, table):
        """Rebinding a *table column's* name must leave the column's
        stored value untouched (later programs still see it)."""
        program = Program([("a", "~a"), ("out", "a & b")],
                          outputs=["out"])
        engine = make_engine("feram-2tnc")
        columns = _load(engine, table)
        cprog = compile_program(program, inverting=True)
        outputs, _ = cprog.run(engine, columns)
        expected = (1 - table["a"]) & table["b"]
        assert np.array_equal(outputs["out"].logical_bits()[:N_BITS],
                              expected)
        # The resident column still holds its original logical value.
        assert np.array_equal(columns["a"].logical_bits()[:N_BITS],
                              table["a"])
        engine.free(*outputs.values())


class TestCompiledProgram:
    def test_cross_statement_cse_shares_nodes(self):
        # Both statements compute a & b: one AIG node, one kernel step.
        program = Program([("t", "a & b"), ("u", "b & a"),
                           ("v", "t ^ u")], outputs=["v"])
        cprog = compile_program(program, inverting=True)
        # t ^ u == x ^ x == 0: the whole program folds to a constant.
        assert cprog.key.endswith("v=!1")
        vector = cprog.vector_program()
        assert vector.steps[-1][2][0][0] == "const"

    def test_dead_statements_not_executed_on_vector_path(self):
        program = Program([("dead", "a ^ b"), ("live", "a & b")],
                          outputs=["live"])
        cprog = compile_program(program, inverting=True)
        vector = cprog.vector_program()
        assert len(vector.steps) == 1  # only the AND
        # ...but the cost model still charges the full replay.
        events, _ = cprog.cost_events()
        assert len(events) == 2
        assert events[0].logic > events[1].logic  # XOR costs 3 ACPs

    def test_register_recycling_bounds_register_count(self):
        # A long dependent chain keeps at most a couple of live values.
        builder = ProgramBuilder()
        acc = Col("a")
        for _ in range(24):
            acc = builder.emit("t", Xor(acc, Col("b")))
        cprog = compile_program(builder.build(), inverting=True)
        vector = cprog.vector_program()
        assert len(vector.steps) >= 24
        assert vector.n_regs <= 4

    def test_primitives_never_exceed_naive(self, table):
        program = Program([
            ("t", "(a & b & ~c) | (c & d)"),
            ("u", "(a & b & ~c) | (a & b & d)"),
            ("v", "t ^ u"),
        ], outputs=["v"])
        for inverting in (True, False):
            cprog = compile_program(program, inverting=inverting)
            assert cprog.primitives <= cprog.naive_primitives

    def test_probe_tracks_column_flag_evolution(self):
        # A FeRAM plan that re-encodes a column leaves a flag behind;
        # probing twice from the evolved state must change the events.
        program = Program([("t", "~a & ~b")])
        cprog = compile_program(program, inverting=True)
        events_plain, final = probe_program_events(cprog)
        assert len(events_plain) == 1
        events_evolved, _ = probe_program_events(cprog, final)
        if final != (False, False):
            assert events_evolved != events_plain

    def test_replay_frees_intermediates_at_last_use(self, table):
        engine = make_engine("feram-2tnc")
        columns = _load(engine, table)
        baseline = engine.allocator.rows_used
        builder = ProgramBuilder()
        acc = Col("a")
        for _ in range(12):
            acc = builder.emit("t", Xor(acc, Col("b")))
        builder.let("out", acc)
        cprog = compile_program(builder.build(), inverting=True)
        outputs, _ = cprog.run(engine, columns)
        # Only the output survives the run.
        rows_per_vec = outputs["out"].n_rows
        assert engine.allocator.rows_used == baseline + rows_per_vec
        engine.free(*outputs.values())
        assert engine.allocator.rows_used == baseline

    def test_unbound_column_raises(self, table):
        cprog = compile_program(Program([("t", "a & missing")]),
                                inverting=True)
        engine = make_engine("feram-2tnc")
        columns = _load(engine, table)
        with pytest.raises(QueryError, match="missing"):
            cprog.run(engine, columns)

    def test_constant_only_program(self, table):
        cprog = compile_program(Program([("t", "a & ~a")]),
                                inverting=True)
        engine = make_engine("feram-2tnc")
        columns = _load(engine, table)
        outputs, _ = cprog.run(engine, columns, n_bits=N_BITS)
        assert int(outputs["t"].logical_bits()[:N_BITS].sum()) == 0
        engine.free(*outputs.values())

    def test_compiled_program_type(self):
        cprog = compile_program(Program([("t", "a & b")]))
        assert isinstance(cprog, CompiledProgram)
        assert cprog.cols == ("a", "b")
