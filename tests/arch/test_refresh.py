"""DRAM refresh model tests."""

import pytest

from repro.arch.commands import Command, CommandType, Stats
from repro.arch.refresh import apply_refresh
from repro.arch.spec import DRAM_8GB, FERAM_2TNC_8GB


def _stats_with_cycles(spec, n_ops):
    stats = Stats()
    for _ in range(n_ops):
        stats.record(spec, Command(CommandType.ACTIVATE, repeat=1000))
    return stats


class TestRefresh:
    def test_feram_has_no_refresh(self):
        stats = _stats_with_cycles(FERAM_2TNC_8GB, 10)
        charge = apply_refresh(stats, FERAM_2TNC_8GB, footprint_rows=1000)
        assert charge.energy_j == 0.0
        assert charge.stall_cycles == 0

    def test_dram_refresh_positive(self):
        stats = _stats_with_cycles(DRAM_8GB, 100)
        charge = apply_refresh(stats, DRAM_8GB, footprint_rows=10000)
        assert charge.energy_j > 0
        assert charge.sweeps > 0

    def test_energy_scales_with_footprint(self):
        s1 = _stats_with_cycles(DRAM_8GB, 100)
        s2 = _stats_with_cycles(DRAM_8GB, 100)
        small = apply_refresh(s1, DRAM_8GB, footprint_rows=1000)
        large = apply_refresh(s2, DRAM_8GB, footprint_rows=100000)
        assert large.energy_j > 10 * small.energy_j

    def test_energy_scales_with_runtime(self):
        s1 = _stats_with_cycles(DRAM_8GB, 10)
        s2 = _stats_with_cycles(DRAM_8GB, 1000)
        short = apply_refresh(s1, DRAM_8GB, footprint_rows=10000)
        long = apply_refresh(s2, DRAM_8GB, footprint_rows=10000)
        assert long.energy_j > 10 * short.energy_j

    def test_whole_device_when_footprint_none(self):
        s1 = _stats_with_cycles(DRAM_8GB, 100)
        s2 = _stats_with_cycles(DRAM_8GB, 100)
        whole = apply_refresh(s1, DRAM_8GB, footprint_rows=None)
        part = apply_refresh(s2, DRAM_8GB, footprint_rows=1000)
        assert whole.energy_j > part.energy_j

    def test_refresh_recorded_in_stats(self):
        stats = _stats_with_cycles(DRAM_8GB, 100)
        apply_refresh(stats, DRAM_8GB, footprint_rows=10000)
        assert stats.energy_j["refresh"] > 0
        assert CommandType.REFRESH in stats.counts

    def test_per_row_energy_is_act_plus_pre(self):
        assert DRAM_8GB.refresh_row_energy == pytest.approx(
            22.6e-9 + 0.32e-9)

    def test_fixed_point_consistency(self):
        # sweeps must equal final wall time / interval.
        stats = _stats_with_cycles(DRAM_8GB, 1000)
        charge = apply_refresh(stats, DRAM_8GB, footprint_rows=100000)
        wall = stats.total_cycles * DRAM_8GB.cycle_time_s
        assert charge.sweeps == pytest.approx(
            wall / DRAM_8GB.refresh_interval_s, rel=1e-3)
