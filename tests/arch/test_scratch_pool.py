"""Engine payload scratch pool: reuse works, growth is bounded."""

import numpy as np

from repro.arch.primitives import make_engine


def _pool_size(engine) -> int:
    return sum(len(buffers) for buffers in engine._scratch.values())


class TestScratchPoolCap:
    def test_freed_buffers_are_reused(self):
        engine = make_engine("feram-2tnc")
        vec = engine.allocate(64)
        buffer = vec.payload
        engine.free(vec)
        again = engine.allocate(64)
        assert again.payload is buffer

    def test_per_shape_growth_is_capped(self):
        """A burst of frees must not retain more than SCRATCH_CAP
        buffers per shape (regression: the pool grew without bound,
        leaking one buffer per distinct shape per concurrent chain in
        a long-lived service)."""
        engine = make_engine("feram-2tnc")
        vectors = [engine.load(np.zeros(64, dtype=np.uint8))
                   for _ in range(3 * engine.SCRATCH_CAP)]
        engine.free(*vectors)
        assert len(engine._scratch) == 1  # one shape in play
        assert _pool_size(engine) == engine.SCRATCH_CAP

    def test_cap_applies_per_shape(self):
        engine = make_engine("feram-2tnc")
        row_bits = engine.spec.row_bits
        for n_rows in (1, 2):
            vectors = [engine.load(np.zeros(n_rows * row_bits,
                                            dtype=np.uint8))
                       for _ in range(2 * engine.SCRATCH_CAP)]
            engine.free(*vectors)
        assert len(engine._scratch) == 2
        for buffers in engine._scratch.values():
            assert len(buffers) == engine.SCRATCH_CAP

    def test_op_chains_stay_bounded(self):
        """Long op chains over one width keep a small steady pool."""
        engine = make_engine("feram-2tnc")
        a = engine.load(np.ones(128, dtype=np.uint8))
        b = engine.load(np.zeros(128, dtype=np.uint8))
        for _ in range(50):
            out = engine.xor(a, b)
            engine.free(out)
        assert _pool_size(engine) <= engine.SCRATCH_CAP
