"""Memory-spec tests."""

import pytest

from repro.arch.spec import DRAM_8GB, FERAM_2TNC_8GB, MemorySpec, StagingPolicy
from repro.errors import ArchitectureError


class TestPresets:
    def test_paper_energy_constants(self):
        assert DRAM_8GB.e_activate == pytest.approx(22.6e-9)
        assert FERAM_2TNC_8GB.e_activate == pytest.approx(16.6e-9)
        assert DRAM_8GB.e_precharge == pytest.approx(0.32e-9)

    def test_paper_geometry(self):
        assert DRAM_8GB.capacity_bytes == 8 * (1 << 30)
        assert DRAM_8GB.row_bytes == 8 * 1024
        assert DRAM_8GB.n_rows == 1 << 20

    def test_feram_rows_account_for_planes(self):
        # Three planes share a physical cell row.
        assert FERAM_2TNC_8GB.n_rows == (1 << 20) // 3

    def test_refresh_only_for_dram(self):
        assert DRAM_8GB.refresh_interval_s == pytest.approx(64e-3)
        assert FERAM_2TNC_8GB.refresh_interval_s is None

    def test_aap_and_acp_costs(self):
        assert DRAM_8GB.aap_energy == pytest.approx(45.52e-9)
        assert DRAM_8GB.aap_cycles == 3
        assert FERAM_2TNC_8GB.acp_cycles == 3
        assert FERAM_2TNC_8GB.acp_energy == pytest.approx(
            16.6e-9 + 28e-9 + 0.32e-9)

    def test_row_bits(self):
        assert DRAM_8GB.row_bits == 65536

    def test_with_policy(self):
        spec = DRAM_8GB.with_policy(StagingPolicy.AMBIT)
        assert spec.staging_policy == StagingPolicy.AMBIT
        assert DRAM_8GB.staging_policy == StagingPolicy.STAGED


class TestValidation:
    def _spec(self, **over):
        kwargs = dict(name="t", technology="dram", capacity_bytes=1 << 20,
                      row_bytes=1024, n_banks=4, n_planes=1,
                      e_activate=1e-9, e_precharge=1e-10, e_copy=1e-9,
                      e_row_write=1e-9, e_row_read=1e-9)
        kwargs.update(over)
        return MemorySpec(**kwargs)

    def test_valid(self):
        assert self._spec().n_rows == 1024

    def test_rejects_non_row_multiple(self):
        with pytest.raises(ArchitectureError):
            self._spec(capacity_bytes=1000)

    def test_rejects_bad_policy(self):
        with pytest.raises(ArchitectureError):
            self._spec(staging_policy="bogus")

    def test_rejects_negative_energy(self):
        with pytest.raises(ArchitectureError):
            self._spec(e_copy=-1.0)

    def test_rejects_bad_rewrite_period(self):
        with pytest.raises(ArchitectureError):
            self._spec(control_rewrite_period=0)
