"""Peephole-fused bytecode: exactness, structure, allocation wins,
and shard-parallel execution.

The fuser may only change *how* a plan executes — never its bits,
popcounts, or analytic Stats.  These tests pin the edge cases the
pass special-cases (single-step programs, every-step-an-output,
constant-only plans, self-cancelling operands) on both technologies,
and the tentpole wins themselves: fused plans take strictly fewer
steps and allocate strictly fewer matrices on real workloads, and
row-block parallel execution is bit- and Stats-identical to serial.
"""

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.arch.expr import compile_expr, parse
from repro.arch.program import Program, compile_program
from repro.service import BitwiseService
from repro.service.columnstore import ColumnStore, MatrixPool
from tests.arch.test_vector_program import N_BITS, QUERIES, numpy_eval
from tests.support.differential import assert_program_equivalent

EDGE_QUERIES = [
    "a",            # single step (copy)
    "~a",           # single step, no fusible pair
    "a & b",        # single step, output is the only dst
    "0",            # const-only
    "1",            # const-only
    "a ^ a",        # self-cancelling -> constant 0
    "a & ~a",       # andnot(a, a) -> constant 0
    "andnot(a, a)",
    "a | ~a",       # tautology
]


@pytest.fixture
def table(rng):
    return {name: rng.integers(0, 2, N_BITS, dtype=np.uint8)
            for name in "abcd"}


@pytest.fixture
def store(table):
    store = ColumnStore(N_BITS, 3)
    for name, bits in table.items():
        store.add(name, bits)
    return store


class TestFusedExactness:
    @pytest.mark.parametrize("query", QUERIES)
    @pytest.mark.parametrize("inverting", [True, False])
    def test_matches_numpy(self, store, table, query, inverting):
        plan = compile_expr(query, inverting=inverting)
        program = plan.vector_program(fused=True)
        matrix = program.run(store.snapshot(), shape=store.shape)
        expected = numpy_eval(parse(query), table)
        assert np.array_equal(store.unpack(matrix), expected), query
        assert int(store.popcounts(matrix).sum()) == int(expected.sum())

    @pytest.mark.parametrize("query", EDGE_QUERIES)
    @pytest.mark.parametrize("inverting", [True, False])
    def test_edge_queries(self, store, table, query, inverting):
        plan = compile_expr(query, inverting=inverting)
        program = plan.vector_program(fused=True)
        matrix = program.run(store.snapshot(), shape=store.shape)
        expected = numpy_eval(parse(query), table)
        assert np.array_equal(store.unpack(matrix), expected), query

    @pytest.mark.parametrize("query", QUERIES)
    def test_fused_with_pool_matches(self, store, table, query):
        pool = MatrixPool(store.shape)
        plan = compile_expr(query)
        program = plan.vector_program(fused=True)
        matrix = program.run(store.snapshot(), shape=store.shape,
                             pool=pool)
        expected = numpy_eval(parse(query), table)
        assert np.array_equal(store.unpack(matrix), expected), query

    def test_columns_never_written(self, store, table):
        before = {name: store.matrix(name).copy() for name in table}
        for query in QUERIES:
            plan = compile_expr(query, inverting=True)
            plan.vector_program(fused=True).run(store.snapshot(),
                                                shape=store.shape)
        for name, matrix in before.items():
            assert np.array_equal(store.matrix(name), matrix), name


class TestFusedStructure:
    def test_fused_program_cached_separately(self):
        plan = compile_expr("~(a & b) | c")
        fused = plan.vector_program(fused=True)
        assert plan.vector_program(fused=True) is fused
        assert plan.vector_program() is not fused
        assert fused.fused and not plan.vector_program().fused

    def test_unfused_program_not_mutated(self):
        plan = compile_expr("~(a ^ (b | ~c))")
        unfused_steps = list(plan.vector_program().steps)
        plan.vector_program(fused=True)
        assert list(plan.vector_program().steps) == unfused_steps

    def test_fusion_shrinks_multi_step_plans(self):
        # not-after-xor and not-after-nor both collapse.
        for query in ("~(a ^ b)", "(a & b & ~c) | (c & d)"):
            plan = compile_expr(query)
            fused = plan.vector_program(fused=True)
            assert len(fused.steps) < len(plan.vector_program().steps), \
                query

    def test_single_step_program_survives_fusion(self):
        plan = compile_expr("a & b")
        fused = plan.vector_program(fused=True)
        assert len(fused.steps) == len(plan.vector_program().steps)

    @pytest.mark.parametrize("technology", ["feram-2tnc", "dram"])
    def test_all_steps_outputs_program(self, technology, table):
        """Every statement is an output: nothing may fuse across the
        protected dsts, and the results must stay exact."""
        program = Program([
            ("x", parse("a & b")),
            ("y", parse("~x")),
            ("z", parse("x ^ c")),
        ], outputs=("x", "y", "z"))
        cprog = compile_program(program)
        fused = cprog.vector_program(fused=True)
        unfused = cprog.vector_program()
        assert len(fused.steps) == len(unfused.steps)
        assert_program_equivalent(program, table,
                                  technology=technology,
                                  n_shards=2, fused=True)

    def test_attributed_stats_untouched_by_fusion(self, table):
        """The analytic cost model prices the *plan*, not the host
        execution strategy: fusing must not change the attributed
        count/cycles/energy of a query."""
        results = {}
        for fuse in (False, True):
            svc = BitwiseService("feram-2tnc", n_bits=N_BITS,
                                 n_shards=3, backend="vector",
                                 fuse=fuse)
            try:
                for name, bits in table.items():
                    svc.create_column(name, bits)
                result = svc.query("~(a ^ (b | ~c))", use_cache=False)
                results[fuse] = (result.count, result.cycles,
                                 result.energy_j,
                                 result.primitives_per_row)
            finally:
                svc.close()
        assert results[True] == results[False]


class TestFusedAllocations:
    def test_fused_allocates_strictly_fewer_matrices(self):
        """Satellite contract: on the CRC8 program the fused executor
        must take strictly fewer pool misses (fresh allocations) than
        the unfused one."""
        from repro.workloads.crc8 import Crc8
        from repro.workloads.programs import generate_inputs

        workload_program = Crc8(1 << 10).as_program(seed=3)
        inputs = generate_inputs(workload_program, seed=3)
        misses = {}
        for fuse in (False, True):
            svc = BitwiseService(
                "feram-2tnc", n_bits=workload_program.n_lanes,
                n_shards=2, backend="vector", fuse=fuse)
            try:
                for name, bits in inputs.items():
                    svc.create_column(name, bits)
                svc.run_program(workload_program.program)
                pool = svc.stats()["executor"]["matrix_pool"]
                misses[fuse] = pool["misses"]
            finally:
                svc.close()
        assert misses[True] < misses[False], misses


class TestParallelExecution:
    @pytest.mark.parametrize("fused", [False, True])
    @pytest.mark.parametrize("blocks", [2, 3, 8])
    def test_row_blocks_match_serial(self, store, table, fused,
                                     blocks):
        with ThreadPoolExecutor(max_workers=2) as executor:
            for query in QUERIES:
                plan = compile_expr(query)
                program = plan.vector_program(fused=fused)
                serial = program.run(store.snapshot(),
                                     shape=store.shape)
                parallel = program.run(store.snapshot(),
                                       shape=store.shape,
                                       executor=executor,
                                       blocks=blocks)
                assert np.array_equal(serial, parallel), query

    @pytest.mark.parametrize("technology", ["feram-2tnc", "dram"])
    def test_parallel_service_backend_equivalent(self, technology,
                                                 table):
        """workers=2 with the size heuristic forced open must be
        indistinguishable from the reference replay — bits, counts,
        per-statement Stats, and the aggregate ledgers."""
        program = Program([
            ("t", parse("a & ~b")),
            ("u", parse("t ^ c")),
            ("v", parse("maj(t, u, d)")),
        ], outputs=("u", "v"))
        assert_program_equivalent(program, table,
                                  technology=technology, n_shards=3,
                                  fused=True, workers=2,
                                  parallel_min_work=0)

    def test_parallel_pool_reuse_stays_exact(self, store, table):
        """Pooled buffers + parallel replay: run the whole corpus
        twice through one pool so recycled matrices cross queries."""
        pool = MatrixPool(store.shape)
        with ThreadPoolExecutor(max_workers=2) as executor:
            for _ in range(2):
                for query in QUERIES:
                    plan = compile_expr(query)
                    program = plan.vector_program(fused=True)
                    matrix = program.run(store.snapshot(),
                                         shape=store.shape, pool=pool,
                                         executor=executor, blocks=3)
                    expected = numpy_eval(parse(query), table)
                    assert np.array_equal(store.unpack(matrix),
                                          expected), query
