"""Write-back economics tests."""

import pytest

from repro.arch.writeback import WritebackPolicy, compare_writeback_policies
from repro.errors import ArchitectureError


@pytest.fixture(scope="module")
def policies():
    return compare_writeback_policies()


class TestPolicies:
    def test_destructive_restores_every_read(self, policies):
        destructive, _ = policies
        assert destructive.reads_per_writeback == 1
        assert destructive.write_cycles_per_read == 1.0

    def test_qnro_supports_many_reads(self, policies):
        _, qnro = policies
        assert qnro.reads_per_writeback >= 10

    def test_qnro_cheaper_per_read(self, policies):
        destructive, qnro = policies
        assert qnro.energy_per_read_j < destructive.energy_per_read_j

    def test_endurance_gain_equals_period(self, policies):
        _, qnro = policies
        gain = qnro.endurance_reads(1e6) / 1e6
        assert gain == pytest.approx(qnro.reads_per_writeback)

    def test_stronger_read_shrinks_period(self):
        _, gentle = compare_writeback_policies(v_read=0.45)
        _, harsh = compare_writeback_policies(v_read=0.6)
        assert harsh.reads_per_writeback < gentle.reads_per_writeback

    def test_safety_factor_shrinks_period(self):
        _, loose = compare_writeback_policies(safety_factor=1.0)
        _, tight = compare_writeback_policies(safety_factor=4.0)
        assert tight.reads_per_writeback < loose.reads_per_writeback

    def test_validation(self):
        with pytest.raises(ArchitectureError):
            compare_writeback_policies(safety_factor=0.5)

    def test_infinite_endurance_without_writes(self):
        policy = WritebackPolicy("x", 10, 1e-9, 0.0)
        assert policy.endurance_reads(1e6) == float("inf")
