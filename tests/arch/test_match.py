"""CAM match primitive: parser, AIG lowering, engine kernel.

The design invariant under test: ``match(cols..., key, mask)`` is the
XNOR-reduce of the 2T-nC read path, and because each XNOR is against a
*constant* key bit it degenerates to an AND of (possibly negated)
column literals — so it canonicalizes, caches, compiles and costs
exactly like the equivalent hand-written boolean query.
"""

import numpy as np
import pytest

from repro.arch import expr as ex
from repro.arch.primitives import make_engine
from repro.errors import ArchitectureError, QueryError

TECHS = ("dram", "feram-2tnc")

N_BITS = 2048


def _oracle(values, key, care):
    out = np.ones(len(next(iter(values.values()))), dtype=np.uint8)
    for bits, k, c in zip(values.values(), key, care):
        if c:
            out &= bits ^ (1 - k)
    return out


class TestKeyParsing:
    def test_string_forms(self):
        assert ex._parse_key_bits("0b1x0", 3) == ((1, 0, 0), (1, 0, 1))
        assert ex._parse_key_bits("1X0", 3) == ((1, 0, 0), (1, 0, 1))

    def test_sequence_forms(self):
        assert ex._parse_key_bits([1, None, 0], 3) == \
            ((1, 0, 0), (1, 0, 1))
        assert ex._parse_key_bits((0, 1), 2) == ((0, 1), (1, 1))

    def test_mask_rejects_x(self):
        with pytest.raises(QueryError, match="mask"):
            ex._parse_key_bits("0b1x", 2, what="mask", allow_x=False)

    @pytest.mark.parametrize("bad,n", [
        ("0b12", 2), ("0b1", 2), ([2, 0], 2), ("", 1), ("0bzz", 2),
    ])
    def test_rejects_malformed(self, bad, n):
        with pytest.raises(QueryError):
            ex._parse_key_bits(bad, n)


class TestMatchExpr:
    def test_parse_roundtrip(self):
        parsed = ex.parse("match(a, b, c, 0b1x0)")
        assert isinstance(parsed, ex.Match)
        assert parsed.key == (1, 0, 0)
        assert parsed.mask == (1, 0, 1)
        assert str(parsed) == "match(a, b, c, 0b1x0)"
        assert str(ex.parse(str(parsed))) == str(parsed)

    def test_mask_literal_intersects(self):
        with_mask = ex.parse("match(a, b, c, 0b110, 0b101)")
        assert str(with_mask) == "match(a, b, c, 0b1x0)"

    def test_key_canonicalized_at_dont_cares(self):
        # A masked position's key bit must not affect identity.
        ternary = ex.Match(ex.Col("a"), ex.Col("b"), key="0b1x")
        masked = ex.Match(ex.Col("a"), ex.Col("b"), key="11", mask="10")
        assert str(ternary) == str(masked)
        assert ternary.key == masked.key == (1, 0)
        assert ex.canonical_key(ternary) == ex.canonical_key(masked)

    @pytest.mark.parametrize("bad", [
        "match(a, b)",                    # no key literal
        "match(0b10)",                    # no columns
        "match(a, 0b1, 0b1, 0b1)",        # too many literals
        "match(a, 0b10)",                 # width mismatch
        "match(a, 0b1x, b)",              # literal not last
        "match(a, b, 0b1x, 0b1x)",        # x in mask
        "0b10 & a",                       # key literal outside match
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(QueryError):
            ex.parse(bad)

    def test_bare_match_is_still_a_column(self):
        assert str(ex.parse("match & a")) == \
            str(ex.And(ex.Col("match"), ex.Col("a")))

    def test_canonical_key_equals_desugared_and(self):
        assert ex.canonical_key("match(a, b, c, 0b1x0)") == \
            ex.canonical_key("a & ~c")
        assert ex.canonical_key("match(a, b, 0b11)") == \
            ex.canonical_key("a & b")
        assert ex.canonical_key("match(a, 0bx)") == ex.canonical_key("1")

    def test_as_logic(self):
        assert str(ex.parse("match(a, b, 0b10)").as_logic()) == \
            str(ex.And(ex.Col("a"), ex.Not(ex.Col("b"))))
        assert isinstance(ex.parse("match(a, 0bx)").as_logic(), ex.Const)
        assert str(ex.parse("match(a, 0b0)").as_logic()) == "~a"


@pytest.mark.parametrize("tech", TECHS)
class TestEngineMatch:
    @pytest.mark.parametrize("key", [
        "0b101",        # mixed literals
        "0b111",        # all positive
        "0b000",        # all negated
        "0b1x0",        # ternary: mask excludes the middle column
        "0bxxx",        # fully masked -> all ones
    ])
    def test_matches_oracle(self, tech, rng, key):
        # The engine layer takes parsed 0/1 bits; the expr layer owns
        # the string forms.
        bits, care = ex._parse_key_bits(key, 3)
        engine = make_engine(tech)
        values = {n: rng.integers(0, 2, N_BITS, dtype=np.uint8)
                  for n in "abc"}
        columns = _load_columns_list(engine, values)
        result = engine.match(columns, bits, care)
        assert np.array_equal(result.logical_bits(),
                              _oracle(values, bits, care))

    def test_aliased_columns(self, tech, rng):
        engine = make_engine(tech)
        a = engine.load(rng.integers(0, 2, N_BITS, dtype=np.uint8), "a")
        same = engine.match([a, a], [1, 1])
        assert np.array_equal(same.logical_bits(), a.logical_bits())
        clash = engine.match([a, a], [1, 0])
        assert not clash.logical_bits().any()
        inverse = engine.match([a, a], [0, 0])
        assert np.array_equal(inverse.logical_bits(),
                              1 - a.logical_bits())

    def test_counting_mode_charges_energy(self, tech, rng):
        engine = make_engine(tech, functional=False)
        first = engine.allocate(N_BITS)
        cols = [first] + [engine.allocate(N_BITS, group_with=first)
                          for _ in "bc"]
        before = engine.stats.total_energy_j
        engine.match(cols, [1, 0, 1])
        assert engine.stats.total_energy_j > before

    @pytest.mark.parametrize("key,mask", [
        ([1], None),           # wrong arity
        ([1, 2], None),        # bad bit
        ([1, 1], [1]),         # mask arity
        ([1, 1], [1, 3]),      # bad mask bit
        ([], None),            # empty key
    ])
    def test_rejects_malformed(self, tech, rng, key, mask):
        engine = make_engine(tech)
        values = {n: rng.integers(0, 2, N_BITS, dtype=np.uint8)
                  for n in "ab"}
        columns = _load_columns_list(engine, values)
        with pytest.raises(ArchitectureError):
            engine.match(columns, key, mask)

    def test_no_columns_rejected(self, tech):
        engine = make_engine(tech)
        with pytest.raises(ArchitectureError):
            engine.match([], [])


def _load_columns_list(engine, values):
    first = None
    columns = []
    for name, bits in values.items():
        vec = engine.load(bits, name, group_with=first)
        columns.append(vec)
        first = first or vec
    return columns


@pytest.mark.parametrize("tech", TECHS)
class TestCompiledMatch:
    QUERIES = [
        "match(a, b, c, 0b1x0)",
        "match(a, b, c, 0b111)",
        "match(a, b, c, 0b000)",
        "match(a, b, 0b10) | match(b, c, 0b01)",
        "match(a, b, c, 0bxxx)",
    ]

    @pytest.mark.parametrize("query", QUERIES)
    def test_naive_and_compiled_match_oracle(self, tech, rng, query):
        engine = make_engine(tech)
        values = {n: rng.integers(0, 2, N_BITS, dtype=np.uint8)
                  for n in "abc"}
        columns = {}
        first = None
        for name, bits in values.items():
            columns[name] = engine.load(bits, name, group_with=first)
            first = first or columns[name]
        naive = ex.naive_run(query, engine, columns).logical_bits()
        plan = ex.compile_for(engine, query)
        compiled = plan.run(engine, columns).logical_bits()
        truth = _truth(query, values)
        assert np.array_equal(naive, truth)
        assert np.array_equal(compiled, truth)

    def test_match_hits_cache_of_desugared_form(self, tech, rng):
        engine = make_engine(tech)
        assert ex.compile_for(engine, "match(a, b, c, 0b1x0)").key == \
            ex.compile_for(engine, "a & ~c").key


def _truth(query, values):
    from repro.arch.program import Program
    from tests.support.differential import numpy_program_eval

    program = Program([("__q", ex.parse(query))])
    return numpy_program_eval(program, values)["__q"]
