"""Cost-accounting tests: exact command counts per op and policy."""

import pytest

from repro.arch.commands import CommandType
from repro.arch.primitives import make_engine
from repro.arch.spec import DRAM_8GB, FERAM_2TNC_8GB, StagingPolicy

ROW_BITS = 65536


def _count(engine, ctype):
    return engine.stats.counts.get(ctype, 0)


def _dram(policy=StagingPolicy.STAGED, n_rows=1):
    eng = make_engine("dram", functional=False,
                      spec=DRAM_8GB.with_policy(policy))
    a = eng.allocate(ROW_BITS * n_rows)
    b = eng.allocate(ROW_BITS * n_rows, group_with=a)
    return eng, a, b


def _feram(n_rows=1):
    eng = make_engine("feram-2tnc", functional=False)
    a = eng.allocate(ROW_BITS * n_rows)
    b = eng.allocate(ROW_BITS * n_rows, group_with=a)
    return eng, a, b


class TestDramPolicies:
    def test_paper_policy_one_aap_per_op(self):
        eng, a, b = _dram(StagingPolicy.PAPER)
        eng.and_(a, b)
        assert _count(eng, CommandType.ACTIVATE_TRA) == 1
        assert _count(eng, CommandType.PRECHARGE) == 1

    def test_staged_policy_two_aaps_per_op(self):
        eng, a, b = _dram(StagingPolicy.STAGED)
        eng.and_(a, b)
        assert _count(eng, CommandType.ACTIVATE_TRA) == 2
        assert eng.stats.staging_aaps == 1

    def test_ambit_policy_four_aaps_per_op(self):
        eng, a, b = _dram(StagingPolicy.AMBIT)
        eng.and_(a, b)
        assert _count(eng, CommandType.ACTIVATE_TRA) == 4
        assert eng.stats.staging_aaps == 3

    def test_not_costs_by_policy(self):
        for policy, expected in ((StagingPolicy.PAPER, 1),
                                 (StagingPolicy.STAGED, 2),
                                 (StagingPolicy.AMBIT, 2)):
            eng, a, _ = _dram(policy)
            eng.not_(a)
            eng.materialize(a)
            assert _count(eng, CommandType.ACTIVATE_TRA) == expected, policy

    def test_xor_staged_is_eight_aaps(self):
        eng, a, b = _dram(StagingPolicy.STAGED)
        eng.xor(a, b)
        assert _count(eng, CommandType.ACTIVATE_TRA) == 8

    def test_counts_scale_with_rows(self):
        eng, a, b = _dram(StagingPolicy.STAGED, n_rows=16)
        eng.and_(a, b)
        assert _count(eng, CommandType.ACTIVATE_TRA) == 32

    def test_constant_is_one_aap(self):
        eng, _, _ = _dram(StagingPolicy.STAGED)
        before = _count(eng, CommandType.ACTIVATE_TRA)
        eng.constant(ROW_BITS, 0)
        assert _count(eng, CommandType.ACTIVATE_TRA) == before + 1


class TestFeramCosts:
    def test_logic_op_is_one_acp(self):
        eng, a, b = _feram()
        eng.nand(a, b)
        assert _count(eng, CommandType.ACTIVATE_TBA) == 1
        assert _count(eng, CommandType.COPY) == 1
        assert _count(eng, CommandType.PRECHARGE) == 1

    def test_not_is_one_acp(self):
        eng, a, _ = _feram()
        eng.not_(a)
        eng.materialize(a)
        assert _count(eng, CommandType.ACTIVATE_TBA) == 1

    def test_xor_is_four_acps(self):
        eng, a, b = _feram()
        eng.xor(a, b)
        assert _count(eng, CommandType.ACTIVATE_TBA) == 4

    def test_relocation_for_non_colocated(self):
        eng = make_engine("feram-2tnc", functional=False)
        a = eng.allocate(ROW_BITS)
        b = eng.allocate(ROW_BITS)  # different group
        eng.and_(a, b)
        assert eng.stats.relocation_acps == 1
        # Once unified, further ops need no relocation.
        eng.and_(a, b)
        assert eng.stats.relocation_acps == 1

    def test_control_rewrite_cadence(self):
        eng, a, b = _feram()
        period = FERAM_2TNC_8GB.control_rewrite_period
        for _ in range(period):
            eng.and_(a, b)
        assert eng.stats.control_rewrites == 1

    def test_constant_is_row_write(self):
        eng, _, _ = _feram()
        eng.constant(ROW_BITS, 1)
        assert _count(eng, CommandType.ROW_WRITE) == 1
        assert _count(eng, CommandType.ACTIVATE_TBA) == 0


class TestEnergyBookkeeping:
    def test_dram_op_energy(self):
        eng, a, b = _dram(StagingPolicy.STAGED)
        eng.and_(a, b)
        expected = 2 * DRAM_8GB.aap_energy
        assert eng.stats.energy_j["compute"] == pytest.approx(expected)

    def test_feram_op_energy(self):
        eng, a, b = _feram()
        eng.and_(a, b)
        assert eng.stats.energy_j["compute"] == pytest.approx(
            FERAM_2TNC_8GB.acp_energy)

    def test_cycles_per_op(self):
        eng, a, b = _feram()
        eng.and_(a, b)
        assert eng.stats.total_cycles == 3

    def test_headline_ratio_band(self):
        """The per-op DRAM/FeRAM ratios sit in the paper's band."""
        results = {}
        for tech, make in (("dram", _dram), ("feram", _feram)):
            eng, a, b = make(n_rows=1024) if tech == "feram" else \
                _dram(StagingPolicy.STAGED, n_rows=1024)
            eng.and_(a, b)
            stats = eng.finalize()
            results[tech] = (stats.total_energy_j, stats.total_cycles)
        e_ratio = results["dram"][0] / results["feram"][0]
        c_ratio = results["dram"][1] / results["feram"][1]
        assert 1.9 <= e_ratio <= 3.2
        assert 1.8 <= c_ratio <= 2.2

    def test_stats_merge(self):
        eng1, a, b = _feram()
        eng1.and_(a, b)
        eng2, c, d = _feram()
        eng2.xor(c, d)
        merged = eng1.stats.merged_with(eng2.stats)
        assert merged.total_cycles == (eng1.stats.total_cycles
                                       + eng2.stats.total_cycles)
        assert merged.total_energy_j == pytest.approx(
            eng1.stats.total_energy_j + eng2.stats.total_energy_j)

    def test_summary_keys(self):
        eng, a, b = _feram()
        eng.and_(a, b)
        summary = eng.stats.summary()
        for key in ("energy_total_nj", "cycles_total", "cycles_compute"):
            assert key in summary
