"""Register-machine bytecode: bit-exactness against numpy references."""

import numpy as np
import pytest

from repro.arch.expr import compile_expr, parse
from repro.errors import QueryError
from repro.service.columnstore import ColumnStore, MatrixPool

N_BITS = 777  # non-multiple of 64: exercises masking/tails
QUERIES = [
    "a",
    "~a",
    "a & b",
    "~(a & b)",
    "a | b",
    "~a & ~b",
    "~a | ~b",
    "a & ~b",
    "a ^ b",
    "~a ^ b",
    "a ^ a",
    "a & ~a",
    "a | ~a",
    "andnot(a, a)",
    "maj(a, b, c)",
    "maj(~a, b, c)",
    "maj(a, a, b)",
    "sel(a, b, c)",
    "sel(~a, b, ~c)",
    "(a & b & ~c) | (c & d)",
    "(a & b & ~c) | (a & b & d) | (c & ~d)",
    "a ^ b ^ c ^ d",
    "xnor(a, b)",
    "nor(a, b, c)",
    "nand(a, b)",
    "~(a ^ (b | ~c))",
    "0",
    "1",
    "a & 1",
    "a & 0",
]


def numpy_eval(expr, table):
    """Bit-level reference evaluation of the raw AST."""
    from repro.arch import expr as e

    if isinstance(expr, e.Col):
        return table[expr.name]
    if isinstance(expr, e.Const):
        return np.full(N_BITS, expr.bit, dtype=np.uint8)
    kids = [numpy_eval(k, table) for k in expr.children()]
    if isinstance(expr, e.Not):
        return 1 - kids[0]
    if isinstance(expr, (e.And, e.Nand)):
        out = kids[0]
        for k in kids[1:]:
            out = out & k
        return 1 - out if isinstance(expr, e.Nand) else out
    if isinstance(expr, (e.Or, e.Nor)):
        out = kids[0]
        for k in kids[1:]:
            out = out | k
        return 1 - out if isinstance(expr, e.Nor) else out
    if isinstance(expr, (e.Xor, e.Xnor)):
        out = kids[0]
        for k in kids[1:]:
            out = out ^ k
        return 1 - out if isinstance(expr, e.Xnor) else out
    if isinstance(expr, e.AndNot):
        return kids[0] & (1 - kids[1])
    if isinstance(expr, e.Maj):
        return ((kids[0].astype(int) + kids[1] + kids[2]) >= 2
                ).astype(np.uint8)
    if isinstance(expr, e.Select):
        return (kids[0] & kids[1]) | ((1 - kids[0]) & kids[2])
    raise AssertionError(type(expr))


@pytest.fixture
def table(rng):
    return {name: rng.integers(0, 2, N_BITS, dtype=np.uint8)
            for name in "abcd"}


@pytest.fixture
def store(table):
    store = ColumnStore(N_BITS, 3)
    for name, bits in table.items():
        store.add(name, bits)
    return store


class TestProgramExactness:
    @pytest.mark.parametrize("query", QUERIES)
    @pytest.mark.parametrize("inverting", [True, False])
    def test_matches_numpy(self, store, table, query, inverting):
        plan = compile_expr(query, inverting=inverting)
        program = plan.vector_program()
        matrix = program.run(store.snapshot(), shape=store.shape)
        expected = numpy_eval(parse(query), table)
        assert np.array_equal(store.unpack(matrix), expected), query
        assert int(store.popcounts(matrix).sum()) == int(expected.sum())

    def test_program_is_cached_on_plan(self):
        plan = compile_expr("a & b")
        assert plan.vector_program() is plan.vector_program()

    def test_constant_program_needs_shape(self):
        plan = compile_expr("1")
        with pytest.raises(QueryError, match="shape"):
            plan.vector_program().run({})

    def test_columns_never_written(self, store, table):
        before = {name: store.matrix(name).copy() for name in table}
        for query in QUERIES:
            plan = compile_expr(query, inverting=True)
            plan.vector_program().run(store.snapshot(),
                                      shape=store.shape)
        for name in table:
            assert np.array_equal(store.matrix(name), before[name]), name


class TestNodeCache:
    def test_shared_subexpression_reused(self, store, table):
        cache = {}
        plan1 = compile_expr("(a & b) | c")
        plan2 = compile_expr("(b & a) | d")  # commuted: same AIG node
        m1 = plan1.vector_program().run(store.snapshot(),
                                        shape=store.shape,
                                        node_cache=cache)
        keys_after_first = set(cache)
        m2 = plan2.vector_program().run(store.snapshot(),
                                        shape=store.shape,
                                        node_cache=cache)
        # The a&b node was computed once and shared.
        shared = [key for key in keys_after_first if "&" in key]
        assert shared
        assert np.array_equal(store.unpack(m1),
                              table["a"] & table["b"] | table["c"])
        assert np.array_equal(store.unpack(m2),
                              table["a"] & table["b"] | table["d"])

    def test_cached_matrices_not_corrupted(self, store, table):
        """Later queries must not overwrite cache-shared matrices."""
        cache = {}
        plan = compile_expr("a & b")
        first = plan.vector_program().run(store.snapshot(),
                                          shape=store.shape,
                                          node_cache=cache)
        snapshot = first.copy()
        # A negated consumer of the same node, plus unrelated queries.
        for query in ("~(a & b)", "(a & b) ^ c", "maj(a, b, c) | ~d"):
            compile_expr(query).vector_program().run(
                store.snapshot(), shape=store.shape, node_cache=cache)
        assert np.array_equal(first, snapshot)

    def test_pool_never_hands_out_cached_matrices(self, store, table):
        """Donated matrices must not be recycled as scratch while the
        batch cache is alive (they would be overwritten)."""
        cache = {}
        pool = MatrixPool(store.shape)
        results = {}
        for query in ("a & b", "(a & b) | c", "(a & b) ^ d",
                      "~(a & b)", "maj(a, b, c)"):
            matrix = compile_expr(query).vector_program().run(
                store.snapshot(), shape=store.shape, pool=pool,
                node_cache=cache)
            results[query] = (matrix, store.unpack(matrix).copy())
        for query, (matrix, bits) in results.items():
            assert np.array_equal(store.unpack(matrix), bits), query
