"""Closed-form plan coster == engine replay, field for field.

The columnar backend never issues per-op charge calls: it expands each
plan's probed charge events (:meth:`CompiledQuery.cost_events`)
through :func:`repro.arch.primitives.plan_stats`.  These property
tests pin that expansion against the ground truth — an actual engine
replay's ``Stats`` delta — over random expressions, both
technologies, every DRAM staging policy, and chained queries (replay
cost is column-flag-state dependent and FeRAM's control-rewrite
counter carries across queries, so sequences are the hard case).

Integer fields (command counts, cycles, staging/relocation/control
counters) must match exactly; energy totals accumulate in a different
floating-point order, so they compare at 1e-9 relative tolerance via
``Stats.allclose``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import expr as e
from repro.arch.primitives import default_spec, make_engine, plan_stats
from repro.arch.spec import StagingPolicy

COLS = ("a", "b", "c", "d")
N_ROWS = 2  # multi-row shard: exercises per-row scaling


def _leaf():
    return st.one_of(
        st.sampled_from(COLS).map(e.Col),
        st.sampled_from([0, 1]).map(e.Const),
    )


def _combine(children):
    two = st.tuples(children, children)
    three = st.tuples(children, children, children)
    return st.one_of(
        children.map(e.Not),
        two.map(lambda t: e.And(*t)),
        two.map(lambda t: e.Or(*t)),
        two.map(lambda t: e.Xor(*t)),
        two.map(lambda t: e.Nand(*t)),
        two.map(lambda t: e.Nor(*t)),
        two.map(lambda t: e.Xnor(*t)),
        two.map(lambda t: e.AndNot(*t)),
        three.map(lambda t: e.Maj(*t)),
        three.map(lambda t: e.Select(*t)),
    )


expressions = st.recursive(_leaf(), _combine, max_leaves=8)

SPECS = [default_spec("feram-2tnc")] + [
    default_spec("dram").with_policy(policy)
    for policy in StagingPolicy.ALL
]


def _shard_engine(spec):
    """A counting engine laid out like a service shard."""
    engine = make_engine(spec.technology, functional=False, spec=spec)
    columns = {}
    first = None
    for name in COLS:
        vec = engine.allocate(N_ROWS * spec.row_bits, name,
                              group_with=first)
        first = first or vec
        columns[name] = vec
    return engine, columns


def _replay(engine, plan, columns):
    before = engine.stats.copy()
    out = plan.run(engine, columns)
    engine.free(out)
    return engine.stats.minus(before)


def _analytic(engine, spec, plan, columns):
    flags = tuple(columns[name].complemented for name in plan.cols)
    offset = getattr(engine, "_tba_since_control_rewrite", 0)
    events, final = plan.cost_events(flags)
    stats, new_offset = plan_stats(spec, events, N_ROWS,
                                   tba_offset=offset)
    return stats, new_offset, final


class TestAnalyticEqualsReplay:
    @settings(max_examples=60)
    @given(expr=expressions, spec=st.sampled_from(SPECS))
    def test_single_query(self, expr, spec):
        engine, columns = _shard_engine(spec)
        plan = e.compile_expr(expr,
                              inverting=engine._native_inverting())
        analytic, new_offset, final = _analytic(engine, spec, plan,
                                                columns)
        replayed = _replay(engine, plan, columns)
        assert analytic.allclose(replayed), (
            str(expr), analytic, replayed)
        assert new_offset == getattr(engine,
                                     "_tba_since_control_rewrite", 0)
        # Predicted column flag evolution matches the engine's.
        for name, flag in zip(plan.cols, final):
            assert columns[name].complemented == flag, str(expr)

    @settings(max_examples=25)
    @given(exprs=st.lists(expressions, min_size=2, max_size=4),
           spec=st.sampled_from(SPECS))
    def test_chained_queries(self, exprs, spec):
        """Sequences: flag state and the control-rewrite counter carry
        across queries; every per-query delta must still match."""
        engine, columns = _shard_engine(spec)
        for expr in exprs:
            plan = e.compile_expr(expr,
                                  inverting=engine._native_inverting())
            analytic, _, _ = _analytic(engine, spec, plan, columns)
            replayed = _replay(engine, plan, columns)
            assert analytic.allclose(replayed), (
                str(expr), analytic, replayed)


class TestControlRewriteCarry:
    def test_offsets_cross_period_boundaries(self):
        """Repeated queries accumulate TBA reads past the FeRAM
        control-rewrite period; the closed form tracks the counter
        exactly (totals depend only on the running sum)."""
        spec = default_spec("feram-2tnc")
        engine, columns = _shard_engine(spec)
        plan = e.compile_expr("(a & b & ~c) | (c & d)", inverting=True)
        rewrites_analytic = 0
        rewrites_replayed = 0
        for _ in range(30):
            analytic, _, _ = _analytic(engine, spec, plan, columns)
            replayed = _replay(engine, plan, columns)
            assert analytic.allclose(replayed)
            rewrites_analytic += analytic.control_rewrites
            rewrites_replayed += replayed.control_rewrites
        assert rewrites_analytic == rewrites_replayed > 0


class TestAllclose:
    def test_detects_count_mismatch(self):
        from repro.arch.commands import Command, CommandType, Stats

        spec = default_spec("feram-2tnc")
        a, b = Stats(), Stats()
        a.record(spec, Command(CommandType.ACTIVATE_TBA, repeat=2))
        b.record(spec, Command(CommandType.ACTIVATE_TBA, repeat=3))
        assert not a.allclose(b)
        assert a.allclose(a.copy())


def test_probe_is_memoized_per_flag_state():
    plan = e.compile_expr("a & ~b", inverting=True)
    first = plan.cost_events((False, False))
    assert plan.cost_events((False, False)) is first
    other = plan.cost_events((True, False))
    assert other is not first


def test_events_match_primitive_counts():
    """The probe's logic events agree with the plan's measured
    primitive count minus materialized NOTs (sanity tie-in with the
    benchmark numbers)."""
    plan = e.compile_expr("(c0 & c1 & ~c2) | (c3 & c4 & c5)",
                          inverting=True)
    events, _ = plan.cost_events()
    assert events.logic + events.nots == plan.primitives == 6
