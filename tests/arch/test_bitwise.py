"""Bit-sliced arithmetic tests against numpy references."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.bitwise import (
    add_constant,
    full_adder,
    greater_equal_const,
    half_adder,
    popcount,
    ripple_add,
)
from repro.arch.primitives import make_engine
from repro.errors import ArchitectureError

N_BITS = 4096


def _load_planes(eng, values, width, rng=None):
    """Load an integer array as bit-sliced planes (LSB first)."""
    first = None
    planes = []
    for k in range(width):
        bits = ((values >> k) & 1).astype(np.uint8)
        vec = eng.load(bits, group_with=first)
        first = first or vec
        planes.append(vec)
    return planes


def _read_planes(planes):
    return sum(p.logical_bits().astype(np.int64) << k
               for k, p in enumerate(planes))


class TestAdders:
    def test_half_adder(self, rng):
        eng = make_engine("feram-2tnc")
        a_bits = rng.integers(0, 2, N_BITS, dtype=np.uint8)
        b_bits = rng.integers(0, 2, N_BITS, dtype=np.uint8)
        a = eng.load(a_bits)
        b = eng.load(b_bits, group_with=a)
        s, c = half_adder(eng, a, b)
        assert np.array_equal(s.logical_bits(), a_bits ^ b_bits)
        assert np.array_equal(c.logical_bits(), a_bits & b_bits)

    def test_full_adder(self, rng):
        eng = make_engine("feram-2tnc")
        bits = [rng.integers(0, 2, N_BITS, dtype=np.uint8)
                for _ in range(3)]
        first = eng.load(bits[0])
        vecs = [first] + [eng.load(b, group_with=first)
                          for b in bits[1:]]
        s, c = full_adder(eng, *vecs)
        total = bits[0].astype(int) + bits[1] + bits[2]
        assert np.array_equal(s.logical_bits(), (total & 1).astype(np.uint8))
        assert np.array_equal(c.logical_bits(),
                              (total >= 2).astype(np.uint8))

    @pytest.mark.parametrize("tech", ["dram", "feram-2tnc"])
    def test_ripple_add(self, tech, rng):
        eng = make_engine(tech)
        a_vals = rng.integers(0, 8, N_BITS)
        b_vals = rng.integers(0, 8, N_BITS)
        a = _load_planes(eng, a_vals, 3)
        b = _load_planes(eng, b_vals, 3)
        out = ripple_add(eng, a, b)
        assert len(out) == 4
        assert np.array_equal(_read_planes(out), a_vals + b_vals)

    def test_ripple_add_unequal_widths(self, rng):
        eng = make_engine("feram-2tnc")
        a_vals = rng.integers(0, 16, N_BITS)
        b_vals = rng.integers(0, 2, N_BITS)
        a = _load_planes(eng, a_vals, 4)
        b = _load_planes(eng, b_vals, 1)
        out = ripple_add(eng, a, b)
        assert np.array_equal(_read_planes(out), a_vals + b_vals)

    def test_ripple_add_rejects_empty(self):
        eng = make_engine("feram-2tnc")
        with pytest.raises(ArchitectureError):
            ripple_add(eng, [], [])

    def test_add_constant(self, rng):
        eng = make_engine("feram-2tnc")
        vals = rng.integers(0, 8, N_BITS)
        planes = _load_planes(eng, vals, 3)
        out = add_constant(eng, planes, 5)
        assert np.array_equal(_read_planes(out), vals + 5)

    def test_add_constant_rejects_negative(self):
        eng = make_engine("feram-2tnc")
        planes = _load_planes(eng, np.zeros(N_BITS, dtype=int), 2)
        with pytest.raises(ArchitectureError):
            add_constant(eng, planes, -1)


class TestPopcount:
    @settings(max_examples=10)
    @given(n_inputs=st.integers(min_value=1, max_value=9))
    def test_popcount_matches_sum(self, n_inputs):
        rng = np.random.default_rng(n_inputs)
        eng = make_engine("feram-2tnc")
        bits = [rng.integers(0, 2, 512, dtype=np.uint8)
                for _ in range(n_inputs)]
        first = eng.load(bits[0])
        vecs = [first] + [eng.load(b, group_with=first)
                          for b in bits[1:]]
        counts = popcount(eng, vecs)
        ref = sum(b.astype(int) for b in bits)
        assert np.array_equal(_read_planes(counts), ref)

    def test_popcount_rejects_empty(self):
        with pytest.raises(ArchitectureError):
            popcount(make_engine("feram-2tnc"), [])

    def test_popcount_does_not_consume_inputs(self, rng):
        eng = make_engine("feram-2tnc")
        bits = rng.integers(0, 2, 512, dtype=np.uint8)
        vec = eng.load(bits)
        popcount(eng, [vec])
        assert np.array_equal(vec.logical_bits(), bits)


class TestThreshold:
    @pytest.mark.parametrize("threshold", [0, 1, 3, 5, 8])
    def test_ge_const(self, threshold, rng):
        eng = make_engine("feram-2tnc")
        vals = rng.integers(0, 8, N_BITS)
        planes = _load_planes(eng, vals, 3)
        out = greater_equal_const(eng, planes, threshold)
        assert np.array_equal(out.logical_bits(),
                              (vals >= threshold).astype(np.uint8))

    def test_ge_impossible_threshold(self, rng):
        eng = make_engine("feram-2tnc")
        planes = _load_planes(eng, rng.integers(0, 8, 512), 3)
        out = greater_equal_const(eng, planes, 9)
        assert np.all(out.logical_bits() == 0)

    def test_ge_rejects_negative(self):
        eng = make_engine("feram-2tnc")
        planes = _load_planes(eng, np.zeros(512, dtype=int), 2)
        with pytest.raises(ArchitectureError):
            greater_equal_const(eng, planes, -1)
