"""Functional correctness of the bulk engines against numpy references."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.primitives import make_engine
from repro.errors import ArchitectureError

N_BITS = 65536  # one row

TECHS = ("dram", "feram-2tnc")


def _pair(eng, rng):
    a_bits = rng.integers(0, 2, N_BITS, dtype=np.uint8)
    b_bits = rng.integers(0, 2, N_BITS, dtype=np.uint8)
    a = eng.load(a_bits)
    b = eng.load(b_bits, group_with=a)
    return a, b, a_bits, b_bits


@pytest.mark.parametrize("tech", TECHS)
class TestBinaryOps:
    def test_and(self, tech, rng):
        eng = make_engine(tech)
        a, b, ab, bb = _pair(eng, rng)
        assert np.array_equal(eng.and_(a, b).logical_bits(), ab & bb)

    def test_or(self, tech, rng):
        eng = make_engine(tech)
        a, b, ab, bb = _pair(eng, rng)
        assert np.array_equal(eng.or_(a, b).logical_bits(), ab | bb)

    def test_nand(self, tech, rng):
        eng = make_engine(tech)
        a, b, ab, bb = _pair(eng, rng)
        assert np.array_equal(eng.nand(a, b).logical_bits(), 1 - (ab & bb))

    def test_nor(self, tech, rng):
        eng = make_engine(tech)
        a, b, ab, bb = _pair(eng, rng)
        assert np.array_equal(eng.nor(a, b).logical_bits(), 1 - (ab | bb))

    def test_xor(self, tech, rng):
        eng = make_engine(tech)
        a, b, ab, bb = _pair(eng, rng)
        assert np.array_equal(eng.xor(a, b).logical_bits(), ab ^ bb)

    def test_xnor(self, tech, rng):
        eng = make_engine(tech)
        a, b, ab, bb = _pair(eng, rng)
        assert np.array_equal(eng.xnor(a, b).logical_bits(),
                              1 - (ab ^ bb))

    def test_andnot(self, tech, rng):
        eng = make_engine(tech)
        a, b, ab, bb = _pair(eng, rng)
        assert np.array_equal(eng.andnot(a, b).logical_bits(),
                              ab & (1 - bb))

    def test_andnot_restores_operand_view(self, tech, rng):
        eng = make_engine(tech)
        a, b, ab, bb = _pair(eng, rng)
        eng.andnot(a, b)
        assert np.array_equal(b.logical_bits(), bb)

    def test_ops_on_complemented_operands(self, tech, rng):
        eng = make_engine(tech)
        a, b, ab, bb = _pair(eng, rng)
        eng.not_(a)
        eng.not_(b)
        assert np.array_equal(eng.and_(a, b).logical_bits(),
                              (1 - ab) & (1 - bb))

    def test_ops_on_mixed_flags(self, tech, rng):
        eng = make_engine(tech)
        a, b, ab, bb = _pair(eng, rng)
        eng.not_(a)
        assert np.array_equal(eng.or_(a, b).logical_bits(),
                              (1 - ab) | bb)

    def test_xor_flags_pass_through(self, tech, rng):
        eng = make_engine(tech)
        a, b, ab, bb = _pair(eng, rng)
        eng.not_(a)
        assert np.array_equal(eng.xor(a, b).logical_bits(),
                              (1 - ab) ^ bb)


@pytest.mark.parametrize("tech", TECHS)
class TestUnaryAndTernary:
    def test_not_is_flag_flip(self, tech, rng):
        eng = make_engine(tech)
        a, _, ab, _ = _pair(eng, rng)
        before = eng.stats.total_cycles
        eng.not_(a)
        assert eng.stats.total_cycles == before  # free
        assert np.array_equal(a.logical_bits(), 1 - ab)

    def test_materialize_preserves_value(self, tech, rng):
        eng = make_engine(tech)
        a, _, ab, _ = _pair(eng, rng)
        eng.not_(a)
        eng.materialize(a)
        assert not a.complemented
        assert np.array_equal(a.logical_bits(), 1 - ab)

    def test_copy_value_and_independence(self, tech, rng):
        eng = make_engine(tech)
        a, _, ab, _ = _pair(eng, rng)
        c = eng.copy(a)
        eng.not_(c)
        assert np.array_equal(a.logical_bits(), ab)
        assert np.array_equal(c.logical_bits(), 1 - ab)

    def test_majority_uniform_flags(self, tech, rng):
        eng = make_engine(tech)
        a, b, ab, bb = _pair(eng, rng)
        c_bits = rng.integers(0, 2, N_BITS, dtype=np.uint8)
        c = eng.load(c_bits, group_with=a)
        m = eng.majority(a, b, c)
        ref = ((ab + bb + c_bits) >= 2).astype(np.uint8)
        assert np.array_equal(m.logical_bits(), ref)

    def test_majority_mixed_flags(self, tech, rng):
        eng = make_engine(tech)
        a, b, ab, bb = _pair(eng, rng)
        c_bits = rng.integers(0, 2, N_BITS, dtype=np.uint8)
        c = eng.load(c_bits, group_with=a)
        eng.not_(b)
        m = eng.majority(a, b, c)
        ref = ((ab + (1 - bb) + c_bits) >= 2).astype(np.uint8)
        assert np.array_equal(m.logical_bits(), ref)

    def test_select(self, tech, rng):
        eng = make_engine(tech)
        a, b, ab, bb = _pair(eng, rng)
        m_bits = rng.integers(0, 2, N_BITS, dtype=np.uint8)
        mask = eng.load(m_bits, group_with=a)
        out = eng.select(mask, a, b)
        ref = np.where(m_bits == 1, ab, bb).astype(np.uint8)
        assert np.array_equal(out.logical_bits(), ref)

    def test_constant_values(self, tech, rng):
        eng = make_engine(tech)
        ones = eng.constant(N_BITS, 1)
        zeros = eng.constant(N_BITS, 0)
        assert np.all(ones.logical_bits() == 1)
        assert np.all(zeros.logical_bits() == 0)


class TestErrors:
    def test_width_mismatch(self, rng):
        eng = make_engine("dram")
        a = eng.allocate(64)
        b = eng.allocate(128)
        with pytest.raises(ArchitectureError, match="width"):
            eng.and_(a, b)

    def test_use_after_free(self, rng):
        eng = make_engine("dram")
        a = eng.allocate(64)
        b = eng.allocate(64)
        eng.free(a)
        with pytest.raises(ArchitectureError, match="use after free"):
            eng.and_(a, b)

    def test_constant_validates_bit(self):
        eng = make_engine("dram")
        with pytest.raises(ArchitectureError):
            eng.constant(64, 2)

    def test_make_engine_rejects_unknown(self):
        with pytest.raises(ArchitectureError):
            make_engine("sram")

    def test_engine_spec_mismatch(self):
        from repro.arch.primitives import DramAmbitEngine
        from repro.arch.spec import FERAM_2TNC_8GB
        with pytest.raises(ArchitectureError):
            DramAmbitEngine(FERAM_2TNC_8GB)


@settings(max_examples=15)
@given(data=st.data())
@pytest.mark.parametrize("tech", TECHS)
def test_random_expression_tree(tech, data):
    """Random 3-deep expression evaluated identically by engine and numpy."""
    rng = np.random.default_rng(data.draw(st.integers(0, 2**16)))
    eng = make_engine(tech)
    n = 256
    bits = [rng.integers(0, 2, n, dtype=np.uint8) for _ in range(3)]
    first = eng.load(bits[0])
    vecs = [first] + [eng.load(b, group_with=first) for b in bits[1:]]
    ops = [("and", eng.and_, np.bitwise_and),
           ("or", eng.or_, np.bitwise_or),
           ("xor", eng.xor, np.bitwise_xor)]
    acc_vec, acc_ref = vecs[0], bits[0]
    for k in range(1, 3):
        name, eng_op, np_op = data.draw(st.sampled_from(ops))
        acc_vec = eng_op(acc_vec, vecs[k])
        acc_ref = np_op(acc_ref, bits[k])
        if data.draw(st.booleans()):
            acc_vec = eng.not_(acc_vec)
            acc_ref = 1 - acc_ref
    assert np.array_equal(acc_vec.logical_bits(), acc_ref)
