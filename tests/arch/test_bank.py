"""Bit-vector storage and allocator tests."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.arch.bank import BitVector, RowAllocator, pack_bits, unpack_bits
from repro.arch.spec import FERAM_2TNC_8GB
from repro.errors import ArchitectureError


class TestPacking:
    @given(st.integers(min_value=1, max_value=4))
    def test_roundtrip(self, n_rows):
        rng = np.random.default_rng(n_rows)
        bits = rng.integers(0, 2, n_rows * 128, dtype=np.uint8)
        words = pack_bits(bits, 128)
        assert words.shape == (n_rows, 2)
        assert np.array_equal(unpack_bits(words), bits)

    def test_rejects_non_multiple(self):
        with pytest.raises(ArchitectureError):
            pack_bits(np.zeros(100, dtype=np.uint8), 128)

    def test_rejects_2d(self):
        with pytest.raises(ArchitectureError):
            pack_bits(np.zeros((2, 64), dtype=np.uint8), 64)

    def test_bit_order_little(self):
        bits = np.zeros(64, dtype=np.uint8)
        bits[0] = 1
        assert int(pack_bits(bits, 64)[0, 0]) == 1


class TestBitVector:
    def test_value_resolves_flag(self):
        v = BitVector("x", 64, 1,
                      payload=np.array([[5]], dtype=np.uint64))
        v.complemented = True
        assert int(v.value()[0, 0]) == (~5) & (2**64 - 1)

    def test_logical_bits_truncates_to_width(self):
        v = BitVector("x", 10, 1,
                      payload=np.array([[1023]], dtype=np.uint64))
        assert v.logical_bits().size == 10

    def test_counting_mode_returns_none(self):
        v = BitVector("x", 64, 1)
        assert v.value() is None
        assert v.logical_bits() is None


class TestAllocator:
    def _alloc(self) -> RowAllocator:
        return RowAllocator(FERAM_2TNC_8GB)

    def test_rows_for_bits_rounds_up(self):
        alloc = self._alloc()
        assert alloc.rows_for_bits(1) == 1
        assert alloc.rows_for_bits(65536) == 1
        assert alloc.rows_for_bits(65537) == 2

    def test_allocate_tracks_usage(self):
        alloc = self._alloc()
        alloc.allocate("a", 65536 * 3)
        assert alloc.rows_used == 3

    def test_peak_tracks_high_water(self):
        alloc = self._alloc()
        a = alloc.allocate("a", 65536 * 4)
        alloc.free(a)
        alloc.allocate("b", 65536)
        assert alloc.rows_used == 1
        assert alloc.peak_rows_used == 4

    def test_double_free_rejected(self):
        alloc = self._alloc()
        a = alloc.allocate("a", 64)
        alloc.free(a)
        with pytest.raises(ArchitectureError):
            alloc.free(a)

    def test_out_of_memory(self):
        alloc = self._alloc()
        with pytest.raises(ArchitectureError, match="out of memory"):
            alloc.allocate("huge", FERAM_2TNC_8GB.capacity_bytes * 16)

    def test_rejects_zero_width(self):
        with pytest.raises(ArchitectureError):
            self._alloc().allocate("x", 0)


class TestGroups:
    def test_fresh_vectors_not_colocated(self):
        alloc = RowAllocator(FERAM_2TNC_8GB)
        a = alloc.allocate("a", 64)
        b = alloc.allocate("b", 64)
        assert not alloc.co_located(a, b)

    def test_unify_merges(self):
        alloc = RowAllocator(FERAM_2TNC_8GB)
        a = alloc.allocate("a", 64)
        b = alloc.allocate("b", 64)
        alloc.unify(a, b)
        assert alloc.co_located(a, b)

    def test_unify_transitive(self):
        alloc = RowAllocator(FERAM_2TNC_8GB)
        a, b, c = (alloc.allocate(n, 64) for n in "abc")
        alloc.unify(a, b)
        alloc.unify(b, c)
        assert alloc.co_located(a, c)

    def test_join_group(self):
        alloc = RowAllocator(FERAM_2TNC_8GB)
        a = alloc.allocate("a", 64)
        b = alloc.allocate("b", 64)
        alloc.join_group(b, a)
        assert alloc.co_located(a, b)
