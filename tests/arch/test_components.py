"""Component estimator registry: contents, exact assembly, areas.

The hard contract of the refactor: the paper's default specs are now
*assembled* from per-component estimators, and the assembled energies
must be **bitwise** equal to the historical hand-written constants —
``==``, not ``approx`` — so every golden fixture and differential
suite keeps passing unchanged.
"""

import ast
import inspect

import pytest

from repro.arch.components import (
    ACTIONS,
    CellGeometry,
    Component,
    DRAM_COSTS,
    FERAM_2TNC_COSTS,
    PERIPHERY_OVERHEAD,
    assemble_memory_spec,
    build_components,
    component_breakdown,
    component_class,
    component_classes,
    component_kinds,
    exact_partition,
    paper_memory_spec,
    reference_geometry,
    register,
    technologies,
    technology_costs,
)
from repro.arch.spec import DRAM_8GB, FERAM_2TNC_8GB
from repro.errors import ArchitectureError

KINDS = {"sense_amp", "row_decoder", "row_driver", "cell_array",
         "interconnect"}


# ----------------------------------------------------------------------
# registry contents
# ----------------------------------------------------------------------
def test_registry_covers_both_technologies():
    assert set(technologies()) == {"dram", "feram-2tnc"}
    for technology in technologies():
        assert set(component_kinds(technology)) == KINDS
        classes = component_classes(technology)
        assert len(classes) == len(KINDS)
        for cls in classes:
            assert cls.technology == technology
            assert component_class(technology, cls.kind) is cls


def test_register_rejects_duplicates_and_anonymous():
    class Nameless(Component):
        technology = "dram"

    with pytest.raises(ArchitectureError):
        register(Nameless)

    class DuplicateSenseAmp(Component):
        kind = "sense_amp"
        technology = "dram"

    with pytest.raises(ArchitectureError):
        register(DuplicateSenseAmp)


def test_unknown_lookups_raise():
    with pytest.raises(ArchitectureError):
        component_classes("sram")
    with pytest.raises(ArchitectureError):
        component_class("dram", "flux_capacitor")
    with pytest.raises(ArchitectureError):
        technology_costs("sram")
    with pytest.raises(ArchitectureError):
        reference_geometry("sram")


def test_shares_are_complete_partitions():
    """Energy shares sum to 1 per action; periphery areas split the
    whole §VII overhead budget."""
    for technology in technologies():
        classes = component_classes(technology)
        for action in ACTIONS:
            total = sum(cls.energy_share(action) for cls in classes)
            assert total == 1.0, (technology, action)
        assert sum(cls.AREA_SHARE for cls in classes) == 1.0


# ----------------------------------------------------------------------
# exact partition
# ----------------------------------------------------------------------
@pytest.mark.parametrize("total", [22.6e-9, 16.6e-9, 28e-9, 0.32e-9,
                                   1.0, 3.3333e-7, 7e-21])
@pytest.mark.parametrize("shares", [
    (0.5, 0.25, 0.125, 0.0625, 0.0625),
    (0.3, 0.3, 0.4),
    (1.0,),
    (0.0, 1.0, 0.0),
])
def test_exact_partition_chain_sum_is_bitwise(total, shares):
    parts = exact_partition(total, shares)
    acc = 0.0
    for part in parts:
        acc += part
    assert acc == total
    for part, share in zip(parts, shares):
        assert part == pytest.approx(total * share, rel=1e-9)


def test_exact_partition_rejects_negative_shares():
    with pytest.raises(ArchitectureError):
        exact_partition(1.0, (0.5, -0.5))
    with pytest.raises(ArchitectureError):
        exact_partition(1.0, ())


# ----------------------------------------------------------------------
# bit-exact default assembly (the refactor's hard constraint)
# ----------------------------------------------------------------------
def test_assembled_defaults_bitwise_equal_constants():
    """Registry-assembled specs reproduce the calibrated §VI scalars
    to the last float bit."""
    feram = paper_memory_spec("feram-2tnc")
    dram = paper_memory_spec("dram")
    assert feram.e_activate == 16.6e-9
    assert feram.e_copy == 28e-9
    assert feram.e_row_write == 28e-9
    assert feram.e_row_read == 16.6e-9
    assert feram.e_precharge == 0.32e-9
    assert dram.e_activate == 22.6e-9
    assert dram.e_copy == 22.6e-9
    assert dram.e_row_write == 22.6e-9
    assert dram.e_row_read == 22.6e-9
    assert dram.e_precharge == 0.32e-9
    # dataclass equality ignores the component list by design, so a
    # fresh assembly compares equal to the module-level constants
    assert feram == FERAM_2TNC_8GB
    assert dram == DRAM_8GB
    assert hash(feram) == hash(FERAM_2TNC_8GB)


def test_assembled_defaults_keep_paper_structure():
    assert FERAM_2TNC_8GB.n_planes == 3
    assert FERAM_2TNC_8GB.refresh_interval_s is None
    assert DRAM_8GB.n_planes == 1
    assert DRAM_8GB.refresh_interval_s == 64e-3
    assert FERAM_2TNC_8GB.components is not None
    assert DRAM_8GB.components is not None
    assert len(FERAM_2TNC_8GB.components) == len(KINDS)


def test_component_energies_chain_sum_to_spec_fields():
    for spec in (FERAM_2TNC_8GB, DRAM_8GB):
        for action, field in (("read", spec.e_activate),
                              ("write", spec.e_copy),
                              ("update", spec.e_precharge)):
            acc = 0.0
            for component in spec.components:
                acc += component.action_energy(action)
            assert acc == field, (spec.name, action)


def test_action_energy_rejects_unknown_action():
    component = FERAM_2TNC_8GB.components[0]
    with pytest.raises(ArchitectureError):
        component.action_energy("erase")


def test_scaled_override_drops_component_list():
    scaled = FERAM_2TNC_8GB.scaled(e_activate=1e-9)
    assert scaled.components is None
    assert scaled.e_activate == 1e-9


# ----------------------------------------------------------------------
# areas
# ----------------------------------------------------------------------
def test_component_areas_match_integration_area_model():
    """The per-component footprints reproduce ``integration.area``'s
    §V numbers: the cell array is the cell footprint, the periphery
    splits exactly the 50 % overhead budget."""
    from repro.integration.area import (
        planar_cell_area_nm2,
        vertical_cell_area_nm2,
    )

    feram = build_components("feram-2tnc")
    by_kind = {c.kind: c for c in feram}
    cell = vertical_cell_area_nm2()
    assert by_kind["cell_array"].get_area() == cell
    periphery = sum(c.get_area() for c in feram
                    if c.kind != "cell_array")
    assert periphery == pytest.approx(PERIPHERY_OVERHEAD * cell)

    planar = build_components(
        "feram-2tnc",
        reference_geometry("feram-2tnc").scaled(stacking="planar"))
    by_kind = {c.kind: c for c in planar}
    assert by_kind["cell_array"].get_area() == \
        planar_cell_area_nm2(3)


def test_dram_cell_area_follows_6f2():
    geometry = reference_geometry("dram")
    assert geometry.cell_area_nm2() == 6.0 * 28.0 * 28.0


def test_component_breakdown_shape():
    rows = component_breakdown("feram-2tnc")
    assert {row["kind"] for row in rows} == KINDS
    labels = {row["label"] for row in rows}
    assert "QNRO minority sense amp" in labels
    assert "wordline/plateline driver" in labels
    for row in rows:
        assert row["area_nm2"] > 0


# ----------------------------------------------------------------------
# geometry scaling
# ----------------------------------------------------------------------
def test_reference_ratios_are_exactly_one():
    for technology in technologies():
        ratios = reference_geometry(technology).ratios()
        assert all(value == 1.0 for value in ratios.values()), ratios


def test_off_reference_assembly_scales_energies():
    ref = reference_geometry("feram-2tnc")
    small = assemble_memory_spec("feram-2tnc",
                                 ref.scaled(f_nm=14.0))
    assert small.e_activate < FERAM_2TNC_8GB.e_activate
    wide = assemble_memory_spec(
        "feram-2tnc", ref.scaled(row_bytes=2 * ref.row_bytes))
    assert wide.e_activate > FERAM_2TNC_8GB.e_activate
    assert wide.row_bytes == 2 * ref.row_bytes


def test_geometry_validation():
    with pytest.raises(ArchitectureError):
        CellGeometry(technology="dram", n_caps=0)
    with pytest.raises(ArchitectureError):
        CellGeometry(technology="dram", f_nm=0.0)
    with pytest.raises(ArchitectureError):
        CellGeometry(technology="dram", stacking="diagonal")
    with pytest.raises(ArchitectureError):
        reference_geometry("dram").with_rows_per_bank(0)
    with pytest.raises(ArchitectureError):
        build_components("dram", reference_geometry("feram-2tnc"))


def test_with_rows_per_bank_resizes_capacity():
    geometry = reference_geometry("feram-2tnc").with_rows_per_bank(64)
    assert geometry.rows_per_bank == 64
    assert geometry.capacity_bytes == \
        geometry.row_bytes * geometry.n_caps * 64 * geometry.n_banks


# ----------------------------------------------------------------------
# satellite: no stray literals left behind in integration/area.py
# ----------------------------------------------------------------------
def test_area_module_has_no_stray_numeric_literals():
    """``integration.area`` must source every anchor from the registry:
    its code may keep trivial structural ints (defaults/validation)
    but no numeric constants — 28.0, 30.0, 130.0, 0.5 all live in
    ``repro.arch.components.geometry`` now."""
    from repro import integration

    source = inspect.getsource(integration.area)
    tree = ast.parse(source)
    stray = [node.value for node in ast.walk(tree)
             if isinstance(node, ast.Constant)
             and isinstance(node.value, (int, float))
             and not isinstance(node.value, bool)
             and node.value not in (0, 1, 3)]
    assert stray == [], f"stray numeric literals in area.py: {stray}"


def test_energy_cost_tables_single_source():
    assert DRAM_COSTS.row_read_j == 22.6e-9
    assert FERAM_2TNC_COSTS.row_read_j == 16.6e-9
    assert FERAM_2TNC_COSTS.row_write_j == 28e-9
    assert FERAM_2TNC_COSTS.row_update_j == 0.32e-9
