"""Aliased-operand matrix: every public engine op called with repeated
operands, on both technologies, checked bit-exactly against numpy.

The complement-flag algebra mutates operand flags inside compound ops;
this suite pins down that aliased operands (the same BitVector passed
twice) and restore-on-exit never corrupt values — the ``andnot(a, a)``
bug class — and that ``xor`` never mutates its operands at all (the
service layer runs queries concurrently over shared columns).
"""

import numpy as np
import pytest

from repro.arch.primitives import make_engine

N_BITS = 4096

TECHS = ("dram", "feram-2tnc")
FLAG_STATES = ("natural", "complemented")


def _setup(tech, rng, flag_state):
    eng = make_engine(tech)
    a_bits = rng.integers(0, 2, N_BITS, dtype=np.uint8)
    b_bits = rng.integers(0, 2, N_BITS, dtype=np.uint8)
    a = eng.load(a_bits)
    b = eng.load(b_bits, group_with=a)
    if flag_state == "complemented":
        eng.not_(a)
        a_bits = 1 - a_bits
    return eng, a, b, a_bits, b_bits


@pytest.mark.parametrize("flag_state", FLAG_STATES)
@pytest.mark.parametrize("tech", TECHS)
class TestAliasedBinaryOps:
    """op(a, a) for every binary op, in both flag encodings."""

    def test_and_idempotent(self, tech, rng, flag_state):
        eng, a, _, ab, _ = _setup(tech, rng, flag_state)
        assert np.array_equal(eng.and_(a, a).logical_bits(), ab)
        assert np.array_equal(a.logical_bits(), ab)

    def test_or_idempotent(self, tech, rng, flag_state):
        eng, a, _, ab, _ = _setup(tech, rng, flag_state)
        assert np.array_equal(eng.or_(a, a).logical_bits(), ab)
        assert np.array_equal(a.logical_bits(), ab)

    def test_nand_is_not(self, tech, rng, flag_state):
        eng, a, _, ab, _ = _setup(tech, rng, flag_state)
        assert np.array_equal(eng.nand(a, a).logical_bits(), 1 - ab)
        assert np.array_equal(a.logical_bits(), ab)

    def test_nor_is_not(self, tech, rng, flag_state):
        eng, a, _, ab, _ = _setup(tech, rng, flag_state)
        assert np.array_equal(eng.nor(a, a).logical_bits(), 1 - ab)
        assert np.array_equal(a.logical_bits(), ab)

    def test_xor_is_zero(self, tech, rng, flag_state):
        eng, a, _, ab, _ = _setup(tech, rng, flag_state)
        assert not eng.xor(a, a).logical_bits().any()
        assert np.array_equal(a.logical_bits(), ab)

    def test_xnor_is_one(self, tech, rng, flag_state):
        eng, a, _, ab, _ = _setup(tech, rng, flag_state)
        assert eng.xnor(a, a).logical_bits().all()
        assert np.array_equal(a.logical_bits(), ab)

    def test_andnot_is_zero(self, tech, rng, flag_state):
        """The original corruption: andnot(a, a) returned a."""
        eng, a, _, ab, _ = _setup(tech, rng, flag_state)
        assert not eng.andnot(a, a).logical_bits().any()
        # The shared operand's logical view must be restored.
        assert np.array_equal(a.logical_bits(), ab)


@pytest.mark.parametrize("tech", TECHS)
class TestAliasedTernaryOps:
    def test_majority_duplicate_pairs(self, tech, rng):
        eng, a, b, ab, bb = _setup(tech, rng, "natural")
        # maj(x, x, y) = x for every argument position of y.
        for op_args, expected in (((a, a, b), ab), ((a, b, a), ab),
                                  ((b, a, a), ab), ((a, a, a), ab)):
            got = eng.majority(*op_args).logical_bits()
            assert np.array_equal(got, expected), op_args
            assert np.array_equal(a.logical_bits(), ab)
            assert np.array_equal(b.logical_bits(), bb)

    def test_majority_duplicate_with_mixed_flags(self, tech, rng):
        eng, a, b, ab, bb = _setup(tech, rng, "natural")
        eng.not_(a)
        got = eng.majority(a, a, b).logical_bits()
        assert np.array_equal(got, 1 - ab)
        assert np.array_equal(b.logical_bits(), bb)

    def test_select_aliased_branches(self, tech, rng):
        eng, a, b, ab, bb = _setup(tech, rng, "natural")
        m_bits = rng.integers(0, 2, N_BITS, dtype=np.uint8)
        mask = eng.load(m_bits, group_with=a)
        # select(m, a, a) = a
        got = eng.select(mask, a, a).logical_bits()
        assert np.array_equal(got, ab)
        # select(m, m, b): mask also data
        got = eng.select(mask, mask, b).logical_bits()
        assert np.array_equal(got, np.where(m_bits == 1, m_bits,
                                            bb).astype(np.uint8))
        # select(m, a, m): the NOT-mask AND mask term must vanish
        got = eng.select(mask, a, mask).logical_bits()
        assert np.array_equal(got, np.where(m_bits == 1, ab,
                                            m_bits).astype(np.uint8))
        assert np.array_equal(mask.logical_bits(), m_bits)
        assert np.array_equal(a.logical_bits(), ab)
        assert np.array_equal(b.logical_bits(), bb)


@pytest.mark.parametrize("tech", TECHS)
class TestOperandPreservation:
    """Compound ops must restore every operand's logical view."""

    def test_andnot_restores_on_error(self, tech, rng):
        from repro.errors import ArchitectureError
        eng, a, b, ab, bb = _setup(tech, rng, "natural")
        short = eng.load(rng.integers(0, 2, 64, dtype=np.uint8))
        with pytest.raises(ArchitectureError):
            eng.andnot(short, b)  # width mismatch inside and_
        # The flip of b must have been rolled back.
        assert np.array_equal(b.logical_bits(), bb)

    def test_xor_never_mutates_operand_state(self, tech, rng):
        """Re-entrancy: xor computes with local flags — the operands'
        payloads and flags are unchanged mid-run and after."""
        eng, a, b, ab, bb = _setup(tech, rng, "natural")
        eng.not_(a)  # complemented operand
        payload_a = a.payload.copy()
        payload_b = b.payload.copy()
        flags = (a.complemented, b.complemented)
        observed = []
        original = eng._charge_logic

        def spy(n_rows):
            observed.append((a.complemented, b.complemented))
            return original(n_rows)

        eng._charge_logic = spy
        out = eng.xor(a, b)
        eng._charge_logic = original
        assert np.array_equal(out.logical_bits(), (1 - ab) ^ bb)
        assert (a.complemented, b.complemented) == flags
        assert np.array_equal(a.payload, payload_a)
        assert np.array_equal(b.payload, payload_b)
        # Mid-op observations: flags never flipped temporarily.
        assert all(obs == flags for obs in observed[:2])

    def test_xor_all_flag_combinations(self, tech, rng):
        for fa in (False, True):
            for fb in (False, True):
                eng, a, b, ab, bb = _setup(tech, rng, "natural")
                if fa:
                    eng.not_(a)
                    ab = 1 - ab
                if fb:
                    eng.not_(b)
                    bb = 1 - bb
                assert np.array_equal(eng.xor(a, b).logical_bits(),
                                      ab ^ bb), (fa, fb)
                assert np.array_equal(a.logical_bits(), ab)
                assert np.array_equal(b.logical_bits(), bb)

    def test_equalize_flags_aliased(self, tech, rng):
        eng, a, _, ab, _ = _setup(tech, rng, "complemented")
        flag = eng._equalize_flags(a, a)
        assert flag == a.complemented
        assert np.array_equal(a.logical_bits(), ab)

    def test_force_flag_preserves_value(self, tech, rng):
        eng, a, _, ab, _ = _setup(tech, rng, "natural")
        eng.force_flag(a, True)
        assert a.complemented
        assert np.array_equal(a.logical_bits(), ab)
        eng.force_flag(a, True)  # idempotent, free
        assert np.array_equal(a.logical_bits(), ab)
