"""Hypothesis: random multi-statement programs are backend-equivalent.

Generates random DAGs of assignments — random expressions over the
table columns and previously assigned names, including aliased reads
and shadowed (re-assigned) names — and checks, on both technologies:

* vector-vs-reference bit- and per-statement-Stats equivalence (the
  differential harness), plus numpy ground truth;
* compiled program cost never exceeds the naive chain.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.expr import (
    And,
    AndNot,
    Col,
    Const,
    Maj,
    Nand,
    Nor,
    Not,
    Or,
    Select,
    Xnor,
    Xor,
)
from repro.arch.program import Program, compile_program
from tests.support.differential import assert_program_equivalent

N_BITS = 257  # non-multiple of 64: exercises masking/tails
TABLE_COLS = ("a", "b", "c")
#: assignable names: fresh intermediates plus 'a' (column shadowing)
STMT_NAMES = ("t0", "t1", "t2", "a")


def expressions(names: list[str]) -> st.SearchStrategy:
    leaves = st.one_of(
        st.sampled_from(names).map(Col),
        st.sampled_from([0, 1]).map(Const),
    )

    def extend(children):
        binary = st.tuples(children, children)
        ternary = st.tuples(children, children, children)
        return st.one_of(
            children.map(Not),
            binary.map(lambda xs: And(*xs)),
            binary.map(lambda xs: Or(*xs)),
            binary.map(lambda xs: Xor(*xs)),
            binary.map(lambda xs: Nand(*xs)),
            binary.map(lambda xs: Nor(*xs)),
            binary.map(lambda xs: Xnor(*xs)),
            binary.map(lambda xs: AndNot(*xs)),
            ternary.map(lambda xs: Maj(*xs)),
            ternary.map(lambda xs: Select(*xs)),
        )

    return st.recursive(leaves, extend, max_leaves=6)


@st.composite
def programs(draw) -> Program:
    n_statements = draw(st.integers(min_value=1, max_value=5))
    statements = []
    available = list(TABLE_COLS)
    assigned: list[str] = []
    for _ in range(n_statements):
        name = draw(st.sampled_from(STMT_NAMES))
        statements.append((name, draw(expressions(available))))
        if name not in available:
            available.append(name)
        assigned.append(name)
    output_pool = sorted(set(assigned))
    n_outputs = draw(st.integers(min_value=1,
                                 max_value=len(output_pool)))
    outputs = draw(st.permutations(output_pool))[:n_outputs]
    return Program(statements, outputs)


@pytest.fixture(scope="module")
def table():
    rng = np.random.default_rng(987)
    return {name: rng.integers(0, 2, N_BITS, dtype=np.uint8)
            for name in TABLE_COLS}


@pytest.mark.parametrize("fused", [False, True])
@pytest.mark.parametrize("technology", ["feram-2tnc", "dram"])
@given(program=programs())
@settings(max_examples=25, deadline=None)
def test_random_programs_backend_equivalent(technology, fused,
                                            program, table):
    assert_program_equivalent(program, table, technology=technology,
                              n_shards=2, fused=fused)


@given(program=programs())
@settings(max_examples=25, deadline=None)
def test_random_programs_cost_at_most_naive(program):
    for inverting in (True, False):  # FeRAM MIN / DRAM MAJ polarity
        cprog = compile_program(program, inverting=inverting)
        assert cprog.primitives <= cprog.naive_primitives
