"""Command vocabulary and cost-mapping tests."""

import pytest

from repro.arch.commands import Command, CommandType, Stats, command_cost
from repro.arch.spec import DRAM_8GB, FERAM_2TNC_8GB
from repro.errors import ArchitectureError


class TestCommandCost:
    def test_activate_cost(self):
        energy, cycles = command_cost(DRAM_8GB, CommandType.ACTIVATE)
        assert energy == pytest.approx(22.6e-9)
        assert cycles == 1

    def test_tba_uses_activate_energy(self):
        energy, _ = command_cost(FERAM_2TNC_8GB,
                                 CommandType.ACTIVATE_TBA)
        assert energy == pytest.approx(16.6e-9)

    def test_copy_cost(self):
        energy, _ = command_cost(FERAM_2TNC_8GB, CommandType.COPY)
        assert energy == pytest.approx(28e-9)

    def test_precharge_cost(self):
        energy, _ = command_cost(DRAM_8GB, CommandType.PRECHARGE)
        assert energy == pytest.approx(0.32e-9)

    def test_refresh_cost_is_act_plus_pre(self):
        energy, cycles = command_cost(DRAM_8GB, CommandType.REFRESH)
        assert energy == pytest.approx(22.92e-9)
        assert cycles == 2

    def test_every_command_type_costed(self):
        for ctype in CommandType:
            energy, cycles = command_cost(DRAM_8GB, ctype)
            assert energy >= 0
            assert cycles >= 1


class TestCommand:
    def test_repeat_validation(self):
        with pytest.raises(ArchitectureError):
            Command(CommandType.ACTIVATE, repeat=0)

    def test_default_repeat(self):
        assert Command(CommandType.ACTIVATE).repeat == 1


class TestStats:
    def test_record_accumulates_energy(self):
        stats = Stats()
        stats.record(DRAM_8GB, Command(CommandType.ACTIVATE, repeat=10))
        assert stats.energy_j["compute"] == pytest.approx(10 * 22.6e-9)
        assert stats.cycles["compute"] == 10

    def test_io_category(self):
        stats = Stats()
        stats.record(DRAM_8GB, Command(CommandType.ROW_WRITE, repeat=3))
        assert stats.energy_j["io"] > 0
        assert stats.energy_j["compute"] == 0

    def test_category_override(self):
        stats = Stats()
        stats.record(DRAM_8GB, Command(CommandType.ROW_WRITE),
                     category="compute")
        assert stats.energy_j["compute"] > 0

    def test_counts_are_repeat_weighted(self):
        stats = Stats()
        stats.record(DRAM_8GB, Command(CommandType.PRECHARGE, repeat=7))
        stats.record(DRAM_8GB, Command(CommandType.PRECHARGE, repeat=2))
        assert stats.counts[CommandType.PRECHARGE] == 9

    def test_wall_time(self):
        stats = Stats()
        stats.record(DRAM_8GB, Command(CommandType.ACTIVATE, repeat=100))
        assert stats.wall_time_s(DRAM_8GB) == pytest.approx(
            100 * 50e-9)

    def test_merged_preserves_counters(self):
        a, b = Stats(), Stats()
        a.staging_aaps = 5
        b.relocation_acps = 3
        merged = a.merged_with(b)
        assert merged.staging_aaps == 5
        assert merged.relocation_acps == 3
