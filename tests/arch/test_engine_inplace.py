"""In-place engine ops must match the out-of-place reference bit-for-bit.

The scratch-pool rewrite changed every functional-mode payload update to
``np.bitwise_*(..., out=...)`` on pooled buffers.  These tests pin the
results to plain-numpy reference recipes and run all eight paper
workloads end-to-end in functional mode (each workload verifies its
outputs bit-exactly against its own numpy reference).
"""

import numpy as np
import pytest

from repro.arch.primitives import make_engine
from repro.core.logic import majority_words
from repro.workloads.runner import WORKLOAD_CLASSES, run_comparison

SIZE_BITS = 1 << 15
TECHS = ("dram", "feram-2tnc")


def _random_bits(seed, n=SIZE_BITS):
    return np.random.default_rng(seed).integers(0, 2, n, dtype=np.uint8)


@pytest.mark.parametrize("tech", TECHS)
class TestBitExactOps:
    def test_primitive_truth_tables(self, tech):
        bits_a, bits_b = _random_bits(1), _random_bits(2)
        engine = make_engine(tech, functional=True)
        a = engine.load(bits_a)
        b = engine.load(bits_b, group_with=a)
        cases = {
            "and": (engine.and_, bits_a & bits_b),
            "or": (engine.or_, bits_a | bits_b),
            "nand": (engine.nand, 1 - (bits_a & bits_b)),
            "nor": (engine.nor, 1 - (bits_a | bits_b)),
            "xor": (engine.xor, bits_a ^ bits_b),
            "xnor": (engine.xnor, 1 - (bits_a ^ bits_b)),
        }
        for name, (op, expected) in cases.items():
            out = op(a, b)
            assert np.array_equal(out.logical_bits(), expected), name
            engine.free(out)
        # Operands must be untouched by the whole sequence.
        assert np.array_equal(a.logical_bits(), bits_a)
        assert np.array_equal(b.logical_bits(), bits_b)

    def test_majority_matches_word_reference(self, tech):
        bits = [_random_bits(seed) for seed in (3, 4, 5)]
        engine = make_engine(tech, functional=True)
        vectors = [engine.load(b) for b in bits]
        out = engine.majority(*vectors)
        packed = [np.packbits(b, bitorder="little").view(np.uint64)
                  for b in bits]
        expected = np.unpackbits(
            np.ascontiguousarray(majority_words(*packed)).view(np.uint8),
            bitorder="little")[:SIZE_BITS]
        assert np.array_equal(out.logical_bits(), expected)

    def test_not_materialize_roundtrip(self, tech):
        bits = _random_bits(6)
        engine = make_engine(tech, functional=True)
        a = engine.load(bits)
        engine.not_(a)
        engine.materialize(a)
        assert np.array_equal(a.logical_bits(), 1 - bits)
        np.testing.assert_array_equal(a.payload,
                                      a.value())  # flag resolved

    def test_pool_reuse_does_not_leak_state(self, tech):
        # Free a vector, allocate a same-shape one: the pooled buffer
        # must come back zeroed through the public allocate().
        engine = make_engine(tech, functional=True)
        a = engine.load(_random_bits(7))
        engine.free(a)
        b = engine.allocate(SIZE_BITS)
        assert not np.any(b.payload)

    def test_xor_chain_matches_numpy(self, tech):
        bits_a, bits_b = _random_bits(8), _random_bits(9)
        engine = make_engine(tech, functional=True)
        a = engine.load(bits_a)
        b = engine.load(bits_b, group_with=a)
        expected = bits_a.copy()
        out = a
        for _ in range(5):
            nxt = engine.xor(out, b)
            if out is not a:
                engine.free(out)
            out = nxt
            expected ^= bits_b
        assert np.array_equal(out.logical_bits(), expected)


@pytest.mark.parametrize("workload_cls", WORKLOAD_CLASSES,
                         ids=lambda cls: cls.__name__)
def test_all_workloads_bit_exact_functional(workload_cls):
    """Every paper workload verifies bit-for-bit on both engines."""
    comparison = run_comparison(workload_cls(SIZE_BITS // 8),
                                functional=True)
    assert comparison.dram.verified
    assert comparison.feram.verified
