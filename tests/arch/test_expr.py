"""Expression AST, parser, optimizer and compiler tests."""

import numpy as np
import pytest

from repro.arch import expr as ex
from repro.arch.primitives import make_engine
from repro.errors import QueryError

TECHS = ("dram", "feram-2tnc")

N_BITS = 2048


def _load_columns(engine, values):
    first = None
    columns = {}
    for name, bits in values.items():
        columns[name] = engine.load(bits, name, group_with=first)
        first = first or columns[name]
    return columns


def _random_values(rng, names, n_bits=N_BITS):
    return {name: rng.integers(0, 2, n_bits, dtype=np.uint8)
            for name in names}


class TestParser:
    def test_precedence(self):
        parsed = ex.parse("a | b & c ^ d")
        assert str(parsed) == "(a | ((b & c) ^ d))"

    def test_keywords_and_functions(self):
        parsed = ex.parse("not a and b or maj(a, b, c)")
        assert str(parsed) == "((~a & b) | maj(a, b, c))"

    def test_functions_parse(self):
        assert isinstance(ex.parse("sel(m, a, b)"), ex.Select)
        assert isinstance(ex.parse("nand(a, b)"), ex.Nand)
        assert isinstance(ex.parse("andnot(a, b)"), ex.AndNot)

    def test_constants(self):
        parsed = ex.parse("a & 1 | 0")
        assert "1" in str(parsed)

    def test_operator_overloads(self):
        a, b = ex.Col("a"), ex.Col("b")
        assert str((a & b) | ~a) == "((a & b) | ~a)"

    @pytest.mark.parametrize("bad", ["", "a &", "(a", "a b", "maj(a, b)",
                                     "a $ b", "and", "5col"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(QueryError):
            ex.parse(bad)

    def test_cols_in_order(self):
        assert ex.parse("b & a | b & c").cols() == ("b", "a", "c")


class TestCanonicalization:
    def test_commutative_key(self):
        assert ex.canonical_key("a & b") == ex.canonical_key("b & a")
        assert ex.canonical_key("a | b | c") == \
            ex.canonical_key("c | (b | a)")

    def test_double_not_elimination(self):
        assert ex.canonical_key("~~a") == ex.canonical_key("a")
        assert ex.canonical_key("~~~a") == ex.canonical_key("~a")

    def test_de_morgan(self):
        assert ex.canonical_key("~(a & b)") == ex.canonical_key("~a | ~b")
        assert ex.canonical_key("nand(a, b)") == \
            ex.canonical_key("~a | ~b")

    def test_constant_folding(self):
        assert ex.canonical_key("a & 1") == ex.canonical_key("a")
        assert ex.canonical_key("a & 0") == ex.canonical_key("0")
        assert ex.canonical_key("a ^ 1") == ex.canonical_key("~a")
        assert ex.canonical_key("maj(a, b, 0)") == \
            ex.canonical_key("a & b")
        assert ex.canonical_key("maj(a, b, 1)") == \
            ex.canonical_key("a | b")

    def test_idempotence_and_annihilation(self):
        assert ex.canonical_key("a & a") == ex.canonical_key("a")
        assert ex.canonical_key("a & ~a") == ex.canonical_key("0")
        assert ex.canonical_key("a ^ a") == ex.canonical_key("0")
        assert ex.canonical_key("maj(a, ~a, b)") == ex.canonical_key("b")

    def test_xor_negations_cancel(self):
        assert ex.canonical_key("~a ^ ~b") == ex.canonical_key("a ^ b")

    def test_cse_shares_subterms(self):
        plan = ex.compile_expr("(a & b & c) | (a & b & d)")
        # a&b computed once: 2 shared + 2 private + 1 or = 5 ops max.
        assert plan.primitives < plan.naive_primitives


@pytest.mark.parametrize("tech", TECHS)
class TestCompiledExecution:
    def test_bitmap_query(self, tech, rng):
        values = _random_values(rng, [f"c{k}" for k in range(6)])
        engine = make_engine(tech)
        columns = _load_columns(engine, values)
        plan = ex.compile_for(engine, "(c0 & c1 & ~c2) | (c3 & c4 & c5)")
        out = plan.run(engine, columns, name="hits")
        reference = (values["c0"] & values["c1"] & (1 - values["c2"])) \
            | (values["c3"] & values["c4"] & values["c5"])
        assert np.array_equal(out.logical_bits(), reference)

    def test_columns_value_preserved(self, tech, rng):
        values = _random_values(rng, ["a", "b", "c"])
        engine = make_engine(tech)
        columns = _load_columns(engine, values)
        plan = ex.compile_for(engine, "(a & ~b) ^ maj(a, b, c)")
        plan.run(engine, columns)
        for name, bits in values.items():
            assert np.array_equal(columns[name].logical_bits(), bits)

    def test_intermediates_freed(self, tech, rng):
        values = _random_values(rng, ["a", "b", "c", "d"])
        engine = make_engine(tech)
        columns = _load_columns(engine, values)
        baseline = engine.allocator.rows_used
        plan = ex.compile_for(engine, "(a & b & ~c) | (c & d) | (a ^ d)")
        out = plan.run(engine, columns)
        engine.free(out)
        assert engine.allocator.rows_used == baseline

    def test_constant_root(self, tech, rng):
        values = _random_values(rng, ["a"])
        engine = make_engine(tech)
        columns = _load_columns(engine, values)
        out = ex.compile_for(engine, "a | ~a").run(engine, columns)
        assert out.n_bits == N_BITS
        assert out.logical_bits().all()

    def test_bare_column_root_is_owned_copy(self, tech, rng):
        values = _random_values(rng, ["a"])
        engine = make_engine(tech)
        columns = _load_columns(engine, values)
        out = ex.compile_for(engine, "~a").run(engine, columns)
        assert out is not columns["a"]
        assert np.array_equal(out.logical_bits(), 1 - values["a"])
        assert np.array_equal(columns["a"].logical_bits(), values["a"])

    def test_unbound_column_raises(self, tech, rng):
        engine = make_engine(tech)
        plan = ex.compile_for(engine, "a & b")
        with pytest.raises(QueryError, match="unbound"):
            plan.run(engine, {})

    def test_aliased_column_binding(self, tech, rng):
        """One vector bound under two names must behave as distinct
        storage (the executor copies the duplicate): a & ~b with a is b
        is all-zeros, not ~a."""
        bits = rng.integers(0, 2, 256, dtype=np.uint8)
        engine = make_engine(tech)
        vec = engine.load(bits)
        plan = ex.compile_for(engine, "a & ~b")
        out = plan.run(engine, {"a": vec, "b": vec})
        assert not out.logical_bits().any()
        assert np.array_equal(vec.logical_bits(), bits)

    def test_constant_root_takes_explicit_width(self, tech, rng):
        engine = make_engine(tech)
        out = ex.compile_for(engine, "1").run(engine, {}, n_bits=4096)
        assert out.n_bits == 4096
        assert out.logical_bits().all()

    def test_width_mismatch_raises(self, tech, rng):
        engine = make_engine(tech)
        columns = {"a": engine.load(rng.integers(0, 2, 64, np.uint8)),
                   "b": engine.load(rng.integers(0, 2, 128, np.uint8))}
        plan = ex.compile_for(engine, "a & b")
        with pytest.raises(QueryError, match="width"):
            plan.run(engine, columns)


@pytest.mark.parametrize("tech", TECHS)
class TestCompilerVsNaive:
    QUERIES = (
        "a & b",
        "a & ~b",
        "~(a | b) & (c ^ d)",
        "(a & b & ~c) | (a & b & d)",
        "maj(a, ~b, c) | sel(d, a, b)",
        "xnor(a, b) ^ nor(c, d)",
        "(a & b & ~c) | (b & c & d) | ~(a | d)",
    )

    @pytest.mark.parametrize("query", QUERIES)
    def test_equivalence_and_cost(self, tech, rng, query):
        values = _random_values(rng, ["a", "b", "c", "d"])
        engine = make_engine(tech)
        columns = _load_columns(engine, values)
        plan = ex.compile_for(engine, query)
        compiled = plan.run(engine, columns).logical_bits()
        naive = ex.naive_run(query, engine, columns).logical_bits()
        assert np.array_equal(compiled, naive), query
        assert plan.primitives <= plan.naive_primitives, query
        for name, bits in values.items():
            assert np.array_equal(columns[name].logical_bits(), bits)

    def test_measured_counts_match_runtime(self, tech, rng):
        """The per-row counts quoted by the plan equal what a real run
        charges (single-row vectors, co-located)."""
        engine = make_engine(
            tech, functional=False,
            spec=None if tech != "dram" else None)
        query = "(a & b & ~c) | (c & d)"
        plan = ex.compile_for(engine, query)
        values = {}
        first = None
        for name in plan.cols:
            values[name] = engine.allocate(64, name, group_with=first)
            first = first or values[name]
        before = ex.native_primitives(engine.stats)
        plan.run(engine, values)
        measured = ex.native_primitives(engine.stats) - before
        if tech == "feram-2tnc":
            assert measured == plan.primitives
        else:
            # staged DRAM charges 2 TRAs per primitive (1 staging AAP).
            assert measured in (plan.primitives, 2 * plan.primitives)


class TestParityPlanning:
    def test_feram_bitmap_query_beats_naive(self):
        """The acceptance benchmark: the Fig. 6 bitmap predicate costs
        fewer native ACPs compiled than naively chained."""
        plan = ex.compile_expr("(c0 & c1 & ~c2) | (c3 & c4 & c5)",
                               inverting=True)
        assert plan.naive_primitives == 7
        assert plan.primitives == 6

    def test_cse_query_beats_naive_on_both(self):
        query = "(c0 & c1 & ~c2) | (c0 & c1 & c3) | (c4 & c5)"
        for inverting in (True, False):
            plan = ex.compile_expr(query, inverting=inverting)
            assert plan.primitives < plan.naive_primitives

    def test_plan_selection_never_worse(self):
        """Pathological shared-parity shapes fall back to the naive
        order instead of regressing."""
        query = "((c | b) | sel(b, d, a) | sel(b, c, c)) | (c | a)"
        for inverting in (True, False):
            plan = ex.compile_expr(query, inverting=inverting)
            assert plan.primitives <= plan.naive_primitives

    def test_single_ops_match_naive(self):
        for query in ("a & b", "a | b", "a ^ b", "maj(a, b, c)"):
            plan = ex.compile_expr(query)
            assert plan.primitives == plan.naive_primitives, query

    def test_folded_columns_not_required(self):
        plan = ex.compile_expr("a & (b | ~b)")
        assert plan.cols == ("a",)
