"""Transient solver accuracy and robustness tests."""

import math

import numpy as np
import pytest

from repro.errors import CircuitError
from repro.spice import (
    PWL,
    Capacitor,
    Circuit,
    CurrentSource,
    Resistor,
    Sinusoid,
    SolverOptions,
    TransientSolver,
    VoltageControlledSwitch,
    VoltageSource,
)


def _rc_circuit(r=1e3, c=1e-9):
    ckt = Circuit("rc")
    ckt.add(VoltageSource("vin", "in", "0", PWL([(0, 0.0), (1e-12, 1.0)])))
    ckt.add(Resistor("r1", "in", "out", r))
    ckt.add(Capacitor("c1", "out", "0", c))
    return ckt


class TestRCAccuracy:
    def test_rc_step_response_matches_analytic(self):
        tau = 1e-6
        result = TransientSolver(_rc_circuit()).run(5 * tau, tau / 200)
        for frac in (0.5, 1.0, 2.0, 3.0):
            expected = 1.0 - math.exp(-frac)
            assert result.v_at("out", frac * tau) == pytest.approx(
                expected, abs=5e-3)

    def test_rc_final_value(self):
        result = TransientSolver(_rc_circuit()).run(1e-5, 1e-8)
        assert result.v("out")[-1] == pytest.approx(1.0, abs=1e-3)

    def test_source_current_decays(self):
        result = TransientSolver(_rc_circuit()).run(1e-5, 1e-8)
        i = result.i("vin")
        # Current enters the + terminal: charging current is negative.
        assert abs(i[-1]) < abs(i[1])

    def test_charge_conservation(self):
        ckt = _rc_circuit()
        result = TransientSolver(ckt).run(1e-5, 1e-8)
        # integral of current through source == stored charge on cap
        q_in = -result.integrate(result.i("vin"))
        c1 = ckt.component("c1")
        assert q_in == pytest.approx(c1.charge(), rel=2e-2)

    def test_sine_steady_state_amplitude(self):
        # RC low-pass driven far above its corner: |H| = 1/sqrt(1+(wRC)^2)
        ckt = Circuit("lp")
        freq = 1e6
        ckt.add(VoltageSource("vin", "in", "0",
                              Sinusoid(0.0, 1.0, freq)))
        ckt.add(Resistor("r1", "in", "out", 1e3))
        ckt.add(Capacitor("c1", "out", "0", 1e-9))
        result = TransientSolver(ckt).run(8e-6, 2e-9)
        w = 2 * math.pi * freq
        expected = 1.0 / math.sqrt(1.0 + (w * 1e3 * 1e-9) ** 2)
        tail = result.v("out")[result.times > 5e-6]
        assert np.max(np.abs(tail)) == pytest.approx(expected, rel=0.05)


class TestDividerAndSources:
    def test_resistive_divider(self):
        ckt = Circuit()
        ckt.add(VoltageSource("v", "a", "0", 2.0))
        ckt.add(Resistor("r1", "a", "b", 1e3))
        ckt.add(Resistor("r2", "b", "0", 3e3))
        result = TransientSolver(ckt).run(1e-9, 1e-10)
        assert result.v("b")[-1] == pytest.approx(1.5, rel=1e-6)

    def test_current_source_into_resistor(self):
        ckt = Circuit()
        ckt.add(CurrentSource("i1", "0", "n", 1e-3))
        ckt.add(Resistor("r1", "n", "0", 1e3))
        result = TransientSolver(ckt).run(1e-9, 1e-10)
        assert result.v("n")[-1] == pytest.approx(1.0, rel=1e-6)

    def test_switch_transition(self):
        ckt = Circuit()
        ckt.add(VoltageSource("vdd", "vdd", "0", 1.5))
        ckt.add(VoltageSource("vc", "ctl", "0",
                              PWL([(0, 0.0), (5e-9, 0.0), (6e-9, 1.5)])))
        ckt.add(VoltageControlledSwitch("s1", "vdd", "out", "ctl",
                                        r_on=100.0, r_off=1e12))
        ckt.add(Resistor("rl", "out", "0", 1e4))
        result = TransientSolver(ckt).run(2e-8, 1e-10)
        assert result.v_at("out", 4e-9) < 1e-3
        assert result.v_at("out", 1.8e-8) == pytest.approx(
            1.5 * 1e4 / (1e4 + 100), rel=1e-3)


class TestSolverOptionsAndErrors:
    def test_rejects_bad_tstop(self):
        with pytest.raises(CircuitError):
            TransientSolver(_rc_circuit()).run(0.0, 1e-9)

    def test_rejects_bad_dt(self):
        with pytest.raises(CircuitError):
            TransientSolver(_rc_circuit()).run(1e-6, 0.0)

    def test_rejects_bad_record_every(self):
        with pytest.raises(CircuitError):
            TransientSolver(_rc_circuit()).run(1e-6, 1e-9, record_every=0)

    def test_record_every_thins_output(self):
        full = TransientSolver(_rc_circuit()).run(1e-6, 1e-9)
        thin = TransientSolver(_rc_circuit()).run(1e-6, 1e-9,
                                                  record_every=10)
        assert len(thin) < len(full) / 5

    def test_final_time_always_recorded(self):
        result = TransientSolver(_rc_circuit()).run(1e-6, 1e-9,
                                                    record_every=7)
        assert result.times[-1] == pytest.approx(1e-6, rel=1e-9)

    def test_initial_conditions_applied(self):
        ckt = Circuit()
        ckt.add(Resistor("r1", "n", "0", 1e6))
        ckt.add(Capacitor("c1", "n", "0", 1e-9, ic=2.0))
        solver = TransientSolver(ckt)
        result = solver.run(1e-6, 1e-8, initial_conditions={"n": 2.0})
        # Discharges through R with tau = 1 ms >> 1 us: still ~2 V.
        assert result.v("n")[-1] == pytest.approx(2.0, rel=1e-2)

    def test_options_validation(self):
        with pytest.raises(CircuitError):
            SolverOptions(abstol=0.0)
        with pytest.raises(CircuitError):
            SolverOptions(max_newton_iters=1)

    def test_callback_invoked(self):
        seen = []
        TransientSolver(_rc_circuit()).run(
            1e-7, 1e-9, callback=lambda t, x: seen.append(t))
        assert len(seen) >= 99


class TestAnalysisHelpers:
    def test_mean_in_window(self):
        result = TransientSolver(_rc_circuit()).run(1e-5, 1e-8)
        mean = result.mean_in_window(result.v("in"), 5e-6, 9e-6)
        assert mean == pytest.approx(1.0, rel=1e-6)

    def test_window_errors(self):
        result = TransientSolver(_rc_circuit()).run(1e-6, 1e-9)
        with pytest.raises(CircuitError):
            result.window(1.0, 0.5)
        with pytest.raises(CircuitError):
            result.mean_in_window(result.v("in"), 5.0, 6.0)

    def test_first_crossing_rising(self):
        result = TransientSolver(_rc_circuit()).run(1e-5, 1e-8)
        t_half = result.first_crossing(result.v("out"), 0.5)
        tau = 1e-6
        assert t_half == pytest.approx(tau * math.log(2.0), rel=0.02)

    def test_first_crossing_none_when_never(self):
        result = TransientSolver(_rc_circuit()).run(1e-6, 1e-9)
        assert result.first_crossing(result.v("out"), 5.0) is None

    def test_max_in_window(self):
        result = TransientSolver(_rc_circuit()).run(1e-5, 1e-8)
        assert result.max_in_window(result.v("out"), 0, 1e-5) <= 1.0

    def test_i_requires_branch(self):
        ckt = _rc_circuit()
        result = TransientSolver(ckt).run(1e-7, 1e-9)
        with pytest.raises(CircuitError, match="branch"):
            result.i("r1")
