"""Linear-circuit LU fast path vs the dense Newton path.

Circuits with no nonlinear components skip the Newton loop entirely
(prefactorized LU per step size).  These tests pin the fast path to the
Newton path by adding a stamp-free nonlinear dummy that forces the
general loop on an otherwise identical netlist.
"""

import numpy as np
import pytest

from repro.spice.components import (
    Capacitor,
    Component,
    CurrentSource,
    Resistor,
    VoltageSource,
)
from repro.spice.circuit import Circuit
from repro.spice.solver import TransientSolver
from repro.spice.waveform import PWL, Pulse, Sinusoid


class _NewtonForcer(Component):
    """Nonlinear no-op: contributes nothing but disables the fast path."""

    linear = False

    def __init__(self) -> None:
        super().__init__("newton_forcer", ())

    def stamp(self, ctx) -> None:
        pass


def _rc(newton: bool, source) -> Circuit:
    ckt = Circuit("rc")
    ckt.add(VoltageSource("vin", "in", "0", source))
    ckt.add(Resistor("r1", "in", "out", 1e3))
    ckt.add(Capacitor("c1", "out", "0", 1e-9))
    if newton:
        ckt.add(_NewtonForcer())
    return ckt


SOURCES = {
    "pwl_step": PWL([(0, 0.0), (1e-9, 1.0)]),
    "pulse": Pulse(0.0, 1.5, delay=5e-8, rise=1e-9, fall=1e-9,
                   width=2e-7),
    "sine": Sinusoid(0.2, 0.8, 2e6),
}


class TestFastPathPartition:
    def test_linear_circuit_has_no_nonlinear_block(self):
        solver = TransientSolver(_rc(False, SOURCES["pwl_step"]))
        assert not solver._nonlinear
        assert len(solver._linear) == 3

    def test_forcer_disables_fast_path(self):
        solver = TransientSolver(_rc(True, SOURCES["pwl_step"]))
        assert len(solver._nonlinear) == 1


@pytest.mark.parametrize("source_name", sorted(SOURCES))
class TestFastPathEquivalence:
    def test_traces_match_newton(self, source_name):
        source = SOURCES[source_name]
        fast = TransientSolver(_rc(False, source)).run(1e-6, 1e-9)
        slow = TransientSolver(_rc(True, source)).run(1e-6, 1e-9)
        assert np.array_equal(fast.times, slow.times)
        np.testing.assert_allclose(fast.v("out"), slow.v("out"),
                                   rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(fast.i("vin"), slow.i("vin"),
                                   rtol=1e-9, atol=1e-15)


class TestFastPathBehaviour:
    def test_rc_charging_physics(self):
        result = TransientSolver(_rc(False, SOURCES["pwl_step"])).run(
            5e-6, 1e-9)
        v_out = result.v("out")
        # Monotone charge toward the rail, tau = 1 µs.
        assert v_out[-1] == pytest.approx(1.0, rel=2e-2)
        idx = np.searchsorted(result.times, 1e-9 + 1e-6)
        assert v_out[idx] == pytest.approx(1.0 - np.exp(-1.0), rel=2e-2)

    def test_current_source_circuit_fast_path(self):
        ckt = Circuit("ic")
        ckt.add(CurrentSource("iin", "0", "n1", 1e-3))
        ckt.add(Resistor("r1", "n1", "0", 1e3))
        ckt.add(Capacitor("c1", "n1", "0", 1e-9))
        result = TransientSolver(ckt).run(1e-5, 1e-8)
        assert result.v("n1")[-1] == pytest.approx(1.0, rel=1e-2)

    def test_fast_path_survives_dt_clamping(self):
        # Final partial step re-factorizes at a new dt; both paths agree.
        source = SOURCES["pulse"]
        fast = TransientSolver(_rc(False, source)).run(1.05e-6, 1e-9)
        slow = TransientSolver(_rc(True, source)).run(1.05e-6, 1e-9)
        np.testing.assert_allclose(fast.v("out"), slow.v("out"),
                                   rtol=1e-9, atol=1e-12)

    def test_initial_conditions_respected(self):
        ckt = _rc(False, PWL([(0, 0.0)]))
        result = TransientSolver(ckt).run(
            1e-6, 1e-9, initial_conditions={"out": 0.8})
        v_out = result.v("out")
        assert v_out[0] == pytest.approx(0.8)
        # Discharges through the resistor toward the grounded source.
        assert v_out[-1] < 0.35
