"""Unit tests for the netlist container."""

import pytest

from repro.errors import CircuitError
from repro.spice import Circuit, Resistor, VoltageSource


def _divider() -> Circuit:
    ckt = Circuit("div")
    ckt.add(VoltageSource("vin", "in", "0", 1.0))
    ckt.add(Resistor("r1", "in", "mid", 1e3))
    ckt.add(Resistor("r2", "mid", "gnd", 1e3))
    return ckt


class TestConstruction:
    def test_nodes_created_implicitly(self):
        ckt = _divider()
        assert set(ckt.node_names) == {"in", "mid"}

    def test_ground_aliases_are_not_nodes(self):
        ckt = _divider()
        assert "0" not in ckt.node_names
        assert "gnd" not in ckt.node_names

    def test_duplicate_name_rejected(self):
        ckt = Circuit()
        ckt.add(Resistor("r1", "a", "0", 1.0))
        with pytest.raises(CircuitError, match="duplicate"):
            ckt.add(Resistor("r1", "b", "0", 1.0))

    def test_add_after_freeze_rejected(self):
        ckt = _divider().freeze()
        with pytest.raises(CircuitError, match="frozen"):
            ckt.add(Resistor("r3", "x", "0", 1.0))

    def test_len_counts_components(self):
        assert len(_divider()) == 3

    def test_contains(self):
        ckt = _divider()
        assert "r1" in ckt
        assert "nope" not in ckt


class TestFreeze:
    def test_freeze_assigns_indices(self):
        ckt = _divider().freeze()
        r1 = ckt.component("r1")
        assert r1.node_index == (ckt.node_id("in"), ckt.node_id("mid"))

    def test_ground_index_is_minus_one(self):
        ckt = _divider().freeze()
        r2 = ckt.component("r2")
        assert r2.node_index[1] == -1

    def test_branch_indices_after_nodes(self):
        ckt = _divider().freeze()
        vin = ckt.component("vin")
        assert vin.branch_index == (ckt.n_nodes,)

    def test_n_unknowns(self):
        ckt = _divider().freeze()
        assert ckt.n_unknowns == 2 + 1

    def test_n_unknowns_requires_freeze(self):
        with pytest.raises(CircuitError, match="freeze"):
            _ = _divider().n_unknowns

    def test_freeze_is_idempotent(self):
        ckt = _divider().freeze()
        assert ckt.freeze() is ckt

    def test_unknown_node_raises(self):
        ckt = _divider().freeze()
        with pytest.raises(CircuitError, match="unknown node"):
            ckt.node_id("missing")

    def test_unknown_component_raises(self):
        with pytest.raises(CircuitError, match="unknown component"):
            _divider().component("nope")

    def test_repr_mentions_counts(self):
        text = repr(_divider())
        assert "components=3" in text
