"""Component validation and stamp-behaviour tests."""

import numpy as np
import pytest

from repro.errors import CircuitError
from repro.spice import (
    Capacitor,
    Circuit,
    Resistor,
    TransientSolver,
    VoltageControlledSwitch,
    VoltageSource,
)


class TestValidation:
    def test_resistor_rejects_nonpositive(self):
        with pytest.raises(CircuitError):
            Resistor("r", "a", "b", 0.0)

    def test_capacitor_rejects_nonpositive(self):
        with pytest.raises(CircuitError):
            Capacitor("c", "a", "b", -1e-12)

    def test_switch_rejects_bad_resistances(self):
        with pytest.raises(CircuitError):
            VoltageControlledSwitch("s", "a", "b", "c", r_on=10.0,
                                    r_off=1.0)

    def test_component_requires_name(self):
        with pytest.raises(CircuitError):
            Resistor("", "a", "b", 1.0)


class TestResistorCurrent:
    def test_current_helper(self):
        ckt = Circuit()
        ckt.add(VoltageSource("v", "a", "0", 2.0))
        r = ckt.add(Resistor("r", "a", "0", 1e3))
        result = TransientSolver(ckt).run(1e-9, 1e-10)
        x = result.state_at(1e-9)
        assert r.current(x) == pytest.approx(2e-3, rel=1e-6)


class TestCapacitorState:
    def test_ic_sets_initial_charge(self):
        c = Capacitor("c", "a", "0", 1e-9, ic=1.5)
        assert c.charge() == pytest.approx(1.5e-9)

    def test_commit_updates_voltage(self):
        ckt = Circuit()
        ckt.add(VoltageSource("v", "a", "0", 1.0))
        c = ckt.add(Capacitor("c", "a", "0", 1e-12))
        TransientSolver(ckt).run(1e-9, 1e-11)
        assert c.v_prev == pytest.approx(1.0, rel=1e-3)


class TestSwitchConductance:
    def test_off_conductance(self):
        s = VoltageControlledSwitch("s", "a", "b", "c", r_on=100.0,
                                    r_off=1e12)
        assert s.conductance(0.0) == pytest.approx(1e-12, rel=1e-3)

    def test_on_conductance(self):
        s = VoltageControlledSwitch("s", "a", "b", "c", r_on=100.0,
                                    r_off=1e12)
        assert s.conductance(1.5) == pytest.approx(1e-2, rel=1e-3)

    def test_monotone_transition(self):
        s = VoltageControlledSwitch("s", "a", "b", "c", r_on=100.0,
                                    r_off=1e12)
        voltages = np.linspace(0.0, 1.5, 40)
        g = [s.conductance(v) for v in voltages]
        assert all(a <= b * (1 + 1e-12) for a, b in zip(g, g[1:]))


class TestAmmeterConvention:
    def test_zero_volt_source_measures_current(self):
        # 1 V across 1 kOhm with a 0 V ammeter in series: i = 1 mA.
        ckt = Circuit()
        ckt.add(VoltageSource("v", "a", "0", 1.0))
        ckt.add(Resistor("r", "a", "m", 1e3))
        ckt.add(VoltageSource("amm", "m", "0", 0.0))
        result = TransientSolver(ckt).run(1e-9, 1e-10)
        assert result.i("amm")[-1] == pytest.approx(1e-3, rel=1e-6)

    def test_driving_source_current_is_negative(self):
        # SPICE convention: the source driving current out of its +
        # terminal reads a negative branch current.
        ckt = Circuit()
        ckt.add(VoltageSource("v", "a", "0", 1.0))
        ckt.add(Resistor("r", "a", "0", 1e3))
        result = TransientSolver(ckt).run(1e-9, 1e-10)
        assert result.i("v")[-1] == pytest.approx(-1e-3, rel=1e-6)
