"""MOSFET model tests: regions, symmetry, derivatives, parameter sets."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DeviceError
from repro.spice import (
    FAB_NMOS,
    PTM45_NMOS,
    PTM45_PMOS,
    Circuit,
    Mosfet,
    MosfetParams,
    Resistor,
    TransientSolver,
    VoltageSource,
    subthreshold_swing_mv_per_dec,
)


def _nmos() -> Mosfet:
    return Mosfet("m", "d", "g", "s", PTM45_NMOS)


class TestRegions:
    def test_off_current_small(self):
        assert _nmos().ids(0.0, 1.0) < 1e-8

    def test_on_current_large(self):
        assert _nmos().ids(1.0, 1.0) > 1e-5

    def test_monotone_in_vgs(self):
        m = _nmos()
        currents = [m.ids(v, 1.0) for v in (0.0, 0.3, 0.5, 0.7, 1.0)]
        assert all(a < b for a, b in zip(currents, currents[1:]))

    def test_monotone_in_vds(self):
        m = _nmos()
        currents = [m.ids(1.0, v) for v in (0.05, 0.2, 0.5, 1.0)]
        assert all(a < b for a, b in zip(currents, currents[1:]))

    def test_subthreshold_slope(self):
        m = _nmos()
        i1 = m.ids(0.20, 1.0)
        i2 = m.ids(0.30, 1.0)
        decades = math.log10(i2 / i1)
        ss_mv = 100.0 / decades
        assert ss_mv == pytest.approx(
            subthreshold_swing_mv_per_dec(PTM45_NMOS), rel=0.12)

    def test_saturation_square_law(self):
        # In saturation ID ~ (VGS-VT)^2: doubling overdrive ~ 4x current.
        m = _nmos()
        p = PTM45_NMOS
        i1 = m.ids(p.vt + 0.2, 1.2)
        i2 = m.ids(p.vt + 0.4, 1.2)
        assert i2 / i1 == pytest.approx(4.0, rel=0.25)

    def test_zero_vds_zero_current(self):
        assert _nmos().ids(1.0, 0.0) == pytest.approx(0.0, abs=1e-12)


class TestSymmetryAndPolarity:
    def test_reverse_vds_negative_current(self):
        m = _nmos()
        assert m.ids(1.0, -0.5) < 0.0

    def test_source_drain_swap_antisymmetry(self):
        # With gate referenced halfway, I(vds) = -I(-vds).
        m = _nmos()
        vg, vd = 1.0, 0.4
        forward = m.ids(vg, vd)
        swapped = m.ids(vg - vd, -vd)
        assert swapped == pytest.approx(-forward, rel=1e-6)

    def test_pmos_conducts_with_negative_vgs(self):
        mp = Mosfet("mp", "d", "g", "s", PTM45_PMOS)
        on = mp.ids(-1.0, -1.0)
        off = mp.ids(0.4, -1.0)
        assert on < 0.0
        assert abs(on) > 100 * abs(off)

    def test_pmos_current_sign(self):
        mp = Mosfet("mp", "d", "g", "s", PTM45_PMOS)
        assert mp.ids(-1.0, -0.5) < 0.0


class TestDerivatives:
    @given(st.floats(min_value=-0.2, max_value=1.2),
           st.floats(min_value=-1.0, max_value=1.2))
    def test_analytic_partials_match_finite_difference(self, vgs, vds):
        m = _nmos()
        _, dig, did = m._ids_and_derivs(vgs, vds)
        h = 1e-6
        fd_g = (m.ids(vgs + h, vds) - m.ids(vgs - h, vds)) / (2 * h)
        fd_d = (m.ids(vgs, vds + h) - m.ids(vgs, vds - h)) / (2 * h)
        assert dig == pytest.approx(fd_g, rel=1e-3, abs=1e-12)
        assert did == pytest.approx(fd_d, rel=1e-3, abs=1e-12)


class TestParams:
    def test_rejects_bad_polarity(self):
        with pytest.raises(DeviceError):
            MosfetParams(polarity=2, vt=0.4, kp=1e-4, n=1.5, lam=0.1,
                         w=1e-6, l=1e-6)

    def test_rejects_bad_vt(self):
        with pytest.raises(DeviceError):
            MosfetParams(polarity=1, vt=-0.4, kp=1e-4, n=1.5, lam=0.1,
                         w=1e-6, l=1e-6)

    def test_rejects_bad_geometry(self):
        with pytest.raises(DeviceError):
            MosfetParams(polarity=1, vt=0.4, kp=1e-4, n=1.5, lam=0.1,
                         w=0.0, l=1e-6)

    def test_scaled_override(self):
        p = PTM45_NMOS.scaled(w=180e-9)
        assert p.w == 180e-9
        assert p.vt == PTM45_NMOS.vt

    def test_fab_device_ss(self):
        assert subthreshold_swing_mv_per_dec(FAB_NMOS) == pytest.approx(
            110.0, rel=0.01)

    def test_fab_device_onoff(self):
        m = Mosfet("m", "d", "g", "s", FAB_NMOS)
        on = m.ids(3.0, 0.1)
        off = m.ids(-1.0, 0.1)
        assert on / off == pytest.approx(1e7, rel=0.3)


class TestInCircuit:
    def test_common_source_inverter(self):
        ckt = Circuit()
        ckt.add(VoltageSource("vdd", "vdd", "0", 1.0))
        ckt.add(VoltageSource("vg", "g", "0", 1.0))
        ckt.add(Resistor("rl", "vdd", "d", 1e4))
        ckt.add(Mosfet("m1", "d", "g", "0", PTM45_NMOS))
        result = TransientSolver(ckt).run(1e-8, 1e-10)
        # Strong gate drive pulls the drain low through the load.
        assert result.v("d")[-1] < 0.3

    def test_source_follower_level(self):
        ckt = Circuit()
        ckt.add(VoltageSource("vdd", "vdd", "0", 1.5))
        ckt.add(VoltageSource("vg", "g", "0", 1.2))
        ckt.add(Mosfet("m1", "vdd", "g", "s", PTM45_NMOS))
        ckt.add(Resistor("rl", "s", "0", 1e5))
        result = TransientSolver(ckt).run(1e-8, 1e-10)
        v_s = result.v("s")[-1]
        # Output sits roughly a VT below the gate.
        assert 0.3 < v_s < 1.0
