"""Unit tests for stimulus waveforms."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CircuitError
from repro.spice.waveform import (
    DC,
    PWL,
    Delayed,
    Pulse,
    Sinusoid,
    Sum,
    as_waveform,
)


class TestDC:
    def test_constant_everywhere(self):
        w = DC(1.5)
        assert w(0.0) == 1.5
        assert w(1e9) == 1.5
        assert w(-1.0) == 1.5

    def test_repr_mentions_value(self):
        assert "1.5" in repr(DC(1.5))


class TestPWL:
    def test_interpolates_linearly(self):
        w = PWL([(0, 0.0), (1e-9, 1.0)])
        assert w(0.5e-9) == pytest.approx(0.5)

    def test_holds_before_first_point(self):
        w = PWL([(1e-9, 2.0), (2e-9, 3.0)])
        assert w(0.0) == 2.0

    def test_holds_after_last_point(self):
        w = PWL([(0, 0.0), (1e-9, 1.0)])
        assert w(5e-9) == 1.0

    def test_vertical_step_takes_new_value(self):
        w = PWL([(0, 0.0), (1e-9, 0.0), (1e-9, 5.0), (2e-9, 5.0)])
        assert w(1.5e-9) == 5.0

    def test_rejects_empty(self):
        with pytest.raises(CircuitError):
            PWL([])

    def test_rejects_decreasing_times(self):
        with pytest.raises(CircuitError):
            PWL([(1e-9, 0.0), (0.5e-9, 1.0)])

    def test_breakpoint_times(self):
        w = PWL([(0, 0.0), (1e-9, 1.0)])
        assert w.breakpoint_times() == [0, 1e-9]

    @given(st.floats(min_value=0.0, max_value=1e-9))
    def test_output_bounded_by_endpoint_values(self, t):
        w = PWL([(0, -2.0), (1e-9, 3.0)])
        assert -2.0 <= w(t) <= 3.0


class TestPulse:
    def test_initial_value_before_delay(self):
        w = Pulse(0.0, 1.5, delay=5e-9, rise=1e-10, fall=1e-10, width=1e-9)
        assert w(0.0) == 0.0

    def test_plateau_value(self):
        w = Pulse(0.0, 1.5, rise=1e-10, fall=1e-10, width=1e-9)
        assert w(5e-10) == pytest.approx(1.5)

    def test_returns_to_initial(self):
        w = Pulse(0.2, 1.5, rise=1e-10, fall=1e-10, width=1e-9)
        assert w(1e-8) == pytest.approx(0.2)

    def test_periodic_repeats(self):
        w = Pulse(0.0, 1.0, rise=1e-10, fall=1e-10, width=1e-9,
                  period=10e-9)
        assert w(10.5e-9) == pytest.approx(w(0.5e-9))

    def test_rejects_nonpositive_rise(self):
        with pytest.raises(CircuitError):
            Pulse(0, 1, rise=0.0)

    def test_rejects_negative_width(self):
        with pytest.raises(CircuitError):
            Pulse(0, 1, width=-1e-9)

    def test_rejects_period_shorter_than_shape(self):
        """SPICE semantics: a non-zero period must fit the trapezoid;
        a shorter one would silently truncate the pulse via fmod."""
        with pytest.raises(CircuitError, match="period"):
            Pulse(0, 1, rise=1e-9, fall=1e-9, width=1e-9, period=2e-9)

    def test_accepts_period_equal_to_shape(self):
        w = Pulse(0.0, 1.0, rise=1e-9, fall=1e-9, width=1e-9,
                  period=3e-9)
        assert w(3.5e-9) == pytest.approx(w(0.5e-9))

    def test_rejects_negative_period(self):
        with pytest.raises(CircuitError, match="non-negative"):
            Pulse(0, 1, period=-1.0)

    def test_zero_period_still_single_shot(self):
        w = Pulse(0.0, 1.0, rise=1e-9, fall=1e-9, width=1e-9, period=0.0)
        assert w(1e-6) == pytest.approx(0.0)


class TestSinusoid:
    def test_offset_before_delay(self):
        w = Sinusoid(0.5, 1.0, 1e6, delay=1e-6)
        assert w(0.0) == 0.5

    def test_quarter_period_peak(self):
        w = Sinusoid(0.0, 2.0, 1e6)
        assert w(0.25e-6) == pytest.approx(2.0, rel=1e-6)

    def test_rejects_bad_frequency(self):
        with pytest.raises(CircuitError):
            Sinusoid(0.0, 1.0, 0.0)


class TestComposition:
    def test_sum_adds(self):
        w = DC(1.0) + DC(2.0)
        assert isinstance(w, Sum)
        assert w(0.0) == 3.0

    def test_sum_with_scalar(self):
        w = DC(1.0) + 0.5
        assert w(0.0) == 1.5

    def test_scaled(self):
        assert (DC(2.0) * 3)(0.0) == 6.0
        assert (3 * DC(2.0))(0.0) == 6.0

    def test_delayed_shifts(self):
        w = Delayed(PWL([(0, 0.0), (1e-9, 1.0)]), 1e-9)
        assert w(1e-9) == 0.0
        assert w(2e-9) == pytest.approx(1.0)

    def test_as_waveform_passthrough(self):
        w = DC(1.0)
        assert as_waveform(w) is w

    def test_as_waveform_coerces_number(self):
        assert as_waveform(2).__class__ is DC

    def test_as_waveform_rejects_junk(self):
        with pytest.raises(CircuitError):
            as_waveform("not a waveform")

    @given(st.floats(min_value=-1e-6, max_value=1e-6),
           st.floats(min_value=-5, max_value=5),
           st.floats(min_value=-5, max_value=5))
    def test_sum_is_pointwise(self, t, a, b):
        assert Sum([DC(a), DC(b)])(t) == pytest.approx(a + b)


def test_pulse_rise_is_linear():
    w = Pulse(0.0, 1.0, rise=1e-9, fall=1e-9, width=1e-9)
    assert w(0.5e-9) == pytest.approx(0.5)


def test_pulse_fall_is_linear():
    w = Pulse(0.0, 1.0, rise=1e-10, fall=1e-9, width=1e-9)
    t_fall_mid = 1e-10 + 1e-9 + 0.5e-9
    assert w(t_fall_mid) == pytest.approx(0.5, abs=1e-6)


def test_math_consistency_sin():
    w = Sinusoid(1.0, 0.5, 2e6, delay=0.0)
    t = 0.1e-6
    expected = 1.0 + 0.5 * math.sin(2 * math.pi * 2e6 * t)
    assert w(t) == pytest.approx(expected)
