"""Durability layer: WAL framing, snapshots, fault injection, crash
recovery, scheduler degradation and the retrying client."""

from __future__ import annotations

import json
import socket
import tempfile
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.client import (
    RetriesExhausted,
    RetryPolicy,
    ServiceClient,
    ServiceError,
)
from repro.errors import ProtocolError, QueryError
from repro.service import (
    AdmissionError,
    BitwiseService,
    DurabilityManager,
    FaultInjector,
    InjectedFault,
    RequestScheduler,
    ShuttingDownError,
    serve_tcp,
)
from repro.service import wire
from repro.service.durability import (
    WAL_FILE_MAGIC,
    WriteAheadLog,
    read_snapshot,
    read_wal,
    recover_service,
    stats_from_dict,
    stats_to_dict,
    write_snapshot,
)
from tests.support.durability_state import (
    assert_recovered_equal,
    durable_state,
)

N_BITS = 256

pytestmark = pytest.mark.timeout(60)


def make_service(**kwargs):
    kwargs.setdefault("n_bits", N_BITS)
    kwargs.setdefault("n_shards", 2)
    kwargs.setdefault("capacity", 4 * N_BITS)
    return BitwiseService("feram-2tnc", **kwargs)


def attach(service, data_dir, *, snapshot_every=None, sync="none",
           injector=None) -> DurabilityManager:
    """Open a durability manager on ``data_dir`` and attach it."""
    manager = DurabilityManager(data_dir, snapshot_every=snapshot_every,
                                sync=sync, injector=injector)
    manager.open(manager.load_base()[0])
    service.attach_durability(manager)
    return manager


@pytest.fixture
def data_dir(tmp_path):
    return tmp_path / "data"


# ----------------------------------------------------------------------
# Stats serialization
# ----------------------------------------------------------------------
def test_stats_roundtrip_is_exact(rng):
    service = make_service()
    try:
        for name in ("a", "b"):
            service.create_column(
                name, (rng.random(N_BITS) < 0.5).astype(np.uint8))
        service.query("a & ~b")
        ledger = service._ledger
        clone = stats_from_dict(
            json.loads(json.dumps(stats_to_dict(ledger))))
        assert clone.energy_j == ledger.energy_j  # repr round-trip
        assert clone.cycles == ledger.cycles
        assert clone.counts == ledger.counts
    finally:
        service.close()


# ----------------------------------------------------------------------
# fault injector
# ----------------------------------------------------------------------
class TestFaultInjector:
    def test_after_and_times_semantics(self):
        injector = FaultInjector()
        injector.arm("batch.exec", after=2, times=2)
        fired = [injector.fires("batch.exec") is not None
                 for _ in range(6)]
        assert fired == [False, False, True, True, False, False]
        assert injector.fired["batch.exec"] == 2

    def test_forever_and_disarm(self):
        injector = FaultInjector().arm("wal.fsync", times=-1)
        for _ in range(5):
            with pytest.raises(InjectedFault):
                injector.check("wal.fsync")
        injector.disarm("wal.fsync")
        injector.check("wal.fsync")  # no longer armed
        assert injector.fired["wal.fsync"] == 5

    def test_unknown_point_rejected(self):
        with pytest.raises(QueryError, match="unknown fault point"):
            FaultInjector().arm("wal.bogus")

    def test_from_spec(self):
        injector = FaultInjector.from_spec(
            "wal.fsync:after=3, batch.delay:param=0.05:times=2")
        assert injector._arms["wal.fsync"].after == 3
        assert injector._arms["batch.delay"].param == 0.05
        assert injector._arms["batch.delay"].times == 2
        assert FaultInjector.from_spec(None) is None
        assert FaultInjector.from_spec("") is None
        with pytest.raises(QueryError, match="unknown fault option"):
            FaultInjector.from_spec("wal.fsync:sometimes=1")


# ----------------------------------------------------------------------
# write-ahead log
# ----------------------------------------------------------------------
class TestWriteAheadLog:
    def test_append_read_roundtrip(self, tmp_path, rng):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path, sync="none")
        payload = (rng.random(96) < 0.5).astype(np.uint8)
        wal.append({"kind": "update", "name": "a"}, payload)
        wal.append({"kind": "drop", "name": "b"}, None)
        wal.close()
        records, valid, torn = read_wal(path)
        assert not torn and valid == path.stat().st_size
        assert [meta["kind"] for meta, _ in records] == \
            ["update", "drop"]
        assert np.array_equal(records[0][1], payload)
        assert records[1][1] is None

    def test_torn_tail_is_discarded_and_truncated(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path, sync="none")
        for index in range(3):
            wal.append({"kind": "drop", "index": index})
        wal.close()
        whole = path.read_bytes()
        path.write_bytes(whole + b"\x40\x00\x00\x00partial")
        records, valid, torn = read_wal(path)
        assert torn and len(records) == 3 and valid == len(whole)
        # Reopening truncates the torn bytes away.
        WriteAheadLog(path, sync="none").close()
        assert path.read_bytes() == whole

    def test_corrupt_crc_invalidates_the_tail_record(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path, sync="none")
        for index in range(3):
            wal.append({"kind": "drop", "index": index})
        wal.close()
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        records, _, torn = read_wal(path)
        assert torn and [m["index"] for m, _ in records] == [0, 1]

    def test_foreign_file_treated_as_all_torn(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(b"this is not a WAL")
        records, valid, torn = read_wal(path)
        assert records == [] and valid == 0 and torn
        wal = WriteAheadLog(path, sync="none")  # reinitializes
        wal.append({"kind": "drop"})
        wal.close()
        assert path.read_bytes().startswith(WAL_FILE_MAGIC)
        assert len(read_wal(path)[0]) == 1

    def test_missing_file_is_an_empty_log(self, tmp_path):
        assert read_wal(tmp_path / "absent.log") == ([], 0, False)

    def test_injected_torn_append_leaves_partial_record(self, tmp_path):
        path = tmp_path / "wal.log"
        injector = FaultInjector().arm("wal.torn", after=1)
        wal = WriteAheadLog(path, sync="none", injector=injector)
        wal.append({"kind": "drop", "index": 0})
        with pytest.raises(InjectedFault) as info:
            wal.append({"kind": "drop", "index": 1})
        assert info.value.crash
        wal.close()
        records, _, torn = read_wal(path)
        assert torn and len(records) == 1

    def test_clean_fault_rolls_the_log_back(self, tmp_path):
        """A failed fsync rejects the op; its record must not survive
        for replay, so the manager truncates back to the last commit."""
        injector = FaultInjector().arm("wal.fsync", after=1)
        manager = DurabilityManager(tmp_path, sync="always",
                                    injector=injector)
        manager.open(0)
        manager.log({"kind": "drop", "index": 0})
        with pytest.raises(InjectedFault) as info:
            manager.log({"kind": "drop", "index": 1})
        assert not info.value.crash
        manager.log({"kind": "drop", "index": 2})
        manager.close()
        records, _, torn = read_wal(manager.wal_path(0))
        assert not torn
        assert [m["index"] for m, _ in records] == [0, 2]


# ----------------------------------------------------------------------
# snapshots
# ----------------------------------------------------------------------
class TestSnapshot:
    def test_write_read_roundtrip(self, tmp_path, rng):
        path = tmp_path / "snap-00000001.snap"
        columns = {"a": (rng.random(N_BITS) < 0.5).astype(np.uint8),
                   "b": np.ones(N_BITS, dtype=np.uint8)}
        meta = {"n_bits": N_BITS, "rows_used": 2}
        write_snapshot(path, meta, columns)
        got_meta, got_columns = read_snapshot(path)
        assert got_meta == meta
        assert set(got_columns) == {"a", "b"}
        for name in columns:
            assert np.array_equal(got_columns[name], columns[name])

    def test_corrupt_body_raises(self, tmp_path):
        path = tmp_path / "snap-00000001.snap"
        write_snapshot(path, {"n_bits": 8}, {})
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(ProtocolError, match="corrupt"):
            read_snapshot(path)

    def test_truncated_file_raises(self, tmp_path):
        path = tmp_path / "snap-00000001.snap"
        write_snapshot(path, {"n_bits": 8}, {})
        path.write_bytes(path.read_bytes()[:-3])
        with pytest.raises(ProtocolError):
            read_snapshot(path)

    def test_injected_partial_write_never_lands(self, tmp_path):
        """The tmp-write + rename protocol: a crash mid-write leaves
        only the temp file, never a partial file at the final name."""
        injector = FaultInjector().arm("snapshot.write")
        path = tmp_path / "snap-00000001.snap"
        with pytest.raises(InjectedFault):
            write_snapshot(path, {"n_bits": 8}, {},
                           injector=injector)
        assert not path.exists()


# ----------------------------------------------------------------------
# generations, rotation, checkpoints
# ----------------------------------------------------------------------
class TestGenerations:
    def test_fresh_directory_is_generation_zero(self, data_dir):
        manager = DurabilityManager(data_dir, sync="none")
        assert manager.load_base() == (0, None, {}, [], False)
        assert manager.generations() == []

    def test_checkpoint_rotates_and_retires(self, data_dir, rng):
        service = make_service()
        manager = attach(service, data_dir)
        try:
            service.create_column(
                "a", (rng.random(N_BITS) < 0.5).astype(np.uint8))
            assert service.checkpoint()["generation"] == 1
            service.update_column(
                "a", np.zeros(N_BITS, dtype=np.uint8))
            assert service.checkpoint()["generation"] == 2
            service.write_slice("a", 0, np.ones(7, dtype=np.uint8))
            assert service.checkpoint()["generation"] == 3
            # Only the newest snapshot and its fallback survive.
            assert manager.generations() == [2, 3]
            assert not manager.snap_path(1).exists()
            assert not manager.wal_path(0).exists()
        finally:
            service.close()

    def test_corrupt_newest_snapshot_falls_back(self, data_dir, rng):
        bits = (rng.random(N_BITS) < 0.5).astype(np.uint8)
        service = make_service()
        attach(service, data_dir)
        service.create_column("a", bits)
        service.checkpoint()                        # snap-1
        service.update_column("a", 1 - bits)
        service.checkpoint()                        # snap-2
        expected, _ = durable_state(service)
        service.close()
        # Corrupt the newest snapshot on disk: recovery must reach
        # the same state from snap-1 plus wal-1's replay.
        blob = bytearray(
            DurabilityManager(data_dir, sync="none")
            .snap_path(2).read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        DurabilityManager(data_dir, sync="none") \
            .snap_path(2).write_bytes(bytes(blob))
        recovered = recover_service(data_dir, sync="none")
        try:
            assert recovered.durability.last_recovery["generation"] == 1
            assert np.array_equal(recovered.column_bits("a"), 1 - bits)
            got, _ = durable_state(recovered)
            assert got["rows_used"] == expected["rows_used"]
        finally:
            recovered.close()

    def test_auto_snapshot_after_n_barriers(self, data_dir, rng):
        service = make_service()
        manager = attach(service, data_dir, snapshot_every=3)
        try:
            service.create_column(
                "a", (rng.random(N_BITS) < 0.5).astype(np.uint8))
            service.create_column(
                "b", (rng.random(N_BITS) < 0.5).astype(np.uint8))
            assert manager.generation == 0
            service.update_column(
                "a", np.zeros(N_BITS, dtype=np.uint8))  # 3rd barrier
            assert manager.generation == 1
            assert manager.snapshots_written == 1
            assert manager.mutations_since_snapshot == 0
        finally:
            service.close()


# ----------------------------------------------------------------------
# recovery equivalence
# ----------------------------------------------------------------------
def exercise(service, rng) -> None:
    """A representative multi-tenant workload: quotas, mutations of
    every kind, cached + uncached queries, and a program run."""
    service.register_tenant("acme", quota_energy_nj=1e12,
                            max_pending=8)
    service.register_tenant("globex", quota_bits=64 * N_BITS)
    for name in ("a", "b", "c"):
        service.create_column(
            name, (rng.random(N_BITS) < 0.4).astype(np.uint8))
    service.create_column(
        "a", (rng.random(N_BITS) < 0.6).astype(np.uint8),
        tenant="acme")
    service.create_column(
        "k", (rng.random(N_BITS) < 0.2).astype(np.uint8),
        tenant="globex")
    service.query("a & b")
    service.query("a & b")                    # cache hit: logs nothing
    service.execute(["a ^ c", "~b"])
    service.query("a", tenant="acme")
    service.update_column("b", (rng.random(N_BITS) < 0.5)
                          .astype(np.uint8))
    service.write_slice("a", 32, np.ones(48, dtype=np.uint8),
                        tenant="acme")
    service.append_rows({"a": np.ones(64, dtype=np.uint8)}, 64)
    service.query("a | b")                    # miss: b was mutated
    from repro.arch.program import parse_program

    service.run_program(parse_program("t = a & c\nout = t ^ b"))
    service.drop_column("c")


class TestRecovery:
    def test_full_recovery_is_equivalent(self, data_dir, rng):
        service = make_service()
        attach(service, data_dir)
        exercise(service, rng)
        service.close()

        recovered = recover_service(data_dir, sync="none")
        try:
            info = recovered.durability.last_recovery
            assert info["generation"] == 0 and not info["snapshot"]
            assert info["records_replayed"] > 0
            assert not info["torn_tail_discarded"]
            assert_recovered_equal(service, recovered)
            # The recovered service keeps serving and keeps logging.
            before = recovered.durability.stats()["wal_records"]
            recovered.query("a ^ b")
            recovered.update_column(
                "b", np.zeros(N_BITS + 64, dtype=np.uint8))
            assert recovered.durability.stats()["wal_records"] > before
        finally:
            recovered.close()

    def test_recovery_through_snapshots(self, data_dir, rng):
        service = make_service()
        attach(service, data_dir, snapshot_every=4)
        exercise(service, rng)
        assert service.durability.generation >= 1
        service.close()
        recovered = recover_service(data_dir, sync="none",
                                    snapshot_every=4)
        try:
            assert recovered.durability.last_recovery["snapshot"]
            assert_recovered_equal(service, recovered)
        finally:
            recovered.close()

    def test_recover_then_mutate_then_recover_again(self, data_dir,
                                                    rng):
        service = make_service()
        attach(service, data_dir)
        exercise(service, rng)
        service.close()
        first = recover_service(data_dir, sync="none")
        first.update_column("a", np.zeros(N_BITS + 64,
                                          dtype=np.uint8))
        first.query("a | b")
        first.close()
        second = recover_service(data_dir, sync="none")
        try:
            assert_recovered_equal(first, second)
            assert int(second.column_bits("a").sum()) == 0
        finally:
            second.close()

    def test_snapshot_geometry_beats_cli_defaults(self, data_dir, rng):
        service = make_service(n_shards=3, capacity=2 * N_BITS)
        attach(service, data_dir)
        service.create_column(
            "a", (rng.random(N_BITS) < 0.5).astype(np.uint8))
        service.checkpoint()
        service.close()
        recovered = recover_service(data_dir, sync="none",
                                    n_bits=8, n_shards=1, capacity=64)
        try:
            assert recovered.n_bits == N_BITS
            assert recovered.n_shards == 3
            assert recovered.capacity == 2 * N_BITS
        finally:
            recovered.close()

    def test_fresh_directory_requires_geometry(self, data_dir):
        with pytest.raises(QueryError, match="n_bits"):
            recover_service(data_dir, sync="none")

    def test_durability_requires_functional_vector(self, data_dir):
        service = BitwiseService("feram-2tnc", n_bits=N_BITS,
                                 n_shards=2, backend="reference")
        try:
            with pytest.raises(QueryError, match="vector"):
                attach(service, data_dir)
        finally:
            service.close()

    def test_stats_surface_durability(self, data_dir, rng):
        service = make_service()
        assert service.stats()["durability"] is None
        attach(service, data_dir, snapshot_every=100, sync="none")
        try:
            service.create_column(
                "a", (rng.random(N_BITS) < 0.5).astype(np.uint8))
            report = service.stats()["durability"]
            assert report["generation"] == 0
            assert report["wal_records"] == 2  # geometry + create
            assert report["snapshot_every"] == 100
        finally:
            service.close()


# ----------------------------------------------------------------------
# crash points: torn WAL tails at arbitrary records
# ----------------------------------------------------------------------
def apply_script(service, ops, *, stop_on_fault: bool = False) -> int:
    """Run a mutation script; returns how many ops fully applied."""
    applied = 0
    for op in ops:
        kind = op[0]
        try:
            if kind == "create":
                _, name, seed, width = op
                service.create_column(
                    name, (np.random.default_rng(seed)
                           .random(width) < 0.5).astype(np.uint8))
            elif kind == "drop":
                service.drop_column(op[1])
            elif kind == "update":
                _, name, seed, width = op
                service.update_column(
                    name, (np.random.default_rng(seed)
                           .random(width) < 0.5).astype(np.uint8))
            elif kind == "write":
                _, name, offset, length, seed = op
                service.write_slice(
                    name, offset,
                    (np.random.default_rng(seed)
                     .random(length) < 0.5).astype(np.uint8))
            elif kind == "append":
                _, n, seed, name = op
                service.append_rows(
                    {name: (np.random.default_rng(seed)
                            .random(n) < 0.5).astype(np.uint8)}, n)
            else:
                raise AssertionError(kind)
        except InjectedFault:
            if not stop_on_fault:
                raise
            return applied
        applied += 1
    return applied


@st.composite
def crash_scripts(draw):
    """(ops, crash_index): a mutation script and where the WAL tears."""
    width = 128
    columns = ["c0", "c1"]
    next_id = 2
    ops = []
    for _ in range(draw(st.integers(3, 9))):
        kinds = ["update", "write", "append", "create"]
        if len(columns) > 1:
            kinds.append("drop")
        kind = draw(st.sampled_from(kinds))
        seed = draw(st.integers(0, 2**16))
        if kind == "create":
            name = f"c{next_id}"
            next_id += 1
            columns.append(name)
            ops.append(("create", name, seed, width))
        elif kind == "drop":
            name = draw(st.sampled_from(columns))
            columns.remove(name)
            ops.append(("drop", name))
        elif kind == "update":
            ops.append(("update", draw(st.sampled_from(columns)),
                        seed, width))
        elif kind == "write":
            offset = draw(st.integers(0, width - 8))
            length = draw(st.integers(1, width - offset))
            ops.append(("write", draw(st.sampled_from(columns)),
                        offset, length, seed))
        else:
            n = draw(st.integers(1, 16))
            ops.append(("append", n, seed,
                        draw(st.sampled_from(columns))))
            width += n
    return ops, draw(st.integers(0, len(ops)))


class TestCrashPoints:
    @settings(max_examples=12, deadline=None)
    @given(crash_scripts())
    def test_torn_tail_recovers_the_committed_prefix(self, script):
        """For any mutation script and any crash record index, the
        recovered state equals a reference service that ran exactly
        the ops whose WAL records committed."""
        ops, crash_at = script
        setup = [("create", "c0", 1, 128), ("create", "c1", 2, 128)]
        # +1 for the geometry bootstrap record logged at attach.
        injector = FaultInjector().arm(
            "wal.torn", after=1 + len(setup) + crash_at)
        with tempfile.TemporaryDirectory() as tmp:
            live = make_service(n_bits=128, capacity=1024)
            attach(live, tmp, injector=injector)
            apply_script(live, setup)
            applied = apply_script(live, ops, stop_on_fault=True)
            assert applied == min(crash_at, len(ops))
            live.close()

            recovered = recover_service(tmp, sync="none")
            reference = make_service(n_bits=128, capacity=1024)
            try:
                apply_script(reference, setup)
                apply_script(reference, ops[:applied])
                assert_recovered_equal(reference, recovered)
            finally:
                recovered.close()
                reference.close()

    def test_crash_during_a_charges_record_drops_that_batch(
            self, data_dir, rng):
        """If the process dies while appending a query's accounting
        record, recovery lands on the state without that batch — the
        committed-prefix contract, not a half-applied charge."""
        bits = (rng.random(N_BITS) < 0.5).astype(np.uint8)
        injector = FaultInjector()
        service = make_service()
        attach(service, data_dir, injector=injector)
        service.create_column("a", bits)
        service.create_column("b", 1 - bits)
        injector.arm("wal.torn")          # next append: the charges
        with pytest.raises(InjectedFault):
            service.query("a & b")
        service.close()

        recovered = recover_service(data_dir, sync="none")
        reference = make_service()
        try:
            reference.create_column("a", bits)
            reference.create_column("b", 1 - bits)
            assert_recovered_equal(reference, recovered)
        finally:
            recovered.close()
            reference.close()

    def test_clean_wal_failure_rejects_without_applying(
            self, data_dir, rng):
        """Graceful degradation: a failed (non-crash) WAL append
        rejects the mutation, leaves memory untouched, and the service
        keeps serving."""
        bits = (rng.random(N_BITS) < 0.5).astype(np.uint8)
        injector = FaultInjector()
        service = make_service()
        attach(service, data_dir, sync="always", injector=injector)
        try:
            service.create_column("a", bits)
            injector.arm("wal.fsync")
            with pytest.raises(InjectedFault):
                service.update_column(
                    "a", np.zeros(N_BITS, dtype=np.uint8))
            assert np.array_equal(service.column_bits("a"), bits)
            assert service.mutations_applied == 0
            service.update_column("a", 1 - bits)   # recovered
            assert np.array_equal(service.column_bits("a"), 1 - bits)
        finally:
            service.close()


# ----------------------------------------------------------------------
# scheduler: timeouts, typed rejections, drain
# ----------------------------------------------------------------------
class TestSchedulerFaults:
    @pytest.fixture
    def service(self, rng):
        svc = make_service()
        for name in ("a", "b"):
            svc.create_column(
                name, (rng.random(N_BITS) < 0.5).astype(np.uint8))
        yield svc
        svc.close()

    def test_queue_full_rejection_carries_retry_hint(self, service):
        import asyncio

        async def scenario():
            scheduler = RequestScheduler(service, window_s=0.2,
                                         max_pending=1)
            scheduler.start()
            try:
                task = asyncio.ensure_future(
                    scheduler.submit_query(None, "a & b"))
                await asyncio.sleep(0)
                with pytest.raises(AdmissionError) as info:
                    await scheduler.submit_query(None, "a | b")
                await task
                return info.value.retry_after_ms
            finally:
                await scheduler.stop()

        hint = asyncio.run(scenario())
        assert hint is not None and hint > 0

    def test_energy_rejection_carries_retry_hint(self, service):
        import asyncio

        from repro.service.scheduler import ENERGY_RETRY_AFTER_MS

        service.register_tenant("capped", quota_energy_nj=0.0)

        async def scenario():
            scheduler = RequestScheduler(service, window_s=0.01)
            scheduler.start()
            try:
                with pytest.raises(AdmissionError) as info:
                    await scheduler.submit_query("capped", "a & b")
                return info.value.retry_after_ms
            finally:
                await scheduler.stop()

        assert asyncio.run(scenario()) == ENERGY_RETRY_AFTER_MS

    def test_request_timeout_degrades_gracefully(self, service):
        import asyncio

        injector = FaultInjector().arm("batch.delay", param=0.5)

        async def scenario():
            scheduler = RequestScheduler(service, window_s=0.01,
                                         request_timeout_s=0.05,
                                         injector=injector)
            scheduler.start()
            try:
                with pytest.raises(QueryError, match="timed out"):
                    await scheduler.submit_query(None, "a & b")
                # The next round is healthy again.
                result = await scheduler.submit_query(None, "a | b")
                return result, dict(scheduler.metrics)
            finally:
                await scheduler.stop()

        result, metrics = asyncio.run(scenario())
        assert result.count >= 0
        assert metrics["timeouts"] == 1

    def test_injected_batch_fault_falls_back_per_item(self, service):
        import asyncio

        injector = FaultInjector().arm("batch.exec")

        async def scenario():
            scheduler = RequestScheduler(service, window_s=0.01,
                                         injector=injector)
            scheduler.start()
            try:
                return await scheduler.submit_query(None, "a & b")
            finally:
                await scheduler.stop()

        result = asyncio.run(scenario())
        assert result.count >= 0
        assert injector.fired["batch.exec"] == 1

    def test_mutation_round_group_commits_one_fsync(
            self, service, data_dir, rng):
        """Barriers queued into the same scheduler round share a
        single WAL fsync (group commit), yet every record lands and
        replays."""
        import asyncio

        manager = attach(service, data_dir, sync="batch")
        # Logged post-attach, so recovery can rebuild it from the WAL
        # alone (the fixture's a/b predate the log).
        service.create_column("g", np.zeros(N_BITS, dtype=np.uint8))
        bits = (rng.random(64) < 0.5).astype(np.uint8)

        async def scenario():
            scheduler = RequestScheduler(service, window_s=0.05)
            scheduler.start()
            try:
                before = manager.stats()["wal_fsyncs"]
                tasks = [asyncio.ensure_future(
                    scheduler.submit_exclusive(
                        None,
                        lambda k=k: service.write_slice(
                            "g", 64 * k, bits)))
                    for k in range(4)]
                await asyncio.gather(*tasks)
                after = manager.stats()["wal_fsyncs"]
                return after - before, dict(scheduler.metrics)
            finally:
                await scheduler.stop()

        fsyncs, metrics = asyncio.run(scenario())
        assert fsyncs == 1
        assert metrics["exclusives"] == 4
        assert metrics["wal_group_commits"] == 1
        assert service.mutations_applied == 4
        service.close()
        recovered = recover_service(data_dir, sync="none")
        try:
            assert recovered.mutations_applied == 4
            page = recovered.read_bits_array("g", 64 * 3, 64)
            assert np.array_equal(page["bits"], bits)
        finally:
            recovered.close()

    def test_group_fsync_failure_withholds_every_ack(
            self, service, data_dir, rng):
        """A failed group fsync means nothing in the round is durable
        — every op in it settles with the error, none is acked."""
        import asyncio

        injector = FaultInjector().arm("wal.fsync")
        attach(service, data_dir, sync="batch", injector=injector)
        bits = (rng.random(64) < 0.5).astype(np.uint8)

        async def scenario():
            scheduler = RequestScheduler(service, window_s=0.05,
                                         injector=injector)
            scheduler.start()
            try:
                tasks = [asyncio.ensure_future(
                    scheduler.submit_exclusive(
                        None,
                        lambda k=k: service.write_slice(
                            "a", 64 * k, bits)))
                    for k in range(2)]
                results = await asyncio.gather(
                    *tasks, return_exceptions=True)
                # The scheduler survives: the next round is healthy.
                healthy = await scheduler.submit_exclusive(
                    None, lambda: service.write_slice("b", 0, bits))
                return results, healthy
            finally:
                await scheduler.stop()

        results, healthy = asyncio.run(scenario())
        assert all(isinstance(r, InjectedFault) for r in results)
        assert healthy.rows_written >= 0

    def test_drain_rejects_new_work_then_settles(self, service):
        import asyncio

        async def scenario():
            scheduler = RequestScheduler(service, window_s=0.02)
            scheduler.start()
            try:
                task = asyncio.ensure_future(
                    scheduler.submit_query(None, "a & b"))
                await asyncio.sleep(0)
                scheduler.begin_drain()
                with pytest.raises(ShuttingDownError):
                    await scheduler.submit_query(None, "a | b")
                assert await scheduler.drain(timeout_s=5.0)
                result = await task
                return result, dict(scheduler.metrics)
            finally:
                await scheduler.stop()

        result, metrics = asyncio.run(scenario())
        assert result.count >= 0
        assert metrics["drain_rejections"] == 1


# ----------------------------------------------------------------------
# the wire: typed rejections and graceful shutdown
# ----------------------------------------------------------------------
class _Line:
    def __init__(self, port: int):
        self.sock = socket.create_connection(("127.0.0.1", port),
                                             timeout=10)
        self.stream = self.sock.makefile("rw")

    def call(self, request: dict) -> dict:
        self.stream.write(json.dumps(request) + "\n")
        self.stream.flush()
        return json.loads(self.stream.readline())

    def close(self):
        self.sock.close()


def start_server(service, **kwargs):
    server = serve_tcp(service, 0, batch_window_s=0.002, **kwargs)
    thread = threading.Thread(target=server.serve_forever,
                              daemon=True)
    thread.start()
    return server, server.server_address[1]


class TestWireFaults:
    @pytest.fixture
    def service(self, rng):
        svc = make_service()
        svc.create_column(
            "a", (rng.random(N_BITS) < 0.5).astype(np.uint8))
        svc.register_tenant("capped", quota_energy_nj=0.0)
        svc.create_column("a", np.ones(N_BITS, dtype=np.uint8),
                          tenant="capped")
        yield svc
        svc.close()

    def test_admission_rejection_on_the_json_wire(self, service):
        server, port = start_server(service)
        client = _Line(port)
        try:
            assert client.call({"op": "hello",
                                "tenant": "capped"})["ok"]
            response = client.call({"op": "query", "expr": "a"})
            assert not response["ok"]
            assert response["code"] == "admission"
            assert response["retry_after_ms"] == 1000.0
        finally:
            client.close()
            server.shutdown()
            server.server_close()

    def test_admission_rejection_on_the_binary_wire(self, service):
        server, port = start_server(service)
        sock = socket.create_connection(("127.0.0.1", port),
                                        timeout=10)
        stream = sock.makefile("rwb")
        try:
            hello = {"op": "hello", "tenant": "capped",
                     "wire": "binary"}
            stream.write((json.dumps(hello) + "\n").encode())
            stream.flush()
            assert json.loads(stream.readline())["ok"]
            stream.write(wire.encode_frame(
                wire.KIND_REQUEST, {"op": "query", "expr": "a"}))
            stream.flush()
            header = wire.decode_header(
                stream.read(wire.HEADER_SIZE))
            response, _ = wire.decode_frame(
                header, stream.read(header.meta_len),
                stream.read(header.payload_bytes))
            assert not response["ok"]
            assert response["code"] == "admission"
            assert response["retry_after_ms"] == 1000.0
        finally:
            sock.close()
            server.shutdown()
            server.server_close()

    def test_graceful_shutdown_notifies_connections(self, service):
        server, port = start_server(service)
        client = _Line(port)
        try:
            assert client.call({"op": "query", "expr": "a"})["ok"]
            server.shutdown()
            server.server_close()
            goodbye = json.loads(client.stream.readline())
            assert not goodbye["ok"]
            assert goodbye["code"] == "shutting_down"
            assert client.stream.readline() == ""   # then EOF
        finally:
            client.close()

    def test_shutdown_flushes_a_final_snapshot(self, data_dir, rng):
        service = make_service()
        attach(service, data_dir, sync="none")
        server, port = start_server(service)
        client = _Line(port)
        bits = (rng.random(N_BITS) < 0.5).astype(np.uint8)
        try:
            assert client.call({
                "op": "create_column", "name": "w",
                "bits": bits.astype(int).tolist()})["ok"]
        finally:
            client.close()
            server.shutdown()
            server.server_close()
        expected, _ = durable_state(service)
        service.close()
        recovered = recover_service(data_dir, sync="none")
        try:
            info = recovered.durability.last_recovery
            assert info["snapshot"]          # the shutdown checkpoint
            assert info["records_replayed"] == 0
            assert np.array_equal(recovered.column_bits("w"), bits)
        finally:
            recovered.close()


# ----------------------------------------------------------------------
# retrying client
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_hint_overrides_computed_backoff(self):
        policy = RetryPolicy(jitter=0.0)
        assert policy.delay_s(0) == 0.010
        assert policy.delay_s(3) == 0.080
        assert policy.delay_s(0, hint_ms=500.0) == 0.5
        capped = RetryPolicy(jitter=0.0, max_ms=100.0)
        assert capped.delay_s(10) == 0.1

    def test_seeded_jitter_is_deterministic(self):
        first = [RetryPolicy(seed=7).delay_s(i) for i in range(4)]
        second = [RetryPolicy(seed=7).delay_s(i) for i in range(4)]
        assert first == second
        assert first != [RetryPolicy(jitter=0.0).delay_s(i)
                         for i in range(4)]


class TestServiceClient:
    @pytest.fixture
    def served(self, rng):
        svc = make_service()
        svc.create_column(
            "a", (rng.random(N_BITS) < 0.5).astype(np.uint8))
        svc.register_tenant("capped", quota_energy_nj=0.0)
        svc.create_column("a", np.ones(N_BITS, dtype=np.uint8),
                          tenant="capped")
        server, port = start_server(svc)
        yield svc, port
        server.shutdown()
        server.server_close()
        svc.close()

    def test_roundtrip_and_nonretryable_errors(self, served):
        service, port = served
        with ServiceClient("127.0.0.1", port) as client:
            result = client.query("a")
            assert result["count"] == \
                int(service.column_bits("a").sum())
            assert len(client.batch(["a", "~a"])) == 2
            with pytest.raises(ServiceError):
                client.query("zzz")
            assert client.metrics["retries"] == 0

    def test_admission_backoff_honors_the_server_hint(self, served):
        _, port = served
        sleeps: list[float] = []
        client = ServiceClient(
            "127.0.0.1", port, tenant="capped",
            policy=RetryPolicy(max_attempts=3, jitter=0.0),
            sleep=sleeps.append)
        with client:
            with pytest.raises(RetriesExhausted) as info:
                client.query("a")
        assert info.value.last_error.code == "admission"
        assert sleeps == [1.0, 1.0]         # the 1000 ms server hint
        assert client.metrics["retries"] == 2
        assert client.metrics["backoff_s"] == 2.0

    def test_binary_wire_bulk_ops(self, served, rng):
        _, port = served
        payload = (rng.random(N_BITS) < 0.5).astype(np.uint8)
        with ServiceClient("127.0.0.1", port,
                           wire="binary") as client:
            assert client.hello is None
            client.create_column("bw", payload)
            assert client.hello["wire"] == "binary"
            page = client.bits("bw", 0, N_BITS)
            assert np.array_equal(page["bits"], payload)
            client.append_rows({"bw": np.ones(32, dtype=np.uint8)})
            assert client.query("bw")["count"] == \
                int(payload.sum()) + 32

    def test_reconnects_through_dropped_connections(self):
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(4)
        port = listener.getsockname()[1]
        responses = [{"ok": False, "code": "shutting_down",
                      "error": "server shutting down"},
                     {"ok": True, "count": 5}]

        def serve():
            # Each connection: hello, then ONE request, then close —
            # so every extra request forces a client reconnect.
            for response in responses:
                conn, _ = listener.accept()
                stream = conn.makefile("rwb")
                assert stream.readline()       # hello
                stream.write(json.dumps(
                    {"ok": True, "tenant": None}).encode() + b"\n")
                stream.flush()
                assert stream.readline()       # the request
                stream.write(json.dumps(response).encode() + b"\n")
                stream.flush()
                conn.close()
            listener.close()

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        sleeps: list[float] = []
        client = ServiceClient(
            "127.0.0.1", port,
            policy=RetryPolicy(max_attempts=4, jitter=0.0),
            sleep=sleeps.append)
        with client:
            response = client.call({"op": "query", "expr": "a"})
        thread.join(timeout=10)
        assert response["count"] == 5
        # shutting_down forced a disconnect; the retry reconnected.
        assert client.metrics["reconnects"] == 1
        assert client.metrics["retries"] == 1
        assert len(sleeps) == 1
