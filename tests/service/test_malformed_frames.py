"""Malformed-frame regression matrix over both wires.

Pins the PR 9 validation fixes:

* ``decode_frame`` treats ``segment_bits`` as untrusted — non-list,
  non-int, bool, and negative counts, and counts inconsistent with the
  header's ``n_bits``, all raise typed :class:`ProtocolError` instead
  of escaping as raw ``ValueError``;
* ``encode_frame`` recognizes a flat Python list of scalar bits as ONE
  logical array, not a run of one-bit segments;
* a metadata-level frame violation (the frame was consumed in full)
  is answered with ``{"code": "protocol"}`` and the connection
  **survives** — only header corruption, where framing is lost,
  closes the connection;
* negative readout offsets/limits answer ``{"code": "query"}`` on
  both wires and the connection survives.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.service import BitwiseService, serve_tcp
from repro.service import wire
from tests.service.test_wire import _BinaryClient, _JsonClient

N_BITS = 512

pytestmark = pytest.mark.timeout(60)


@pytest.fixture
def service(rng):
    svc = BitwiseService(n_bits=N_BITS, n_shards=2)
    for name in ("a", "b"):
        svc.create_column(
            name, (rng.random(N_BITS) < 0.5).astype(np.uint8))
    yield svc
    svc.close()


@pytest.fixture
def server(service):
    srv = serve_tcp(service, 0, batch_window_s=0.002)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()


def _raw_frame(meta: dict, payload: bytes, n_bits: int) -> bytes:
    """Hand-craft a frame with a *valid* header but arbitrary meta."""
    meta_bytes = json.dumps(meta, separators=(",", ":")).encode()
    header = wire.HEADER.pack(wire.MAGIC, wire.VERSION,
                              wire.KIND_REQUEST, 0, n_bits,
                              len(meta_bytes), len(payload) // 8)
    return header + meta_bytes + payload


# ----------------------------------------------------------------------
# codec level
# ----------------------------------------------------------------------
class TestSegmentBitsValidation:
    def _decode(self, meta: dict, payload: bytes, n_bits: int):
        frame = _raw_frame(meta, payload, n_bits)
        header = wire.decode_header(frame[:wire.HEADER_SIZE])
        rest = frame[wire.HEADER_SIZE:]
        return wire.decode_frame(header, rest[:header.meta_len],
                                 rest[header.meta_len:])

    @pytest.mark.parametrize("counts", [
        ["oops"],          # non-int count
        [None],            # null count
        [True],            # bool is not an integer count
        [64.0],            # float count
        [[64]],            # nested list
    ])
    def test_non_int_count_is_typed_error(self, counts):
        with pytest.raises(ProtocolError, match="integer"):
            self._decode({"segment_bits": counts}, b"\x00" * 8, 64)

    def test_negative_count_is_typed_error(self):
        with pytest.raises(ProtocolError, match="negative"):
            self._decode({"segment_bits": [-64]}, b"\x00" * 8, 64)

    @pytest.mark.parametrize("segments", ["64", {"n": 64}, 64])
    def test_non_list_segments_is_typed_error(self, segments):
        with pytest.raises(ProtocolError, match="list"):
            self._decode({"segment_bits": segments}, b"\x00" * 8, 64)

    def test_counts_must_sum_to_header_n_bits(self):
        with pytest.raises(ProtocolError, match="sum"):
            self._decode({"segment_bits": [32, 16]}, b"\x00" * 16, 64)

    def test_tampered_header_n_bits_is_typed_error(self):
        # Header claims more bits than the payload words can hold.
        with pytest.raises(ProtocolError, match="header claims"):
            self._decode({}, b"\x00" * 8, 128)

    def test_consistent_segments_still_decode(self, rng):
        segments = [rng.integers(0, 2, width, dtype=np.uint8)
                    for width in (65, 64)]
        frame = wire.encode_frame(wire.KIND_REQUEST, {}, segments)
        header = wire.decode_header(frame[:wire.HEADER_SIZE])
        rest = frame[wire.HEADER_SIZE:]
        _, bits = wire.decode_frame(header, rest[:header.meta_len],
                                    rest[header.meta_len:])
        assert len(bits) == 2
        for got, want in zip(bits, segments):
            assert np.array_equal(got, want)


class TestFlatListEncoding:
    def test_flat_scalar_list_is_one_segment(self):
        """Regression: ``[1, 0, 1, 1]`` used to encode as four one-bit
        segments; it must be a single 4-bit payload."""
        frame = wire.encode_frame(wire.KIND_REQUEST,
                                  {"op": "x"}, [1, 0, 1, 1])
        header = wire.decode_header(frame[:wire.HEADER_SIZE])
        assert header.n_bits == 4
        rest = frame[wire.HEADER_SIZE:]
        meta, bits = wire.decode_frame(header, rest[:header.meta_len],
                                       rest[header.meta_len:])
        assert "segment_bits" not in meta
        assert isinstance(bits, np.ndarray)
        assert np.array_equal(bits, [1, 0, 1, 1])

    def test_numpy_scalar_list_is_one_segment(self):
        values = [np.uint8(1), np.uint8(1), np.uint8(0)]
        frame = wire.encode_frame(wire.KIND_REQUEST, {}, values)
        header = wire.decode_header(frame[:wire.HEADER_SIZE])
        assert header.n_bits == 3

    def test_array_list_still_multi_segment(self, rng):
        segments = [rng.integers(0, 2, 64, dtype=np.uint8)
                    for _ in range(3)]
        frame = wire.encode_frame(wire.KIND_REQUEST, {}, segments)
        header = wire.decode_header(frame[:wire.HEADER_SIZE])
        assert header.n_bits == 192
        rest = frame[wire.HEADER_SIZE:]
        _, bits = wire.decode_frame(header, rest[:header.meta_len],
                                    rest[header.meta_len:])
        assert isinstance(bits, list) and len(bits) == 3


# ----------------------------------------------------------------------
# server level: the connection must survive
# ----------------------------------------------------------------------
class TestMalformedFrameMatrix:
    def _send_raw(self, client, meta, payload, n_bits):
        client.sock.sendall(_raw_frame(meta, payload, n_bits))
        response, _ = client.read_frame()
        return response

    @pytest.mark.parametrize("meta,payload,n_bits", [
        ({"op": "bits", "segment_bits": ["oops"]}, b"\x00" * 8, 64),
        ({"op": "bits", "segment_bits": [-64]}, b"\x00" * 8, 64),
        ({"op": "bits", "segment_bits": "64"}, b"\x00" * 8, 64),
        ({"op": "bits", "segment_bits": [True]}, b"\x00" * 8, 64),
        ({"op": "bits", "segment_bits": [32, 16]}, b"\x00" * 16, 64),
        ({"op": "bits"}, b"\x00" * 8, 128),  # tampered n_bits
    ])
    def test_bad_frame_reports_protocol_and_survives(
            self, server, meta, payload, n_bits):
        client = _BinaryClient(server.server_address[1])
        try:
            response = self._send_raw(client, meta, payload, n_bits)
            assert not response["ok"]
            assert response["code"] == "protocol"
            # The frame was consumed in full: the connection survives.
            follow_up = client.call({"op": "query", "expr": "a & b"})
            assert follow_up["ok"]
        finally:
            client.close()

    def test_header_corruption_still_closes(self, server):
        client = _BinaryClient(server.server_address[1])
        try:
            client.sock.sendall(b"Y" * wire.HEADER_SIZE)
            response, _ = client.read_frame()
            assert response["code"] == "protocol"
            assert client.stream.read(1) == b""  # framing lost: close
        finally:
            client.close()

    @pytest.mark.parametrize("request_", [
        {"op": "bits", "name": "a", "offset": -5},
        {"op": "bits", "name": "a", "offset": 0, "limit": -1},
        {"op": "bits", "name": "a", "offset": -1, "limit": -1},
    ])
    def test_negative_readout_is_query_error_both_wires(
            self, server, request_):
        port = server.server_address[1]
        for client in (_JsonClient(port), _BinaryClient(port)):
            try:
                response = client.call(dict(request_))
                assert not response["ok"]
                assert response["code"] == "query"
                assert "non-negative" in response["error"]
                follow_up = client.call({"op": "query",
                                         "expr": "a | b"})
                assert follow_up["ok"]
            finally:
                client.close()

    def test_unknown_column_is_query_error(self, server):
        client = _JsonClient(server.server_address[1])
        try:
            response = client.call({"op": "query", "expr": "nope"})
            assert not response["ok"]
            assert response["code"] == "query"
        finally:
            client.close()
