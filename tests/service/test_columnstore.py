"""Columnar packed-word store: geometry, packing, reductions, pooling."""

import numpy as np
import pytest

from repro.errors import QueryError
from repro.service.columnstore import (
    ColumnStore,
    MatrixPool,
    popcount_words,
    shard_spans,
)


class TestSpans:
    def test_cover_table_word_aligned(self):
        spans = shard_spans(10_000, 3)
        assert spans[0][0] == 0 and spans[-1][1] == 10_000
        for (_, stop), (start, _) in zip(spans, spans[1:]):
            assert stop == start
            assert stop % 64 == 0

    def test_narrow_table_clamps_shards(self):
        assert len(shard_spans(100, 8)) == 2  # two 64-bit words

    def test_single_word(self):
        assert shard_spans(5, 4) == [(0, 5)]


class TestPacking:
    @pytest.mark.parametrize("n_bits,n_shards", [
        (10_000, 3),    # non-multiple of 64, uneven shards
        (1 << 16, 4),   # uniform full-word layout
        (64, 1),
        (130, 4),
    ])
    def test_roundtrip(self, rng, n_bits, n_shards):
        store = ColumnStore(n_bits, n_shards)
        bits = rng.integers(0, 2, n_bits, dtype=np.uint8)
        store.add("x", bits)
        assert np.array_equal(store.bits("x"), bits)

    def test_padding_is_zero(self, rng):
        store = ColumnStore(10_000, 3)
        store.add("x", np.ones(10_000, dtype=np.uint8))
        matrix = store.matrix("x")
        # Bits beyond each shard's span must be zero in the packed form.
        total = int(popcount_words(matrix).sum())
        assert total == 10_000

    def test_popcounts_masked(self, rng):
        store = ColumnStore(10_000, 3)
        bits = rng.integers(0, 2, 10_000, dtype=np.uint8)
        store.add("x", bits)
        # All-ones matrix: the mask must exclude padding positions.
        ones = np.full(store.shape, np.uint64(0xFFFFFFFFFFFFFFFF))
        assert int(store.popcounts(ones).sum()) == 10_000
        counts = store.popcounts(store.matrix("x"))
        assert counts.shape == (store.n_shards,)
        assert int(counts.sum()) == int(bits.sum())
        # Per-shard counts match per-span slices.
        for index, (start, stop) in enumerate(store.spans):
            assert counts[index] == int(bits[start:stop].sum())

    def test_unpack_all_ones_matrix(self):
        """Garbage beyond n_bits never leaks into readouts."""
        store = ColumnStore(130, 2)
        ones = np.full(store.shape, np.uint64(0xFFFFFFFFFFFFFFFF))
        assert store.unpack(ones).size == 130

    def test_duplicate_and_missing(self, rng):
        store = ColumnStore(64, 1)
        store.add("x", np.zeros(64, dtype=np.uint8))
        with pytest.raises(QueryError, match="exists"):
            store.add("x", np.zeros(64, dtype=np.uint8))
        with pytest.raises(QueryError, match="no column"):
            store.matrix("y")
        store.drop("x")
        with pytest.raises(QueryError, match="no column"):
            store.drop("x")

    def test_width_validation(self):
        store = ColumnStore(64, 1)
        with pytest.raises(QueryError, match="bits"):
            store.add("x", np.zeros(12, dtype=np.uint8))

    def test_snapshot_is_stable_across_drop(self, rng):
        store = ColumnStore(256, 2)
        bits = rng.integers(0, 2, 256, dtype=np.uint8)
        store.add("x", bits)
        snapshot = store.snapshot()
        store.drop("x")
        store.add("x", 1 - bits)
        # The snapshot still binds the original matrix.
        assert np.array_equal(store.unpack(snapshot["x"]), bits)


class TestMatrixPool:
    def test_reuse(self):
        pool = MatrixPool((2, 4))
        a = pool.take()
        pool.give(a)
        assert pool.take() is a

    def test_cap(self):
        pool = MatrixPool((2, 4), cap=3)
        matrices = [np.empty((2, 4), dtype=np.uint64) for _ in range(8)]
        for matrix in matrices:
            pool.give(matrix)
        assert len(pool) == 3

    def test_foreign_shape_rejected(self):
        pool = MatrixPool((2, 4))
        pool.give(np.empty((3, 4), dtype=np.uint64))
        assert len(pool) == 0
