"""Sharded bulk-bitwise query service tests."""

import io
import json
import socket
import threading

import numpy as np
import pytest

from repro.errors import QueryError
from repro.service import BitwiseService, run_repl, serve_tcp

N_BITS = 10_000  # deliberately not a multiple of 64 * shards


@pytest.fixture
def table(rng):
    return {
        "a": rng.integers(0, 2, N_BITS, dtype=np.uint8),
        "b": rng.integers(0, 2, N_BITS, dtype=np.uint8),
        "c": rng.integers(0, 2, N_BITS, dtype=np.uint8),
    }


@pytest.fixture
def service(table):
    svc = BitwiseService("feram-2tnc", n_bits=N_BITS, n_shards=3)
    for name, bits in table.items():
        svc.create_column(name, bits)
    yield svc
    svc.close()


class TestColumns:
    def test_create_and_read_back(self, service, table):
        for name, bits in table.items():
            assert np.array_equal(service.column_bits(name), bits)

    def test_width_validation(self, service):
        with pytest.raises(QueryError, match="bits"):
            service.create_column("bad", np.zeros(12, dtype=np.uint8))

    def test_duplicate_rejected(self, service, table):
        with pytest.raises(QueryError, match="exists"):
            service.create_column("a", table["a"])

    def test_drop(self, service):
        service.drop_column("c")
        assert "c" not in service.columns
        with pytest.raises(QueryError, match="unbound"):
            service.query("c & a")

    def test_shard_spans_cover_table(self):
        spans = BitwiseService._spans(N_BITS, 3)
        assert spans[0][0] == 0 and spans[-1][1] == N_BITS
        for (_, stop), (start, _) in zip(spans, spans[1:]):
            assert stop == start
            assert stop % 64 == 0

    def test_narrow_table_uses_fewer_shards(self):
        svc = BitwiseService(n_bits=100, n_shards=8)
        try:
            assert svc.n_shards == 2  # two 64-bit words
        finally:
            svc.close()


class TestQueries:
    def test_query_matches_numpy(self, service, table):
        result = service.query("(a & b) | ~c")
        expected = (table["a"] & table["b"]) | (1 - table["c"])
        assert result.count == int(expected.sum())
        assert np.array_equal(result.bits, expected)
        assert result.shards == service.n_shards

    def test_batch_matches_numpy(self, service, table):
        queries = ["a & b", "a ^ c", "maj(a, b, c)", "a & ~b"]
        refs = [table["a"] & table["b"], table["a"] ^ table["c"],
                ((table["a"] + table["b"] + table["c"]) >= 2
                 ).astype(np.uint8),
                table["a"] & (1 - table["b"])]
        for result, ref in zip(service.execute(queries), refs):
            assert np.array_equal(result.bits, ref), result.query

    def test_columns_survive_many_queries(self, service, table):
        for _ in range(3):
            service.execute(["a & ~b", "~a & b", "a ^ b", "~(a | c)"],
                            use_cache=False)
        for name, bits in table.items():
            assert np.array_equal(service.column_bits(name), bits)

    def test_concurrent_clients(self, service, table):
        """Many threads hammering shared columns stay bit-exact."""
        expected = {
            "a & ~b": table["a"] & (1 - table["b"]),
            "b & ~a": table["b"] & (1 - table["a"]),
            "a ^ b": table["a"] ^ table["b"],
            "maj(a, b, c)": ((table["a"] + table["b"] + table["c"])
                             >= 2).astype(np.uint8),
        }
        failures = []

        def client(query, ref):
            for _ in range(5):
                result = service.query(query, use_cache=False)
                if not np.array_equal(result.bits, ref):
                    failures.append(query)

        threads = [threading.Thread(target=client, args=item)
                   for item in expected.items()]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures

    def test_per_query_attribution(self, service):
        result = service.query("a & b", use_cache=False)
        assert result.energy_j > 0
        assert result.cycles > 0
        # One AND per shard row; a 10k-bit table is 1 row per shard.
        assert result.primitives_per_row == 1

    def test_unknown_column(self, service):
        with pytest.raises(QueryError, match="unbound"):
            service.query("nope & a")

    def test_constant_query_spans_table(self, service):
        result = service.query("a | ~a")
        assert result.count == N_BITS
        assert result.bits.size == N_BITS

    def test_counting_mode(self):
        svc = BitwiseService(n_bits=1 << 20, n_shards=2,
                             functional=False)
        try:
            svc.create_column("x")
            svc.create_column("y")
            result = svc.query("x & ~y")
            assert result.bits is None and result.count is None
            assert result.cycles > 0
        finally:
            svc.close()


class TestCache:
    def test_hit_on_repeat(self, service):
        first = service.query("a & b")
        again = service.query("a & b")
        assert not first.cache_hit and again.cache_hit
        assert again.count == first.count

    def test_hit_on_canonical_equivalent(self, service):
        first = service.query("a & b")
        commuted = service.query("b & a")
        demorganed = service.query("~(~a | ~b)")
        assert commuted.cache_hit and demorganed.cache_hit
        assert commuted.count == first.count

    def test_invalidated_on_column_change(self, service, table):
        service.query("a & b")
        service.drop_column("a")
        service.create_column("a", table["a"])
        assert not service.query("a & b").cache_hit

    def test_unrelated_drop_preserves_cache(self, service):
        """Dependency-aware invalidation: dropping c keeps a&b hot."""
        service.query("a & b")
        service.drop_column("c")
        assert service.query("a & b").cache_hit

    def test_lru_eviction(self, table):
        svc = BitwiseService(n_bits=N_BITS, n_shards=2, cache_size=2)
        try:
            for name, bits in table.items():
                svc.create_column(name, bits)
            svc.query("a & b")
            svc.query("a & c")
            svc.query("b & c")   # evicts "a & b"
            assert not svc.query("a & b").cache_hit
            assert svc.query("b & c").cache_hit
        finally:
            svc.close()

    def test_cache_hit_bits_are_private(self, service):
        first = service.query("a & b")
        count = first.count
        first.bits[:] = 0  # caller mutates its result
        again = service.query("a & b")
        assert again.cache_hit
        assert again.count == count
        assert int(again.bits.sum()) == count

    def test_concurrent_duplicate_create_is_serialized(self, service,
                                                       table):
        rows_before = service.stats()["rows_used"]
        errors = []

        def creator():
            try:
                service.create_column("dup", table["a"])
            except QueryError:
                errors.append(1)

        threads = [threading.Thread(target=creator) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(errors) == 3  # exactly one create wins
        assert service.stats()["rows_used"] == \
            rows_before + service.n_shards

    def test_batch_deduplicates(self, service):
        results = service.execute(["a ^ b", "b ^ a"], use_cache=False)
        assert results[0].key == results[1].key
        # ...but each position keeps its own label and private bits.
        assert results[1].query == "b ^ a"
        assert results[0].bits is not results[1].bits
        results[0].bits[:] = 0
        assert int(results[1].bits.sum()) == results[1].count

    def test_stale_result_not_cached_across_mutation(self, service,
                                                     table):
        """A result computed before a column mutation must not land in
        the freshly invalidated cache (per-column generation check)."""
        with service._cache_lock:
            snapshot = (service._epoch,
                        {"a": service._col_generation.get("a", 0),
                         "b": service._col_generation.get("b", 0)})
        stale = service.query("a & b", use_cache=False)
        service.drop_column("b")
        service.create_column("b", 1 - table["b"])
        service._cache_put(stale.key, stale, snapshot, None, ("a", "b"))
        fresh = service.query("a & b")
        assert not fresh.cache_hit
        expected = int((table["a"] & (1 - table["b"])).sum())
        assert fresh.count == expected


class TestFrontends:
    def test_repl_session(self):
        svc = BitwiseService(n_bits=256, n_shards=2)
        out = io.StringIO()
        commands = "\n".join([
            "col x random 0.5 1",
            "col y random 0.5 2",
            "cols",
            "query x & ~y",
            "explain (x & y) | (y & x)",
            "stats",
            "bogus",
            "quit",
        ]) + "\n"
        code = run_repl(svc, io.StringIO(commands), out)
        svc.close()
        text = out.getvalue()
        assert code == 0
        assert '"count"' in text
        assert '"primitives_per_row"' in text
        assert "error:" in text  # the bogus command

    def test_repl_survives_malformed_numbers(self):
        svc = BitwiseService(n_bits=64, n_shards=1)
        out = io.StringIO()
        commands = "col x random abc\ncol y random 0.5 1\nquit\n"
        code = run_repl(svc, io.StringIO(commands), out)
        svc.close()
        assert code == 0
        assert "error:" in out.getvalue()

    def test_tcp_roundtrip(self):
        svc = BitwiseService(n_bits=512, n_shards=2)
        server = serve_tcp(svc, 0)
        port = server.server_address[1]
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        try:
            sock = socket.create_connection(("127.0.0.1", port),
                                            timeout=5)
            stream = sock.makefile("rw")

            def call(request):
                stream.write(json.dumps(request) + "\n")
                stream.flush()
                return json.loads(stream.readline())

            assert call({"op": "create_column", "name": "x",
                         "seed": 1})["ok"]
            assert call({"op": "create_column", "name": "y",
                         "seed": 2})["ok"]
            response = call({"op": "query", "expr": "x ^ y"})
            assert response["ok"] and response["count"] >= 0
            batch = call({"op": "batch", "exprs": ["x & y", "x | y"]})
            assert batch["ok"] and len(batch["results"]) == 2
            error = call({"op": "query", "expr": "zzz"})
            assert not error["ok"] and "unbound" in error["error"]
            sock.close()
        finally:
            server.shutdown()
            server.server_close()
            svc.close()

    def test_cli_query(self, capsys):
        from repro.cli import main
        assert main(["query", "a & ~b", "--bits", "4096",
                     "--shards", "2"]) == 0
        out = capsys.readouterr().out
        assert "compiled" in out and "hits" in out

    def test_cli_usage_mentions_service(self, capsys):
        from repro.cli import main
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "serve" in out and "query" in out
