"""Service program execution: backends pinned via the differential
harness, interleaving with single queries, counting mode, caching."""

import numpy as np
import pytest

from repro.arch.program import Program, parse_program
from repro.errors import QueryError
from repro.service import BitwiseService
from tests.support.differential import (
    assert_program_equivalent,
    numpy_program_eval,
)

N_BITS = 10_000  # not a multiple of 64 * shards

PROGRAMS = {
    "single": Program([("out", "a ^ b")]),
    "chain": Program([("t", "a & b"), ("u", "t | ~c"),
                      ("v", "maj(t, u, d)")], outputs=["u", "v"]),
    "shadowing": Program([("t", "a & b"), ("u", "t | c"), ("t", "~t"),
                          ("v", "t ^ u")], outputs=["u", "v"]),
    "cse_across_statements": Program([
        ("t", "(a & b) | c"), ("u", "(b & a) | d"), ("w", "t ^ u")],
        outputs=["t", "u", "w"]),
    "parity_heavy": Program([
        ("x", "~a & ~b"), ("y", "nor(a, c)"), ("z", "x ^ ~y"),
        ("out", "andnot(z, d)")], outputs=["out"]),
    "constants": Program([("t", "a & ~a"), ("u", "t | 1"),
                          ("v", "u ^ b")], outputs=["t", "v"]),
    "alias_output": Program([("t", "a & b"), ("u", "t")],
                            outputs=["t", "u"]),
}


@pytest.fixture
def table(rng):
    return {name: rng.integers(0, 2, N_BITS, dtype=np.uint8)
            for name in "abcd"}


class TestProgramBackendEquivalence:
    @pytest.mark.parametrize("technology", ["feram-2tnc", "dram"])
    @pytest.mark.parametrize("label", sorted(PROGRAMS))
    def test_programs_bit_and_stats_exact(self, technology, label,
                                          table):
        assert_program_equivalent(PROGRAMS[label], table,
                                  technology=technology)

    @pytest.mark.parametrize("technology", ["feram-2tnc", "dram"])
    def test_equivalent_from_evolved_flag_state(self, technology,
                                                table):
        """Queries before the program leave re-encoded column flags;
        the analytic program coster must start from that state."""
        assert_program_equivalent(
            PROGRAMS["chain"], table, technology=technology,
            warmup_queries=["~a & ~b", "nor(c, d)", "a ^ ~b"])

    def test_counting_mode_stats_match(self, table):
        assert_program_equivalent(PROGRAMS["chain"], table,
                                  functional=False)


class TestRunProgramSemantics:
    def test_outputs_match_numpy(self, table):
        svc = BitwiseService("feram-2tnc", n_bits=N_BITS, n_shards=3)
        try:
            for name, bits in table.items():
                svc.create_column(name, bits)
            program = PROGRAMS["shadowing"]
            result = svc.run_program(program)
            expected = numpy_program_eval(program, table)
            for name, bits in expected.items():
                assert np.array_equal(result.outputs[name], bits)
                assert result.counts[name] == int(bits.sum())
            assert result.backend == "vector"
            assert result.shards == 3
            assert [s.name for s in result.statements] == \
                ["t", "u", "t", "v"]
        finally:
            svc.close()

    def test_interleaved_queries_and_programs(self, table):
        """Program runs and single queries share one cost state
        (column flags + FeRAM control-rewrite counters): an
        interleaved sequence must stay Stats-exact across backends."""
        services = {}
        for backend in ("reference", "vector"):
            svc = BitwiseService("feram-2tnc", n_bits=N_BITS,
                                 n_shards=3, backend=backend)
            for name, bits in table.items():
                svc.create_column(name, bits)
            services[backend] = svc
        try:
            sequence = [
                ("query", "~a & ~b"),
                ("program", PROGRAMS["chain"]),
                ("query", "a ^ ~c"),
                ("program", PROGRAMS["parity_heavy"]),
                ("query", "nor(a, d)"),
            ]
            for kind, payload in sequence:
                if kind == "query":
                    ref = services["reference"].query(
                        payload, use_cache=False)
                    vec = services["vector"].query(
                        payload, use_cache=False)
                    assert np.array_equal(ref.bits, vec.bits)
                    assert ref.cycles == vec.cycles, payload
                else:
                    ref = services["reference"].run_program(payload)
                    vec = services["vector"].run_program(payload)
                    assert ref.cycles == vec.cycles
                    for rs, vs in zip(ref.statements, vec.statements):
                        assert rs.stats.allclose(vs.stats)
            ref_stats = services["reference"].stats()
            vec_stats = services["vector"].stats()
            assert ref_stats["cycles_total"] == vec_stats["cycles_total"]
            assert ref_stats["programs_run"] == \
                vec_stats["programs_run"] == 2
        finally:
            for svc in services.values():
                svc.close()

    def test_program_plan_cache_reused(self, table):
        svc = BitwiseService("feram-2tnc", n_bits=N_BITS, n_shards=2)
        try:
            for name, bits in table.items():
                svc.create_column(name, bits)
            program = PROGRAMS["chain"]
            first = svc.compile_program(program)
            # A structurally identical re-build hits the same plan.
            clone = Program([(n, str(e)) for n, e in program.statements],
                            program.outputs)
            assert svc.compile_program(clone) is first
            svc.run_program(program)
            svc.run_program(clone)
            assert svc.stats()["programs_run"] == 2
        finally:
            svc.close()

    def test_unknown_column_rejected(self, table):
        svc = BitwiseService("feram-2tnc", n_bits=N_BITS, n_shards=2)
        try:
            svc.create_column("a", table["a"])
            with pytest.raises(QueryError, match="unbound"):
                svc.run_program(Program([("t", "a & nope")]))
        finally:
            svc.close()

    def test_wrong_polarity_compiled_program_rejected(self, table):
        from repro.arch.program import compile_program

        svc = BitwiseService("feram-2tnc", n_bits=N_BITS, n_shards=2)
        try:
            for name, bits in table.items():
                svc.create_column(name, bits)
            cprog = compile_program(PROGRAMS["single"], inverting=False)
            with pytest.raises(QueryError, match="polarity"):
                svc.run_program(cprog)
        finally:
            svc.close()

    def test_columns_unchanged_after_program(self, table):
        svc = BitwiseService("feram-2tnc", n_bits=N_BITS, n_shards=3,
                             backend="reference")
        try:
            for name, bits in table.items():
                svc.create_column(name, bits)
            svc.run_program(PROGRAMS["shadowing"])
            for name, bits in table.items():
                assert np.array_equal(svc.column_bits(name), bits)
        finally:
            svc.close()

    def test_parse_program_round_trip(self, table):
        program = parse_program("t = a & b\nout = t ^ c")
        assert_program_equivalent(program, table)
