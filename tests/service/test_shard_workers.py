"""Multi-process shard workers, shared-memory store, read replicas.

The contract under test, end to end:

* the process-pool executor tier is **bit- and Stats-exact** against
  the reference replay and the plain-numpy shadow on both
  technologies, across worker counts, including full mutation/query
  op scripts;
* a worker killed with ``kill -9`` mid-stream is detected, respawned
  and its job replayed with identical results (column segments are
  read-only to workers, so replay is safe);
* shared-memory hygiene: every ``/dev/shm`` segment this stack
  creates (``repb*``) is unlinked by ``close()`` — asserted by an
  autouse fixture around *every* test in this module;
* read replicas serve with bounded staleness, and the mutating
  tenant's generation fence guarantees read-your-writes even while
  the applier is artificially slowed mid-interleaving.
"""

from __future__ import annotations

import glob
import os
import signal
import time
from contextlib import nullcontext

import numpy as np
import pytest

from repro.service import BitwiseService
from repro.service.columnstore import ColumnStore
from repro.service.shard_workers import (
    ReplicaSet,
    ReplicaStore,
    SharedColumnStore,
    WorkerPool,
)
from tests.support.differential import (
    assert_ops_equivalent,
    assert_program_equivalent,
)

N_BITS = 4096

pytestmark = pytest.mark.timeout(120)


def _repb_segments() -> set[str]:
    return {os.path.basename(p)
            for p in glob.glob("/dev/shm/repb*")}


@pytest.fixture(autouse=True)
def no_shm_leaks():
    """Every test must unlink what it links: no new ``/dev/shm/repb*``
    entries may survive the test body."""
    before = _repb_segments()
    yield
    leaked = sorted(_repb_segments() - before)
    assert not leaked, f"leaked shared-memory segments: {leaked}"


def _table(rng, names="abc", n_bits=N_BITS):
    return {name: rng.integers(0, 2, n_bits, dtype=np.uint8)
            for name in names}


def _service(*, workers=1, replicas=0, n_shards=4, n_bits=N_BITS,
             **kwargs):
    svc = BitwiseService("feram-2tnc", n_bits=n_bits,
                         n_shards=n_shards, workers=workers,
                         replicas=replicas,
                         capacity=2 * n_bits, **kwargs)
    svc._parallel_min_work = 0  # engage the pool on tiny tables
    return svc


# ----------------------------------------------------------------------
# SharedColumnStore: storage semantics and replica events
# ----------------------------------------------------------------------
class TestSharedColumnStore:
    def test_matches_base_store_and_emits_events(self, rng):
        base = ColumnStore(N_BITS, 4)
        shared = SharedColumnStore(N_BITS, 4)
        try:
            bits = rng.integers(0, 2, N_BITS, dtype=np.uint8)
            base.add("a", bits)
            event = shared.add("a", bits)
            assert event == ("add", "a", shared.struct_generation)
            assert np.array_equal(shared._matrices["a"],
                                  base._matrices["a"])
            assert shared.generations["a"] == 1

            new = rng.integers(0, 2, N_BITS, dtype=np.uint8)
            base.set("a", new)
            kind, name, gen, dirty, values = shared.set("a", new)
            assert (kind, name, gen) == ("set", "a", 2)
            assert np.array_equal(shared._matrices["a"],
                                  base._matrices["a"])
            # the diff is exactly the changed words
            assert dirty.size <= shared._matrices["a"].size
            assert np.array_equal(
                shared._matrices["a"].reshape(-1)[dirty], values)

            segname = shared.segment_name("a")
            assert segname.startswith("repb")
            drop = shared.drop("a")
            assert drop[:3] == ("drop", "a", shared.struct_generation)
            assert drop[3] == segname
            # unlinked from /dev/shm immediately...
            assert segname not in _repb_segments()
        finally:
            shared.close()

    def test_set_is_in_place_not_rebind(self, rng):
        shared = SharedColumnStore(N_BITS, 4)
        try:
            shared.add("a", rng.integers(0, 2, N_BITS, dtype=np.uint8))
            view = shared._matrices["a"]
            shared.set("a", rng.integers(0, 2, N_BITS, dtype=np.uint8))
            assert shared._matrices["a"] is view
        finally:
            shared.close()

    def test_close_is_idempotent_and_unlinks_everything(self, rng):
        shared = SharedColumnStore(N_BITS, 4)
        shared.add("a", rng.integers(0, 2, N_BITS, dtype=np.uint8))
        mine = {s for s in _repb_segments()
                if s.startswith(shared._prefix)}
        assert mine  # column + mask segments exist while open
        shared.close()
        shared.close()
        assert not {s for s in _repb_segments()
                    if s.startswith(shared._prefix)}


# ----------------------------------------------------------------------
# differential: process pool vs reference replay vs numpy truth
# ----------------------------------------------------------------------
class TestProcessPoolDifferential:
    @pytest.mark.parametrize("technology", ["feram-2tnc", "dram"])
    @pytest.mark.parametrize("workers", [2, 4])
    def test_program_bit_and_stats_exact(self, rng, technology,
                                         workers):
        from repro.arch.program import Program

        table = _table(rng, "abcd")
        program = Program([
            ("t", "a & ~b"),
            ("u", "t ^ (c | d)"),
            ("v", "maj(t, u, a)"),
        ], outputs=("u", "v"))
        assert_program_equivalent(
            program, table, technology=technology, n_shards=4,
            workers=workers, parallel_min_work=0)

    @pytest.mark.parametrize("workers", [None, 2])
    def test_ops_script_exact_across_worker_counts(self, rng, workers):
        table = _table(rng, "ab", 1024)
        ops = [
            ("query", "a & b"),
            ("update", "a", rng.integers(0, 2, 1024, dtype=np.uint8)),
            ("query", "a ^ b"),
            ("create", "c", rng.integers(0, 2, 1024, dtype=np.uint8)),
            ("query", "maj(a, b, c)"),
            ("write", "b", 100, rng.integers(0, 2, 300,
                                             dtype=np.uint8)),
            ("query", "a | ~b"),
            ("drop", "c"),
            ("query", "a & b"),
        ]
        assert_ops_equivalent(
            table, ops, n_shards=4, workers=workers,
            parallel_min_work=0 if workers else None)

    def test_ops_script_exact_with_replicas(self, rng):
        table = _table(rng, "ab", 1024)
        ops = [
            ("query", "a & b"),
            ("update", "a", rng.integers(0, 2, 1024, dtype=np.uint8)),
            ("query", "a & b"),
            ("query", "a ^ b"),
            ("append", {"a": np.ones(64, dtype=np.uint8)}),
            ("query", "a | b"),
        ]
        assert_ops_equivalent(table, ops, n_shards=4, replicas=1,
                              parallel_min_work=0,
                              capacity=1024 + 64)


# ----------------------------------------------------------------------
# worker crash recovery
# ----------------------------------------------------------------------
class TestWorkerCrash:
    def test_kill9_respawns_and_replays_bit_exact(self, rng):
        svc = _service(workers=2)
        try:
            for name, bits in _table(rng).items():
                svc.create_column(name, bits)
            first = svc.query("a & (b | ~c)", use_cache=False)
            pool = svc._worker_pool
            assert pool is not None and pool.stats()["started"]

            victim = pool._workers[0].process
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=10.0)
            assert not victim.is_alive()

            second = svc.query("a & (b | ~c)", use_cache=False)
            assert second.count == first.count
            assert np.array_equal(second.bits, first.bits)
            assert pool.stats()["respawns"] == 1
            # the replacement is a different process, fully re-shipped
            assert pool._workers[0].process.pid != victim.pid
        finally:
            svc.close()

    def test_pool_survives_repeated_kills(self, rng):
        svc = _service(workers=2)
        try:
            bits = _table(rng)
            for name, values in bits.items():
                svc.create_column(name, values)
            truth = int(np.sum(bits["a"] & bits["b"]))
            for round_no in range(3):
                result = svc.query("a & b", use_cache=False)
                assert result.count == truth, f"round {round_no}"
                victim = svc._worker_pool._workers[
                    round_no % 2].process
                os.kill(victim.pid, signal.SIGKILL)
                victim.join(timeout=10.0)
            assert svc.query("a & b", use_cache=False).count == truth
            assert svc._worker_pool.stats()["respawns"] == 3
        finally:
            svc.close()


# ----------------------------------------------------------------------
# segment hygiene across the full service stack
# ----------------------------------------------------------------------
class TestSegmentHygiene:
    def test_service_close_unlinks_all_segments(self, rng):
        before = _repb_segments()
        svc = _service(workers=2, replicas=1)
        for name, bits in _table(rng).items():
            svc.create_column(name, bits)
        svc.query("a ^ b", use_cache=False)  # spin up the pool
        assert svc._replica_set.wait_caught_up()
        during = _repb_segments() - before
        assert during, "expected live store/replica/out segments"
        svc.close()
        assert not (_repb_segments() - before)

    def test_drop_forgets_segment_in_workers(self, rng):
        svc = _service(workers=2)
        try:
            for name, bits in _table(rng).items():
                svc.create_column(name, bits)
            svc.query("a & c", use_cache=False)
            segname = svc._store.segment_name("c") \
                if hasattr(svc._store, "segment_name") else None
            svc.drop_column("c")
            assert segname not in _repb_segments()
            # remaining columns still fully queryable after the drop
            result = svc.query("a & b", use_cache=False)
            assert result.count >= 0
        finally:
            svc.close()


# ----------------------------------------------------------------------
# read replicas: staleness contract and read-your-writes
# ----------------------------------------------------------------------
class TestReplicas:
    def test_replica_serves_reads_and_converges(self, rng):
        svc = _service(replicas=2)
        try:
            table = _table(rng, "ab")
            for name, bits in table.items():
                svc.create_column(name, bits)
            assert svc._replica_set.wait_caught_up()
            truth = int(np.sum(table["a"] & table["b"]))
            for _ in range(4):
                assert svc.query("a & b",
                                 use_cache=False).count == truth
            assert svc.replica_reads >= 1
            stats = svc._replica_set.stats()
            assert stats["lag"] == 0
            assert sum(stats["reads"]) >= 1
            # replica state is word-for-word the primary's
            for replica in svc._replica_set.replicas:
                for physical, matrix in svc._store._matrices.items():
                    assert np.array_equal(
                        replica.matrices[physical], matrix)
                assert replica.applied_gen == svc._store.generations
        finally:
            svc.close()

    def test_read_your_writes_while_applier_lags(self, rng):
        """The mutating tenant must never read stale bits, even with
        the applier artificially slowed so every query races an
        unapplied mutation (the generation fence routes to primary)."""
        svc = _service(replicas=1)
        try:
            svc.create_column("a", rng.integers(0, 2, N_BITS,
                                                dtype=np.uint8))
            assert svc._replica_set.wait_caught_up()
            replica = svc._replica_set.replicas[0]
            original_apply = replica.apply

            def slow_apply(event):
                time.sleep(0.02)
                original_apply(event)

            replica.apply = slow_apply
            try:
                for _ in range(8):
                    bits = rng.integers(0, 2, N_BITS, dtype=np.uint8)
                    svc.update_column("a", bits)
                    result = svc.query("a", use_cache=False)
                    assert result.count == int(bits.sum())
                    assert np.array_equal(result.bits, bits)
            finally:
                replica.apply = original_apply
            assert svc._replica_set.wait_caught_up()
            assert np.array_equal(
                replica.matrices[next(iter(replica.matrices))],
                svc._store._matrices[next(iter(
                    svc._store._matrices))])
        finally:
            svc.close()

    def test_stale_replica_read_is_never_cached(self, rng):
        """A query served by a lagging replica must not poison the
        result cache: once the tenant's fence admits a stale replica
        read is impossible, the only cacheable results are fresh."""
        svc = _service(replicas=1)
        try:
            bits = rng.integers(0, 2, N_BITS, dtype=np.uint8)
            svc.create_column("a", bits)
            assert svc._replica_set.wait_caught_up()
            new = 1 - bits
            svc.update_column("a", new)
            # cache warm-up attempt while the applier may still lag
            warm = svc.query("a", use_cache=True)
            assert warm.count == int(new.sum())
            assert svc._replica_set.wait_caught_up()
            cached = svc.query("a", use_cache=True)
            assert cached.count == int(new.sum())
            assert np.array_equal(cached.bits, new)
        finally:
            svc.close()

    def test_replica_set_applies_structural_events(self, rng):
        svc = _service(replicas=1)
        try:
            svc.create_column("a", rng.integers(0, 2, N_BITS,
                                                dtype=np.uint8))
            svc.create_column("b", rng.integers(0, 2, N_BITS,
                                                dtype=np.uint8))
            svc.drop_column("b")
            svc.append_rows({"a": np.ones(64, dtype=np.uint8)})
            assert svc._replica_set.wait_caught_up()
            replica = svc._replica_set.replicas[0]
            assert replica.applied_struct == \
                svc._store.struct_generation
            assert replica.applied_mask_gen == \
                svc._store.mask_generation
            assert replica.n_bits == svc._store.n_bits
            assert set(replica.matrices) == set(svc._store._matrices)
        finally:
            svc.close()

    def test_drop_prunes_fences_so_recreation_serves_replicas(
            self, rng):
        """A recreated physical restarts its generation at 1; a stale
        fence left by the dropped incarnation must not refuse every
        replica for that tenant forever."""
        svc = _service(replicas=1)
        try:
            bits = rng.integers(0, 2, N_BITS, dtype=np.uint8)
            svc.create_column("a", bits)
            svc.update_column("a", 1 - bits)
            physical = svc.tenant_state(None).resolve("a")
            assert svc._fences[None][physical] >= 2
            svc.drop_column("a")
            assert all(physical not in fence
                       for fence in svc._fences.values())

            new = rng.integers(0, 2, N_BITS, dtype=np.uint8)
            svc.create_column("a", new)
            assert svc._replica_set.wait_caught_up()
            before = svc.replica_reads
            for _ in range(3):
                result = svc.query("a", use_cache=False)
                assert result.count == int(new.sum())
            assert svc.replica_reads > before
        finally:
            svc.close()

    def test_drop_forgets_replica_segment_in_workers(self, rng):
        """``drop`` must forget the replica's own segment name too —
        workers that attached it during replica-routed scatter would
        otherwise hold the unlinked pages until respawn."""
        primary = SharedColumnStore(1024, 4)
        forgotten: list[str] = []
        try:
            primary.add("a", rng.integers(0, 2, 1024, dtype=np.uint8))
            replica_set = ReplicaSet(primary, 1,
                                     read_lock=nullcontext,
                                     forget=forgotten.append)
            try:
                replica = replica_set.replicas[0]
                replica_seg = replica.segments["a"].name
                event = primary.drop("a")
                replica_set.publish(event)
                assert replica_set.wait_caught_up()
                assert event[3] in forgotten   # primary segment
                assert replica_seg in forgotten  # replica segment
            finally:
                replica_set.close()
        finally:
            primary.close()

    def test_direct_replica_fencing_predicate(self, rng):
        primary = SharedColumnStore(N_BITS, 4)
        try:
            primary.add("a", rng.integers(0, 2, N_BITS,
                                          dtype=np.uint8))
            replica = ReplicaStore(primary, 0,
                                   read_lock=nullcontext)
            try:
                struct = primary.struct_generation
                mask_gen = primary.mask_generation
                assert replica.can_serve(["a"], None, struct,
                                         mask_gen)
                event = primary.set(
                    "a", rng.integers(0, 2, N_BITS, dtype=np.uint8))
                fence = {"a": primary.generations["a"]}
                # not yet applied: the fence must refuse the replica
                assert not replica.can_serve(["a"], fence, struct,
                                             mask_gen)
                replica.apply(event)
                assert replica.can_serve(["a"], fence, struct,
                                         mask_gen)
                # structural drift also disqualifies
                assert not replica.can_serve(["a"], fence, struct + 1,
                                             mask_gen)
            finally:
                replica.close()
        finally:
            primary.close()


# ----------------------------------------------------------------------
# worker pool plumbing
# ----------------------------------------------------------------------
class TestWorkerPool:
    def test_blocks_partition_all_rows(self):
        pool = WorkerPool((8, 16), workers=3)
        try:
            assert pool.blocks[0][0] == 0
            assert pool.blocks[-1][1] == 8
            for (_, hi), (lo, _) in zip(pool.blocks, pool.blocks[1:]):
                assert hi == lo
        finally:
            pool.close()

    def test_worker_count_clamped_to_rows(self):
        pool = WorkerPool((2, 16), workers=8)
        try:
            assert pool.n_workers == 2
        finally:
            pool.close()

    def test_plan_specs_ship_once_per_worker(self, rng):
        svc = _service(workers=2)
        try:
            for name, bits in _table(rng).items():
                svc.create_column(name, bits)
            for _ in range(3):
                svc.query("a & b", use_cache=False)
            stats = svc._worker_pool.stats()
            assert stats["jobs"] >= 6
            # one spec per worker, not one per job
            assert stats["plans_shipped"] == 2
        finally:
            svc.close()

    def test_stale_replies_never_attributed_to_next_job(self, rng):
        """A round that raises before draining every worker leaves
        replies in the pipes; the job-id echo must stop the next
        ``execute`` from consuming them as its own results."""
        from repro.arch.expr import compile_expr
        from repro.arch.program import vector_payload

        store = SharedColumnStore(1024, 4)
        pool = WorkerPool(store.shape, workers=2)
        try:
            a = rng.integers(0, 2, 1024, dtype=np.uint8)
            b = rng.integers(0, 2, 1024, dtype=np.uint8)
            store.add("a", a)
            store.add("b", b)
            colspec = {"a": store.segment_name("a"),
                       "b": store.segment_name("b")}
            key_and, spec_and = vector_payload(compile_expr("a & b"))
            key_or, spec_or = vector_payload(compile_expr("a | b"))
            truth_and = int(np.sum(a & b))
            assert truth_and != int(np.sum(a | b))

            counts, _ = pool.execute(key_and, spec_and, colspec,
                                     None, [None])[None]
            assert int(counts.sum()) == truth_and

            # Simulate the failed round: dispatch a different plan to
            # every worker with a stale job id and never drain the
            # ("ok", stale_id, or_counts) replies.
            outs = [(None, pool._out_segments[0].name)]
            for index, state in enumerate(pool._workers):
                state.conn.send(("exec", {
                    "id": 0, "plan": key_or, "spec": spec_or,
                    "cols": colspec, "mask": None,
                    "rows": pool.blocks[index], "outs": outs,
                    "gens": {}}))

            counts, matrix = pool.execute(key_and, spec_and, colspec,
                                          None, [None])[None]
            assert int(counts.sum()) == truth_and
            assert np.array_equal(
                matrix, store._pack((a & b).astype(np.uint8)))
        finally:
            pool.close()
            store.close()

    def test_plan_eviction_recovers_via_spec_reship(self, rng):
        """A worker that evicts a shipped plan from its bytecode
        cache replies ``need-spec``; the coordinator re-ships and the
        job succeeds — no permanent 'plan never shipped' failure."""
        from repro.arch.expr import compile_expr
        from repro.arch.program import vector_payload

        store = SharedColumnStore(1024, 4)
        pool = WorkerPool(store.shape, workers=2)
        try:
            a = rng.integers(0, 2, 1024, dtype=np.uint8)
            b = rng.integers(0, 2, 1024, dtype=np.uint8)
            store.add("a", a)
            store.add("b", b)
            colspec = {"a": store.segment_name("a"),
                       "b": store.segment_name("b")}
            key_and, spec_and = vector_payload(compile_expr("a & b"))
            _, spec_or = vector_payload(compile_expr("a | b"))
            truth_and = int(np.sum(a & b))

            counts, _ = pool.execute(key_and, spec_and, colspec,
                                     None, [None])[None]
            assert int(counts.sum()) == truth_and

            # Push 256 more distinct plan ids through every worker so
            # the 256-entry worker cache evicts ``key_and``.
            for i in range(256):
                pool.execute(f"filler-{i}", spec_or, colspec, None,
                             [None])

            shipped_before = pool.plans_shipped
            counts, _ = pool.execute(key_and, spec_and, colspec,
                                     None, [None])[None]
            assert int(counts.sum()) == truth_and
            # recovered by re-shipping the spec, not by respawning
            assert pool.plans_shipped > shipped_before
            assert pool.respawns == 0
        finally:
            pool.close()
            store.close()
