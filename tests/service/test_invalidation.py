"""Dependency-aware result-cache invalidation."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.arch.expr import CompiledQuery
from repro.service import BitwiseService

N_BITS = 6 * 64 * 2


@pytest.fixture
def table(rng):
    return {name: (rng.random(N_BITS) < 0.5).astype(np.uint8)
            for name in ("a", "b", "c")}


@pytest.fixture(params=["vector", "reference"])
def service(request, table):
    svc = BitwiseService(n_bits=N_BITS, n_shards=2,
                         backend=request.param)
    for name, bits in table.items():
        svc.create_column(name, bits)
    yield svc
    svc.close()


class TestCreateDoesNotInvalidate:
    def test_create_preserves_cache(self, service, table):
        """Regression: creating a column cannot affect any cached plan
        (none can reference a not-yet-existing column)."""
        service.query("a & b")
        service.create_column("d", table["a"])
        assert service.query("a & b").cache_hit

    def test_recreate_after_drop_still_invalidates(self, service,
                                                   table):
        service.query("a & b")
        service.drop_column("a")
        service.create_column("a", 1 - table["a"])
        fresh = service.query("a & b")
        assert not fresh.cache_hit
        expected = int(((1 - table["a"]) & table["b"]).sum())
        assert fresh.count == expected


class TestDependencyEviction:
    def test_mutation_evicts_only_readers(self, service, table):
        """The acceptance contract: mutating `a` preserves cache hits
        for plans reading only b/c, while every a-reading plan
        re-executes bit-exactly."""
        service.query("a & b")
        service.query("b & c")
        service.query("b | ~c")
        new_a = 1 - table["a"]
        service.update_column("a", new_a)
        # Unrelated plans: still hot.
        assert service.query("b & c").cache_hit
        assert service.query("b | ~c").cache_hit
        # a-readers: recomputed against the new value, bit-exactly.
        fresh = service.query("a & b")
        assert not fresh.cache_hit
        expected = new_a & table["b"]
        assert np.array_equal(fresh.bits, expected)
        assert fresh.count == int(expected.sum())

    def test_write_slice_evicts_readers(self, service, table):
        service.query("a ^ c")
        service.query("b & c")
        service.write_slice("a", 0, 1 - table["a"][:64])
        assert not service.query("a ^ c").cache_hit
        assert service.query("b & c").cache_hit

    def test_drop_evicts_only_dependents(self, service):
        service.query("a & b")
        service.query("b & c")
        service.drop_column("a")
        assert service.query("b & c").cache_hit

    def test_append_evicts_everything(self, table):
        svc = BitwiseService(n_bits=N_BITS, n_shards=2,
                             capacity=N_BITS + 64)
        try:
            for name, bits in table.items():
                svc.create_column(name, bits)
            svc.query("a & b")
            svc.query("b & c")
            svc.append_rows(n=None, values={
                "a": np.ones(64, dtype=np.uint8)})
            # Every width changed: nothing survives.
            assert not svc.query("a & b").cache_hit
            assert not svc.query("b & c").cache_hit
        finally:
            svc.close()

    def test_eviction_count_reported(self, service):
        service.query("a & b")
        service.query("a | c")
        service.query("b & c")
        result = service.update_column(
            "a", service.column_bits("a") ^ 1)
        assert result.invalidated == 2


class TestIndexHygiene:
    def test_lru_eviction_cleans_dep_index(self, table):
        svc = BitwiseService(n_bits=N_BITS, n_shards=2, cache_size=2)
        try:
            for name, bits in table.items():
                svc.create_column(name, bits)
            svc.query("a & b")
            svc.query("a & c")
            svc.query("b & c")  # evicts "a & b"
            with svc._cache_lock:
                indexed = set().union(*svc._dep_index.values())
                assert indexed == set(svc._cache)
                for keys in svc._dep_index.values():
                    assert keys  # no empty buckets linger
        finally:
            svc.close()

    def test_mutation_after_eviction_is_safe(self, table):
        svc = BitwiseService(n_bits=N_BITS, n_shards=2, cache_size=1)
        try:
            for name, bits in table.items():
                svc.create_column(name, bits)
            svc.query("a & b")
            svc.query("b & c")  # LRU-evicts the a-reader
            result = svc.update_column("a", 1 - table["a"])
            assert result.invalidated == 0
            assert svc.query("b & c").cache_hit
        finally:
            svc.close()


class TestInFlightMutationRace:
    def test_update_during_execute_not_cached(self, table,
                                              monkeypatch):
        """Deterministic interleaving: update_column lands while a
        query is mid-execution.  The in-flight result (computed from
        the pre-mutation snapshot) must not poison the cache."""
        svc = BitwiseService("feram-2tnc", n_bits=N_BITS, n_shards=2,
                             backend="vector")
        try:
            for name, bits in table.items():
                svc.create_column(name, bits)
            entered = threading.Event()
            resume = threading.Event()
            original = CompiledQuery.vector_program

            def gated(plan, **kwargs):
                program = original(plan, **kwargs)
                entered.set()
                assert resume.wait(timeout=10)
                return program

            monkeypatch.setattr(CompiledQuery, "vector_program", gated)
            stale_result = {}

            def client():
                stale_result["r"] = svc.query("a & b")

            thread = threading.Thread(target=client)
            thread.start()
            assert entered.wait(timeout=10)
            monkeypatch.setattr(CompiledQuery, "vector_program",
                                original)
            new_a = 1 - table["a"]
            svc.update_column("a", new_a)
            resume.set()
            thread.join(timeout=10)
            assert not thread.is_alive()
            # The in-flight query served the pre-mutation snapshot...
            assert np.array_equal(stale_result["r"].bits,
                                  table["a"] & table["b"])
            # ...but was not cached: the next query sees the update.
            fresh = svc.query("a & b")
            assert not fresh.cache_hit
            assert np.array_equal(fresh.bits, new_a & table["b"])
        finally:
            svc.close()
