"""CAM search layer: service match, columnstore kernel, wire forms,
and the three workload scenarios — all differential-tested bit-exactly
against plain-numpy oracles on both backends and both technologies.
"""

import threading

import numpy as np
import pytest

from repro.client import ServiceClient, ServiceError
from repro.errors import QueryError
from repro.service import BitwiseService, serve_tcp
from repro.service.columnstore import ColumnStore
from repro.workloads import (
    classify_packets,
    hamming_topk,
    key_value_lookup,
    load_records,
    oracle_classify,
    oracle_lookup,
    oracle_match,
    oracle_topk,
)
from tests.support.differential import assert_ops_equivalent

TECHS = ("dram", "feram-2tnc")

N_BITS = 4096

pytestmark = pytest.mark.timeout(120)


def _records(rng, n_rows, width):
    return rng.integers(0, 2, (n_rows, width), dtype=np.uint8)


def _make_service(tech, backend, n_bits=N_BITS, **kwargs):
    return BitwiseService(tech, n_bits=n_bits, n_shards=2,
                          backend=backend, **kwargs)


# ----------------------------------------------------------------------
# service.match vs oracle
# ----------------------------------------------------------------------
@pytest.mark.parametrize("tech", TECHS)
@pytest.mark.parametrize("backend", ("reference", "vector"))
class TestServiceMatch:
    @pytest.mark.parametrize("key,mask", [
        ("0b10110", None),
        ("0b1x11x", None),
        ("0b11111", "0b10101"),
        ("0bxxxxx", None),
    ])
    def test_bits_match_oracle(self, tech, backend, rng, key, mask):
        records = _records(rng, N_BITS, 5)
        service = _make_service(tech, backend)
        try:
            cols = load_records(service, records)
            result = service.match(cols, key, mask)
            truth = oracle_match(records, key, mask)
            assert np.array_equal(result.bits, truth)
            assert result.count == int(truth.sum())
        finally:
            service.close()

    def test_query_string_form(self, tech, backend, rng):
        records = _records(rng, N_BITS, 3)
        service = _make_service(tech, backend)
        try:
            cols = load_records(service, records)
            via_query = service.query(
                f"match({', '.join(cols)}, 0b1x0)")
            truth = oracle_match(records, "0b1x0")
            assert np.array_equal(via_query.bits, truth)
        finally:
            service.close()

    def test_match_shares_cache_with_desugared_query(
            self, tech, backend, rng):
        records = _records(rng, N_BITS, 3)
        service = _make_service(tech, backend)
        try:
            cols = load_records(service, records)
            first = service.query(f"{cols[0]} & ~{cols[2]}")
            hit = service.match(cols, "0b1x0")
            assert not first.cache_hit
            assert hit.cache_hit
            assert hit.key == first.key
        finally:
            service.close()

    def test_search_charges_read_path_energy(self, tech, backend, rng):
        records = _records(rng, N_BITS, 4)
        service = _make_service(tech, backend)
        try:
            cols = load_records(service, records)
            result = service.match(cols, "0b1011", use_cache=False)
            assert result.energy_j > 0
            assert result.cycles > 0
        finally:
            service.close()


# ----------------------------------------------------------------------
# vector vs reference vs shadow, Stats pinned per query
# ----------------------------------------------------------------------
@pytest.mark.parametrize("tech", TECHS)
def test_match_differential_with_mutations(tech, rng):
    table = {name: rng.integers(0, 2, 1024, dtype=np.uint8)
             for name in "abcd"}
    fresh = rng.integers(0, 2, 1024, dtype=np.uint8)
    ops = [
        ("query", "match(a, b, c, 0b101)"),
        ("query", "match(a, b, c, d, 0b1xx0)"),
        ("update", "b", fresh),
        ("query", "match(a, b, c, 0b101)"),   # must see the update
        ("query", "match(b, d, 0b00)"),       # all-negated form
        ("query", "match(a, 0bx)"),           # fully masked
        ("query", "match(a, b, 0b10) | match(c, d, 0b01)"),
    ]
    assert_ops_equivalent(table, ops, technology=tech)


# ----------------------------------------------------------------------
# columnstore kernel
# ----------------------------------------------------------------------
class TestColumnStoreMatch:
    @pytest.mark.parametrize("n_bits,n_shards", [
        (10_000, 3),   # ragged width, uneven shards
        (1 << 12, 2),  # uniform full-word layout
    ])
    @pytest.mark.parametrize("key", ["0b101", "0b1x0", "0b000",
                                     "0bxxx"])
    def test_matches_oracle(self, rng, n_bits, n_shards, key):
        records = _records(rng, n_bits, 3)
        store = ColumnStore(n_bits, n_shards)
        names = ["a", "b", "c"]
        for j, name in enumerate(names):
            store.add(name, records[:, j])
        matrix = store.match(names, key)
        assert np.array_equal(store.unpack(matrix),
                              oracle_match(records, key))

    def test_out_buffer_reused(self, rng):
        records = _records(rng, 4096, 2)
        store = ColumnStore(4096, 2)
        store.add("a", records[:, 0])
        store.add("b", records[:, 1])
        out = np.zeros(store.shape, dtype=np.uint64)
        result = store.match(["a", "b"], "0b10", out=out)
        assert result is out
        assert np.array_equal(store.unpack(out),
                              oracle_match(records, "0b10"))

    def test_explicit_mask(self, rng):
        records = _records(rng, 4096, 3)
        store = ColumnStore(4096, 2)
        for j, name in enumerate("abc"):
            store.add(name, records[:, j])
        got = store.unpack(store.match("abc", "0b111", "0b010"))
        assert np.array_equal(got,
                              oracle_match(records, "0b111", "0b010"))


# ----------------------------------------------------------------------
# scenarios
# ----------------------------------------------------------------------
@pytest.mark.parametrize("tech", TECHS)
@pytest.mark.parametrize("backend", ("reference", "vector"))
class TestScenarios:
    def test_key_value_lookup(self, tech, backend, rng):
        n, key_w, value_w = 512, 6, 8
        keys = _records(rng, n, key_w)
        values = _records(rng, n, value_w)
        service = _make_service(tech, backend, n_bits=n)
        try:
            key_cols = load_records(service, keys, prefix="k")
            value_cols = load_records(service, values, prefix="v")
            probe = keys[rng.integers(0, n)]   # guaranteed hit
            rows, got, result = key_value_lookup(
                service, key_cols, value_cols, probe)
            want_rows, want_values = oracle_lookup(keys, values, probe)
            assert np.array_equal(rows, want_rows)
            assert np.array_equal(got, want_values)
            assert result.count == rows.size >= 1
        finally:
            service.close()

    def test_packet_classification(self, tech, backend, rng):
        n, width = 1024, 8
        packets = _records(rng, n, width)
        rules = [
            ("0b1xxxxxxx", None),                  # broad prefix rule
            ("0b01xxxxxx", None),
            ("0b11111111", "0b11110000"),          # masked exact
            (tuple(int(b) for b in packets[0]), None),  # specific row
        ]
        service = _make_service(tech, backend, n_bits=n)
        try:
            cols = load_records(service, packets, prefix="p")
            assigned, results = classify_packets(service, cols, rules)
            assert np.array_equal(assigned,
                                  oracle_classify(packets, rules))
            assert len(results) == len(rules)
            # First-match-wins: row 0 matches rule 0 (its bit 0 is
            # whatever it is) or a later rule — never unassigned.
            assert assigned[0] >= 0
        finally:
            service.close()

    def test_hamming_topk(self, tech, backend, rng):
        n, width, k = 256, 6, 5
        records = _records(rng, n, width)
        probe = rng.integers(0, 2, width, dtype=np.uint8)
        service = _make_service(tech, backend, n_bits=n)
        try:
            cols = load_records(service, records, prefix="h")
            got = hamming_topk(service, cols, tuple(probe), k)
            rows, distances, radius = oracle_topk(
                records, tuple(probe), k)
            assert np.array_equal(got.rows, rows)
            assert np.array_equal(got.distances, distances)
            assert got.radius == radius
            assert got.rows.size >= k
            assert got.energy_j > 0
            assert got.searches >= 1
        finally:
            service.close()

    def test_hamming_topk_requires_full_key(self, tech, backend, rng):
        service = _make_service(tech, backend, n_bits=64)
        try:
            cols = load_records(service, _records(rng, 64, 3))
            with pytest.raises(QueryError, match="fully-specified"):
                hamming_topk(service, cols, "0b1x0", 1)
        finally:
            service.close()


# ----------------------------------------------------------------------
# both wires
# ----------------------------------------------------------------------
class TestWireMatch:
    @pytest.fixture
    def served(self, rng):
        records = _records(rng, 512, 4)
        service = BitwiseService(n_bits=512, n_shards=2)
        cols = load_records(service, records)
        server = serve_tcp(service, 0, batch_window_s=0.002)
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        port = server.server_address[1]
        yield records, cols, port
        server.shutdown()
        server.server_close()
        service.close()

    @pytest.mark.parametrize("wire", ("json", "binary"))
    @pytest.mark.parametrize("key,mask", [
        ("0b1x01", None),
        ("0b1101", "0b1010"),
        ([1, None, 0, 1], None),
    ])
    def test_match_round_trip(self, served, wire, key, mask):
        records, cols, port = served
        truth = oracle_match(records, key, mask)
        with ServiceClient("127.0.0.1", port, wire=wire) as client:
            response = client.match(cols, key, mask)
        assert response["count"] == int(truth.sum())
        assert response["query"].startswith("match(")

    @pytest.mark.parametrize("wire", ("json", "binary"))
    def test_wires_agree_on_key(self, served, wire):
        _, cols, port = served
        with ServiceClient("127.0.0.1", port, wire=wire) as client:
            via_match = client.match(cols, "0b1x01")
            via_query = client.query(
                f"match({', '.join(cols)}, 0b1x01)")
        assert via_match["key"] == via_query["key"]
        assert via_match["count"] == via_query["count"]

    @pytest.mark.parametrize("wire", ("json", "binary"))
    def test_server_rejects_bad_key_as_query_error(self, served, wire):
        # Bypass the client-side normalization so the SERVER's
        # validation answers — a typed {"code": "query"} error, and
        # the connection keeps serving.
        _, cols, port = served
        with ServiceClient("127.0.0.1", port, wire=wire) as client:
            with pytest.raises(ServiceError) as info:
                client.call({"op": "match", "cols": cols,
                             "key": "0b12zz"})
            assert info.value.code == "query"
            assert client.query("f0 | f1")["count"] >= 0  # survives

    def test_client_rejects_bad_key_locally(self, served):
        _, cols, port = served
        with ServiceClient("127.0.0.1", port) as client:
            with pytest.raises(QueryError):
                client.match(cols, "0b12zz")
