"""Column mutation API: semantics, dirty-row accounting, and the
writeback.py disturb-scrub economics reconciliation."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.arch.primitives import default_spec
from repro.arch.writeback import policy_for_spec
from repro.errors import QueryError
from repro.service import BitwiseService
from tests.support.differential import assert_ops_equivalent

N_BITS = 4 * 64 * 3  # 3 words per shard on 4 shards


@pytest.fixture(params=["vector", "reference"])
def backend(request):
    return request.param


@pytest.fixture
def table(rng):
    return {name: (rng.random(N_BITS) < 0.4).astype(np.uint8)
            for name in ("a", "b", "c")}


def make_service(backend, table, **kwargs):
    service = BitwiseService(n_bits=N_BITS, n_shards=4,
                             backend=backend, **kwargs)
    for name, bits in table.items():
        service.create_column(name, bits)
    return service


class TestUpdateColumn:
    def test_replaces_value(self, backend, table):
        with make_service(backend, table) as svc:
            new = 1 - table["a"]
            result = svc.update_column("a", new)
            assert result.op == "update"
            assert np.array_equal(svc.column_bits("a"), new)
            assert svc.query("a").count == int(new.sum())
            assert result.rows_written > 0
            assert result.energy_j > 0

    def test_identical_write_dirties_nothing(self, backend, table):
        """Dirty tracking diffs content: a no-op rewrite is free."""
        with make_service(backend, table) as svc:
            result = svc.update_column("a", table["a"])
            assert result.rows_written == 0
            assert result.dirty_shards == 0
            assert result.energy_j == 0.0

    def test_energy_is_row_writes(self, backend, table):
        """Mutation energy == dirty rows x the spec's TBA-write cost."""
        spec = default_spec("feram-2tnc")
        with make_service(backend, table) as svc:
            result = svc.update_column("a", 1 - table["a"])
            assert math.isclose(
                result.energy_j,
                result.rows_written * spec.e_row_write, rel_tol=1e-12)
            assert svc.stats()["writeback"]["rows_written"] == \
                result.rows_written

    def test_wrong_shape_rejected(self, backend, table):
        with make_service(backend, table) as svc:
            with pytest.raises(QueryError, match="outside table"):
                svc.update_column("a", np.ones(N_BITS + 1,
                                               dtype=np.uint8))

    def test_unknown_column(self, backend, table):
        with make_service(backend, table) as svc:
            with pytest.raises(QueryError, match="no column"):
                svc.update_column("zzz", table["a"])


class TestWriteSlice:
    def test_writes_only_the_slice(self, backend, table):
        with make_service(backend, table) as svc:
            patch = np.ones(40, dtype=np.uint8)
            svc.write_slice("b", 100, patch)
            got = svc.column_bits("b")
            expected = table["b"].copy()
            expected[100:140] = 1
            assert np.array_equal(got, expected)

    def test_single_word_write_dirties_one_row(self, backend, table):
        """A one-word patch touches exactly one row on one shard."""
        with make_service(backend, table) as svc:
            patch = 1 - table["c"][:64]
            result = svc.write_slice("c", 0, patch)
            assert result.rows_written == 1
            assert result.dirty_shards == 1

    def test_cross_shard_write_dirties_both(self, backend, table):
        words_per_shard = N_BITS // 4 // 64
        boundary = words_per_shard * 64  # first bit of shard 1
        with make_service(backend, table) as svc:
            patch = 1 - table["a"][boundary - 8:boundary + 8]
            result = svc.write_slice("a", boundary - 8, patch)
            assert result.dirty_shards == 2
            assert result.rows_written == 2

    def test_bounds_checked(self, backend, table):
        with make_service(backend, table) as svc:
            with pytest.raises(QueryError, match="outside table"):
                svc.write_slice("a", N_BITS - 4,
                                np.ones(8, dtype=np.uint8))
            with pytest.raises(QueryError, match="outside table"):
                svc.write_slice("a", -1, np.ones(4, dtype=np.uint8))


class TestAppendRows:
    def test_grows_table_and_zero_fills(self, backend, table):
        with make_service(backend, table, capacity=N_BITS + 256) as svc:
            appended = np.ones(128, dtype=np.uint8)
            result = svc.append_rows({"a": appended})
            assert svc.n_bits == N_BITS + 128
            assert result.offset == N_BITS and result.n_bits == 128
            got_a = svc.column_bits("a")
            assert got_a.size == N_BITS + 128
            assert np.array_equal(got_a[N_BITS:], appended)
            # Unnamed columns zero-fill for free.
            got_b = svc.column_bits("b")
            assert not got_b[N_BITS:].any()
            assert result.columns_written == ("a",)

    def test_queries_span_appended_rows(self, backend, table):
        with make_service(backend, table, capacity=N_BITS + 64) as svc:
            svc.append_rows({"a": np.ones(64, dtype=np.uint8),
                             "b": np.ones(64, dtype=np.uint8)})
            result = svc.query("a & b")
            assert result.bits.size == N_BITS + 64
            expected = int((table["a"] & table["b"]).sum()) + 64
            assert result.count == expected

    def test_capacity_enforced(self, backend, table):
        with make_service(backend, table) as svc:
            with pytest.raises(QueryError, match="capacity"):
                svc.append_rows({"a": np.ones(1, dtype=np.uint8)})

    def test_needs_uniform_sizes(self, backend, table):
        with make_service(backend, table, capacity=N_BITS + 64) as svc:
            with pytest.raises(QueryError, match="sized"):
                svc.append_rows({"a": np.ones(8, dtype=np.uint8),
                                 "b": np.ones(4, dtype=np.uint8)})


class TestCountingMode:
    def test_mutations_charge_span_rows(self, backend):
        svc = BitwiseService(n_bits=1 << 20, n_shards=4,
                             functional=False, backend=backend,
                             capacity=(1 << 20) + 4096)
        try:
            svc.create_column("x")
            result = svc.update_column("x")
            # Without payloads to diff, the whole logical span charges.
            assert result.rows_written == \
                sum(svc._rows_by_shard_span(0, svc.n_bits))
            assert result.dirty_shards == 4
            sliced = svc.write_slice("x", 0, 64)
            assert sliced.rows_written == 1
            appended = svc.append_rows(n=4096)
            assert svc.n_bits == (1 << 20) + 4096
            assert appended.rows_written == 0  # zero-fill is free
        finally:
            svc.close()


class TestDifferentialMutation:
    """Vector and reference backends agree under interleaved updates."""

    def test_update_between_queries(self, table):
        assert_ops_equivalent(table, [
            ("query", "a & b"),
            ("update", "a", 1 - table["a"]),
            ("query", "a & b"),
            ("query", "a ^ c"),
        ])

    def test_mutation_after_parity_evolution(self, table):
        """XOR queries leave complement-encoded columns; a mutation
        re-encodes plain on both backends identically."""
        assert_ops_equivalent(table, [
            ("query", "a ^ b"),
            ("query", "b ^ c"),
            ("update", "b", table["a"]),
            ("query", "a ^ b"),
            ("query", "maj(a, b, c)"),
        ])

    def test_slice_writes_and_drop_create(self, table):
        patch = np.ones(70, dtype=np.uint8)
        assert_ops_equivalent(table, [
            ("write", "a", 5, patch),
            ("query", "a | b"),
            ("drop", "c"),
            ("create", "c", 1 - table["b"]),
            ("query", "(a & b) | ~c"),
            ("write", "c", 64, patch),
            ("query", "(a & b) | ~c"),
        ])

    def test_append_then_query(self, table):
        appended = {"a": np.ones(64, dtype=np.uint8),
                    "b": np.zeros(64, dtype=np.uint8),
                    "c": np.ones(64, dtype=np.uint8)}
        assert_ops_equivalent(table, [
            ("query", "a ^ b"),
            ("append", appended),
            ("query", "a ^ b"),
            ("query", "a & ~c"),
        ], capacity=N_BITS + 64)


class TestScrubEconomics:
    """Read-disturb accrual reconciles with writeback.py policies."""

    def test_qnro_scrub_period(self, table):
        spec = default_spec("feram-2tnc")
        policy = policy_for_spec(spec)
        period = policy.reads_per_writeback
        assert period > 1
        with make_service("vector", table, cache_size=0) as svc:
            for _ in range(period - 1):
                svc.query("a")
            assert svc.stats()["writeback"]["scrubs"] == 0
            svc.query("a")  # crosses the disturb budget
            writeback = svc.stats()["writeback"]
            assert writeback["scrubs"] == svc.n_shards
            assert writeback["scrub_rows"] == \
                sum(svc._shard_rows)
            assert math.isclose(
                writeback["scrub_energy_nj"],
                writeback["scrub_rows"] * spec.e_row_write * 1e9,
                rel_tol=1e-9)

    def test_write_resets_disturb_counter(self, table):
        policy = policy_for_spec(default_spec("feram-2tnc"))
        period = policy.reads_per_writeback
        with make_service("vector", table, cache_size=0) as svc:
            for _ in range(period - 1):
                svc.query("a")
            # A full rewrite restores polarization everywhere...
            svc.update_column("a", 1 - table["a"])
            svc.query("a")  # ...so read #period does not scrub.
            assert svc.stats()["writeback"]["scrubs"] == 0

    def test_dram_restores_every_read(self, table):
        spec = default_spec("dram")
        policy = policy_for_spec(spec)
        assert policy.reads_per_writeback == 1
        svc = BitwiseService("dram", n_bits=N_BITS, n_shards=4,
                             cache_size=0)
        try:
            for name, bits in table.items():
                svc.create_column(name, bits)
            for _ in range(10):
                svc.query("a")
            writeback = svc.stats()["writeback"]
            assert writeback["scrubs"] == 10 * svc.n_shards
            # Destructive sensing: one full restore per read, exactly
            # the per-read write-back energy the policy predicts.
            assert math.isclose(
                writeback["scrub_energy_nj"] * 1e-9,
                10 * sum(svc._shard_rows) * spec.e_row_write
                * policy.write_cycles_per_read,
                rel_tol=1e-9)
        finally:
            svc.close()

    def test_cache_hits_accrue_no_disturb(self, table):
        """Served-from-cache queries never touch the array — the
        system-level QNRO payoff."""
        with make_service("vector", table) as svc:
            svc.query("a & b")
            before = svc.stats()["writeback"]["reads_noted"]
            for _ in range(50):
                assert svc.query("a & b").cache_hit
            assert svc.stats()["writeback"]["reads_noted"] == before
