"""Tenant namespaces: isolation, plan sharing, quotas, REPL/workload
threading."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.errors import QueryError
from repro.service import BitwiseService, run_repl

N_BITS = 512


@pytest.fixture(params=["vector", "reference"])
def service(request):
    svc = BitwiseService(n_bits=N_BITS, n_shards=2,
                         backend=request.param)
    yield svc
    svc.close()


def bits_of(value: int, invert: bool = False) -> np.ndarray:
    rng = np.random.default_rng(value)
    bits = (rng.random(N_BITS) < 0.5).astype(np.uint8)
    return 1 - bits if invert else bits


class TestNamespaces:
    def test_same_name_different_data(self, service):
        a_pub, a_alice = bits_of(1), bits_of(2)
        service.create_column("a", a_pub)
        alice = service.tenant("alice")
        alice.create_column("a", a_alice)
        assert service.query("a").count == int(a_pub.sum())
        assert alice.query("a").count == int(a_alice.sum())
        assert np.array_equal(alice.column_bits("a"), a_alice)
        assert np.array_equal(service.column_bits("a"), a_pub)

    def test_column_lists_are_scoped(self, service):
        service.create_column("pub", bits_of(1))
        bob = service.tenant("bob")
        bob.create_column("mine", bits_of(2))
        assert service.columns == ("pub",)
        assert bob.columns == ("mine",)

    def test_unbound_error_names_tenant(self, service):
        carol = service.tenant("carol")
        with pytest.raises(QueryError, match="carol"):
            carol.query("nope")

    def test_namespace_cannot_be_escaped(self, service):
        """The query grammar cannot produce a mangled physical name."""
        service.tenant("alice").create_column("a", bits_of(1))
        with pytest.raises(QueryError):
            service.query("alice::a")

    def test_tenant_mutations_are_scoped(self, service):
        service.create_column("a", bits_of(1))
        dave = service.tenant("dave")
        dave.create_column("a", bits_of(2))
        dave.update_column("a", bits_of(3))
        assert np.array_equal(service.column_bits("a"), bits_of(1))
        assert np.array_equal(dave.column_bits("a"), bits_of(3))

    def test_bad_tenant_name_rejected(self, service):
        with pytest.raises(QueryError, match="invalid tenant"):
            service.tenant("no spaces")


class TestCacheAndPlans:
    def test_result_cache_is_isolated(self, service):
        service.create_column("a", bits_of(1))
        erin = service.tenant("erin")
        erin.create_column("a", bits_of(2))
        service.query("a")
        # Erin's first identical query text must MISS (her data).
        first = erin.query("a")
        assert not first.cache_hit
        assert erin.query("a").cache_hit
        assert service.query("a").cache_hit

    def test_plans_are_shared_across_tenants(self, service):
        service.create_column("a", bits_of(1))
        frank = service.tenant("frank")
        frank.create_column("a", bits_of(2))
        service.query("a & ~a")
        plans_before = len(service._plans)
        frank.query("a & ~a")
        assert len(service._plans) == plans_before

    def test_tenant_mutation_keeps_other_tenants_hot(self, service):
        service.create_column("a", bits_of(1))
        grace = service.tenant("grace")
        grace.create_column("a", bits_of(2))
        service.query("a")
        grace.query("a")
        grace.update_column("a", bits_of(3))
        assert service.query("a").cache_hit       # untouched namespace
        assert not grace.query("a").cache_hit     # mutated namespace


class TestQuotas:
    def test_bit_quota_enforced(self, service):
        service.register_tenant("heidi",
                                quota_bits=2 * service.capacity)
        heidi = service.tenant("heidi")
        heidi.create_column("one", bits_of(1))
        heidi.create_column("two", bits_of(2))
        with pytest.raises(QueryError, match="quota"):
            heidi.create_column("three", bits_of(3))
        heidi.drop_column("one")
        heidi.create_column("three", bits_of(3))

    def test_cache_quota_evicts_own_lru(self, service):
        service.create_column("pub", bits_of(1))
        service.register_tenant("ivan", cache_entries=1)
        ivan = service.tenant("ivan")
        ivan.create_column("a", bits_of(2))
        ivan.create_column("b", bits_of(3))
        service.query("pub")
        ivan.query("a")
        ivan.query("b")          # evicts ivan's "a", not pub
        assert service.query("pub").cache_hit
        assert not ivan.query("a").cache_hit

    def test_stats_count_tenants(self, service):
        service.tenant("x")
        service.tenant("y")
        assert service.stats()["tenants"] == 3  # default + x + y


class TestFrontendThreading:
    def test_repl_tenant_switch(self):
        svc = BitwiseService(n_bits=64, n_shards=1)
        out = io.StringIO()
        commands = "\n".join([
            "col shared random 0.5 1",
            "tenant judy",
            "col mine random 0.5 2",
            "cols",
            "query mine",
            "bits mine 0 8",
            "tenant -",
            "cols",
            "quit",
        ]) + "\n"
        try:
            assert run_repl(svc, io.StringIO(commands), out) == 0
        finally:
            svc.close()
        output = out.getvalue()
        assert '"mine"' in output and '"judy"' in output
        assert '"shared"' in output
        assert "error:" not in output

    def test_workload_runs_in_tenant(self):
        from repro.workloads import run_workload
        from repro.workloads.xor_cipher import XorCipher

        workload = XorCipher(1 << 10)
        program = workload.as_program(seed=0)
        svc = BitwiseService(n_bits=program.n_lanes, n_shards=2)
        try:
            run = run_workload(workload, service=svc, tenant="worker",
                               seed=0)
            assert run.verified
            # Inputs landed in the tenant namespace, not the public one.
            assert svc.columns == ()
            assert len(svc.tenant_columns("worker")) > 0
        finally:
            svc.close()
