"""Columnar executor vs engine replay: bit- and Stats-exactness.

The vector backend (default) must be indistinguishable from the
reference engine-replay backend: same result bits, same popcounts,
same attributed energy/cycles per query (exact integers; energy at
float tolerance), same aggregate service ledgers — across the full
aliasing/parity query matrix, on both technologies, over *sequences*
of queries (replay cost depends on the column flag encodings earlier
queries leave behind; the state-aware coster must track that).
"""

import math
import threading

import numpy as np
import pytest

from repro.arch.expr import CompiledQuery
from repro.errors import QueryError
from repro.service import BitwiseService

N_BITS = 10_000  # not a multiple of 64 * shards

#: the aliasing/parity matrix: shared operands, double negation, De
#: Morgan pairs, XOR parity chains, constants, MAJ/SEL with negated and
#: duplicated operands — every flag-algebra corner the engines special-
#: case, plus CSE-heavy multi-term predicates.
QUERY_MATRIX = [
    "a", "~a", "a & b", "~(a & b)", "a | b", "~a & ~b", "~a | ~b",
    "a ^ b", "~a ^ b", "a ^ a", "a & a", "a & ~a", "a | ~a",
    "andnot(a, a)", "andnot(a, b)", "maj(a, b, c)", "maj(~a, b, c)",
    "maj(a, a, b)", "sel(a, b, c)", "sel(~a, b, ~c)",
    "(a & b & ~c) | (c & d)",
    "(a & b & ~c) | (a & b & d) | (c & ~d)",
    "a ^ b ^ c ^ d", "xnor(a, b)", "nor(a, b, c)", "nand(a, b)",
    "~(a ^ (b | ~c))", "0", "1", "a & 1", "a & 0",
]


def _energy_close(x: float, y: float) -> bool:
    return math.isclose(x, y, rel_tol=1e-9, abs_tol=1e-15)


@pytest.fixture
def table(rng):
    return {name: rng.integers(0, 2, N_BITS, dtype=np.uint8)
            for name in "abcd"}


def _pair(technology, table, **kwargs):
    ref = BitwiseService(technology, n_bits=N_BITS, n_shards=3,
                         backend="reference", **kwargs)
    vec = BitwiseService(technology, n_bits=N_BITS, n_shards=3,
                         backend="vector", **kwargs)
    for name, bits in table.items():
        ref.create_column(name, bits)
        vec.create_column(name, bits)
    return ref, vec


class TestBackendEquivalence:
    @pytest.mark.parametrize("technology", ["feram-2tnc", "dram"])
    def test_query_matrix_bit_and_stats_exact(self, technology, table):
        """Serialized execution of the full matrix: every per-query
        result and cost must match the reference replay, including the
        flag-state evolution across the sequence."""
        ref, vec = _pair(technology, table)
        try:
            for query in QUERY_MATRIX:
                expected = ref.query(query, use_cache=False)
                actual = vec.query(query, use_cache=False)
                assert np.array_equal(actual.bits, expected.bits), query
                assert actual.count == expected.count, query
                assert actual.cycles == expected.cycles, query
                assert _energy_close(actual.energy_j,
                                     expected.energy_j), query
                assert actual.primitives_per_row == \
                    expected.primitives_per_row, query
                for key in expected.detail:
                    if key.startswith("cycles"):
                        assert actual.detail[key] == \
                            expected.detail[key], (query, key)
            ref_stats, vec_stats = ref.stats(), vec.stats()
            assert ref_stats["rows_used"] == vec_stats["rows_used"]
            assert ref_stats["cycles_total"] == vec_stats["cycles_total"]
            assert _energy_close(ref_stats["energy_total_nj"],
                                 vec_stats["energy_total_nj"])
        finally:
            ref.close()
            vec.close()

    @pytest.mark.parametrize("technology", ["feram-2tnc", "dram"])
    def test_batch_bit_exact(self, technology, table):
        ref, vec = _pair(technology, table)
        try:
            batch = ["a & ~b", "(a & b & ~c) | (c & d)", "a ^ b ^ c",
                     "maj(a, b, c) | ~d", "(a & b & ~c) | (a & b & d)"]
            expected = ref.execute(batch, use_cache=False)
            actual = vec.execute(batch, use_cache=False)
            for exp, act in zip(expected, actual):
                assert np.array_equal(act.bits, exp.bits), exp.query
                assert act.count == exp.count
        finally:
            ref.close()
            vec.close()

    def test_counting_mode_stats_match(self):
        kwargs = {"n_bits": 1 << 20, "n_shards": 2, "functional": False}
        ref = BitwiseService(backend="reference", **kwargs)
        vec = BitwiseService(backend="vector", **kwargs)
        try:
            for svc in (ref, vec):
                svc.create_column("x")
                svc.create_column("y")
            # Counting-mode allocate charges nothing on either path
            # (only a functional load pays host row writes).
            assert vec.stats()["energy_total_nj"] == \
                ref.stats()["energy_total_nj"] == 0.0
            assert vec.stats()["cycles_total"] == \
                ref.stats()["cycles_total"] == 0
            for query in ("x & ~y", "x ^ y", "maj(x, y, x)"):
                expected = ref.query(query, use_cache=False)
                actual = vec.query(query, use_cache=False)
                assert actual.bits is None and actual.count is None
                assert actual.cycles == expected.cycles, query
                assert _energy_close(actual.energy_j,
                                     expected.energy_j), query
        finally:
            ref.close()
            vec.close()

    def test_columns_stable_under_repeated_queries(self, table):
        ref, vec = _pair("feram-2tnc", table)
        try:
            for _ in range(3):
                vec.execute(["a & ~b", "~a & b", "a ^ b", "~(a | c)"],
                            use_cache=False)
            for name, bits in table.items():
                assert np.array_equal(vec.column_bits(name), bits)
        finally:
            ref.close()
            vec.close()


class TestVectorBatchSemantics:
    def test_batch_shares_subexpressions_but_charges_full_plans(
            self, table):
        """Cross-query CSE is a host-simulation optimization: the
        attributed cost of each query still models its full plan."""
        svc = BitwiseService("feram-2tnc", n_bits=N_BITS, n_shards=3,
                             backend="vector")
        try:
            for name, bits in table.items():
                svc.create_column(name, bits)
            solo = svc.query("(a & b) | c", use_cache=False)
            fresh = BitwiseService("feram-2tnc", n_bits=N_BITS,
                                   n_shards=3, backend="vector")
            for name, bits in table.items():
                fresh.create_column(name, bits)
            batch = fresh.execute(["(a & b) | c", "(b & a) | d"],
                                  use_cache=False)
            assert batch[0].cycles == solo.cycles
            assert batch[0].energy_j > 0 and batch[1].energy_j > 0
            expected = (table["a"] & table["b"]) | table["d"]
            assert np.array_equal(batch[1].bits, expected)
            fresh.close()
        finally:
            svc.close()

    def test_duplicate_queries_dedup(self, table):
        svc = BitwiseService("feram-2tnc", n_bits=N_BITS, n_shards=3)
        try:
            for name, bits in table.items():
                svc.create_column(name, bits)
            results = svc.execute(["a ^ b", "b ^ a"], use_cache=False)
            assert results[0].key == results[1].key
            assert results[0].bits is not results[1].bits
            results[0].bits[:] = 0
            assert int(results[1].bits.sum()) == results[1].count
        finally:
            svc.close()

    def test_unknown_backend_rejected(self):
        with pytest.raises(QueryError, match="backend"):
            BitwiseService(n_bits=64, backend="simd")

    def test_text_plan_cache_is_bounded(self, table):
        svc = BitwiseService("feram-2tnc", n_bits=N_BITS, n_shards=2)
        try:
            for name, bits in table.items():
                svc.create_column(name, bits)
            svc._plans_by_text_cap = 4
            for k in range(10):  # textually distinct, same plan
                svc.compile("a &" + " " * (k + 1) + "b")
            assert len(svc._plans_by_text) == 4
        finally:
            svc.close()

    def test_spec_technology_mismatch_rejected(self):
        from repro.arch.spec import DRAM_8GB

        with pytest.raises(QueryError, match="spec"):
            BitwiseService("feram-2tnc", n_bits=64, spec=DRAM_8GB,
                           backend="vector")


class TestGenerationRace:
    def test_inflight_execute_never_caches_stale_bits(self, table,
                                                      monkeypatch):
        """Deterministic interleaving: drop/create a column while an
        execute is in flight.  The in-flight result (computed from the
        pre-mutation snapshot) must not land in the invalidated cache,
        and the next query must serve fresh bits."""
        svc = BitwiseService("feram-2tnc", n_bits=N_BITS, n_shards=3,
                             backend="vector")
        try:
            for name, bits in table.items():
                svc.create_column(name, bits)
            entered = threading.Event()
            resume = threading.Event()
            original = CompiledQuery.vector_program

            def gated(plan, **kwargs):
                program = original(plan, **kwargs)
                entered.set()
                assert resume.wait(timeout=10)
                return program

            monkeypatch.setattr(CompiledQuery, "vector_program", gated)
            stale_result = {}

            def client():
                stale_result["r"] = svc.query("a & b")

            thread = threading.Thread(target=client)
            thread.start()
            assert entered.wait(timeout=10)
            # Mutate the table while the query is mid-execution: the
            # service has already snapshotted generation + columns.
            monkeypatch.setattr(CompiledQuery, "vector_program",
                                original)
            svc.drop_column("b")
            svc.create_column("b", 1 - table["b"])
            resume.set()
            thread.join(timeout=10)
            assert not thread.is_alive()
            # The in-flight query served the consistent pre-mutation
            # snapshot...
            stale = stale_result["r"]
            expected_old = table["a"] & table["b"]
            assert np.array_equal(stale.bits, expected_old)
            # ...but was NOT cached: the next query recomputes against
            # the new column value.
            fresh = svc.query("a & b")
            assert not fresh.cache_hit
            expected_new = table["a"] & (1 - table["b"])
            assert np.array_equal(fresh.bits, expected_new)
        finally:
            svc.close()

    def test_snapshot_consistency_during_drop(self, table,
                                              monkeypatch):
        """An in-flight query never observes a half-mutated table
        (its snapshot pins the original matrices)."""
        svc = BitwiseService("feram-2tnc", n_bits=N_BITS, n_shards=3,
                             backend="vector")
        try:
            for name, bits in table.items():
                svc.create_column(name, bits)
            entered = threading.Event()
            resume = threading.Event()
            original = CompiledQuery.vector_program

            def gated(plan, **kwargs):
                program = original(plan, **kwargs)
                entered.set()
                assert resume.wait(timeout=10)
                return program

            monkeypatch.setattr(CompiledQuery, "vector_program", gated)
            result = {}
            thread = threading.Thread(
                target=lambda: result.update(
                    r=svc.query("a ^ b", use_cache=False)))
            thread.start()
            assert entered.wait(timeout=10)
            monkeypatch.setattr(CompiledQuery, "vector_program",
                                original)
            svc.drop_column("a")
            resume.set()
            thread.join(timeout=10)
            assert not thread.is_alive()
            assert np.array_equal(result["r"].bits,
                                  table["a"] ^ table["b"])
        finally:
            svc.close()
