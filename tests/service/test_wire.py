"""Binary wire protocol: frame codec, negotiation, and JSON parity.

The ``REPB`` frame layer must round-trip every bulk payload bit-
exactly, reject structural corruption with typed
:class:`ProtocolError`, and — once negotiated per-connection — serve
the same ops byte-identically to what a JSON-lines client reads,
while JSON-only clients on the same server stay completely
unaffected.  Also pins the server-side serialization contract: a
response value the wire cannot represent is a ``protocol``-coded
error response, never a silently stringified payload.
"""

from __future__ import annotations

import json
import socket
import threading

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.service import BitwiseService, serve_tcp
from repro.service import wire
from repro.service.server import _json_default

N_BITS = 512

pytestmark = pytest.mark.timeout(60)


@pytest.fixture
def service(rng):
    svc = BitwiseService(n_bits=N_BITS, n_shards=2,
                         capacity=N_BITS + 128)
    for name in ("a", "b", "c"):
        svc.create_column(
            name, (rng.random(N_BITS) < 0.5).astype(np.uint8))
    yield svc
    svc.close()


@pytest.fixture
def server(service):
    srv = serve_tcp(service, 0, batch_window_s=0.002)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()


# ----------------------------------------------------------------------
# frame codec
# ----------------------------------------------------------------------
class TestFrameCodec:
    def _round_trip(self, frame):
        header = wire.decode_header(frame[:wire.HEADER_SIZE])
        rest = frame[wire.HEADER_SIZE:]
        meta_bytes = rest[:header.meta_len]
        payload = rest[header.meta_len:]
        assert len(payload) == header.payload_bytes
        return wire.decode_frame(header, meta_bytes, payload)

    def test_meta_only_round_trip(self):
        frame = wire.encode_frame(
            wire.KIND_REQUEST, {"op": "query", "expr": "a & b"})
        meta, bits = self._round_trip(frame)
        assert meta == {"op": "query", "expr": "a & b"}
        assert bits is None

    @pytest.mark.parametrize("width", [1, 63, 64, 65, 777, 4096])
    def test_bits_round_trip(self, rng, width):
        original = rng.integers(0, 2, width, dtype=np.uint8)
        frame = wire.encode_frame(wire.KIND_RESPONSE,
                                  {"total": width}, original)
        meta, bits = self._round_trip(frame)
        assert meta == {"total": width}
        assert bits.dtype == np.uint8 and bits.size == width
        assert np.array_equal(bits, original)

    def test_multi_segment_round_trip(self, rng):
        segments = [rng.integers(0, 2, width, dtype=np.uint8)
                    for width in (65, 1, 128)]
        frame = wire.encode_frame(
            wire.KIND_REQUEST,
            {"op": "append_rows", "value_names": ["x", "y", "z"]},
            segments)
        meta, bits = self._round_trip(frame)
        assert meta["value_names"] == ["x", "y", "z"]
        assert "segment_bits" not in meta  # consumed by the decoder
        assert isinstance(bits, list) and len(bits) == 3
        for got, want in zip(bits, segments):
            assert np.array_equal(got, want)

    def test_payload_is_word_padded(self):
        frame = wire.encode_frame(wire.KIND_REQUEST, {},
                                  np.ones(65, dtype=np.uint8))
        header = wire.decode_header(frame[:wire.HEADER_SIZE])
        assert header.n_bits == 65
        assert header.payload_bytes == 16  # two uint64 words

    def test_bad_magic_rejected(self):
        frame = bytearray(wire.encode_frame(wire.KIND_REQUEST, {}))
        frame[:4] = b"JUNK"
        with pytest.raises(ProtocolError, match="magic"):
            wire.decode_header(bytes(frame[:wire.HEADER_SIZE]))

    def test_unsupported_version_rejected(self):
        frame = bytearray(wire.encode_frame(wire.KIND_REQUEST, {}))
        frame[4] = 99
        with pytest.raises(ProtocolError, match="version"):
            wire.decode_header(bytes(frame[:wire.HEADER_SIZE]))

    def test_unknown_kind_rejected(self):
        frame = bytearray(wire.encode_frame(wire.KIND_REQUEST, {}))
        frame[5] = 7
        with pytest.raises(ProtocolError, match="kind"):
            wire.decode_header(bytes(frame[:wire.HEADER_SIZE]))

    def test_truncated_header_rejected(self):
        with pytest.raises(ProtocolError, match="header"):
            wire.decode_header(b"REPB\x01\x01")

    def test_oversized_frame_rejected(self):
        header = wire.HEADER.pack(wire.MAGIC, wire.VERSION,
                                  wire.KIND_REQUEST, 0, 0,
                                  wire.MAX_FRAME_BYTES, 1)
        with pytest.raises(ProtocolError, match="limit"):
            wire.decode_header(header)

    def test_short_payload_rejected(self):
        with pytest.raises(ProtocolError, match="bits"):
            wire.unpack_bits(b"\x00" * 8, 65)

    def test_non_object_metadata_rejected(self):
        frame = wire.encode_frame(wire.KIND_REQUEST, {})
        header = wire.decode_header(frame[:wire.HEADER_SIZE])
        with pytest.raises(ProtocolError, match="object"):
            wire.decode_frame(header, b"[1, 2]", b"")

    def test_unserializable_metadata_raises(self):
        with pytest.raises(ProtocolError, match="serializable"):
            wire.encode_frame(wire.KIND_REQUEST, {"x": object()})

    def test_json_default_converts_numpy_scalars(self):
        encoded = json.dumps(
            {"i": np.int64(3), "f": np.float64(0.5),
             "b": np.bool_(True), "a": np.arange(3)},
            default=_json_default)
        assert json.loads(encoded) == \
            {"i": 3, "f": 0.5, "b": True, "a": [0, 1, 2]}

    def test_json_default_rejects_everything_else(self):
        with pytest.raises(ProtocolError, match="serializable"):
            json.dumps({"x": object()}, default=_json_default)


# ----------------------------------------------------------------------
# TCP integration
# ----------------------------------------------------------------------
class _JsonClient:
    def __init__(self, port: int):
        self.sock = socket.create_connection(("127.0.0.1", port),
                                             timeout=10)
        self.stream = self.sock.makefile("rw")

    def call(self, request: dict) -> dict:
        self.stream.write(json.dumps(request) + "\n")
        self.stream.flush()
        return json.loads(self.stream.readline())

    def close(self):
        self.sock.close()


class _BinaryClient:
    """Sync binary-wire client: JSON hello, then frames both ways."""

    def __init__(self, port: int, tenant: str | None = None):
        self.sock = socket.create_connection(("127.0.0.1", port),
                                             timeout=10)
        self.stream = self.sock.makefile("rb")
        hello = {"op": "hello", "tenant": tenant, "wire": "binary"}
        self.sock.sendall((json.dumps(hello) + "\n").encode())
        self.hello = json.loads(self.stream.readline())
        assert self.hello["ok"] and self.hello["wire"] == "binary"

    def _read_exact(self, n: int) -> bytes:
        data = self.stream.read(n)
        if len(data) != n:
            raise ConnectionError(f"short read ({len(data)}/{n})")
        return data

    def read_frame(self):
        header = wire.decode_header(
            self._read_exact(wire.HEADER_SIZE))
        meta_bytes = self._read_exact(header.meta_len) \
            if header.meta_len else b""
        payload = self._read_exact(header.payload_bytes) \
            if header.payload_bytes else b""
        return wire.decode_frame(header, meta_bytes, payload)

    def call(self, request: dict, bits=None) -> dict:
        self.sock.sendall(
            wire.encode_frame(wire.KIND_REQUEST, request, bits))
        response, page = self.read_frame()
        if page is not None:
            response["bits"] = page
        return response

    def close(self):
        self.sock.close()


def _page_text(page: np.ndarray) -> str:
    return (page + ord("0")).tobytes().decode("ascii")


class TestBinaryServer:
    def test_negotiation_and_meta_ops(self, server):
        client = _BinaryClient(server.server_address[1])
        try:
            assert client.hello["n_bits"] == N_BITS
            response = client.call({"op": "query", "expr": "a & b"})
            assert response["ok"] and response["count"] >= 0
            batch = client.call({"op": "batch",
                                 "exprs": ["a | b", "a ^ c"]})
            assert batch["ok"] and len(batch["results"]) == 2
            stats = client.call({"op": "stats"})
            assert stats["ok"] and "scheduler" in stats["stats"]
        finally:
            client.close()

    def test_bulk_ops_round_trip(self, server, service, rng):
        client = _BinaryClient(server.server_address[1])
        try:
            payload = rng.integers(0, 2, N_BITS, dtype=np.uint8)
            assert client.call({"op": "create_column", "name": "x"},
                               payload)["ok"]
            assert np.array_equal(service.column_bits("x"), payload)
            # Paged readout comes back as a raw array.
            page = client.call({"op": "bits", "name": "x",
                                "offset": 0, "limit": N_BITS})
            assert page["ok"] and page["total"] == N_BITS
            assert np.array_equal(page["bits"], payload)
            # Slice write via frame payload.
            patch = 1 - payload[32:96]
            result = client.call({"op": "write_slice", "name": "x",
                                  "offset": 32}, patch)
            assert result["ok"] and result["rows_written"] >= 1
            payload[32:96] = patch
            assert np.array_equal(service.column_bits("x"), payload)
            # Multi-segment append.
            extra = {"x": rng.integers(0, 2, 64, dtype=np.uint8),
                     "a": rng.integers(0, 2, 64, dtype=np.uint8)}
            result = client.call(
                {"op": "append_rows", "value_names": list(extra)},
                list(extra.values()))
            assert result["ok"]
            assert result["table_bits"] == N_BITS + 64
            got = service.column_bits("x")
            assert np.array_equal(got[N_BITS:], extra["x"])
        finally:
            client.close()

    def test_binary_page_byte_identical_to_json(self, server, rng):
        port = server.server_address[1]
        binary = _BinaryClient(port)
        json_client = _JsonClient(port)
        try:
            payload = rng.integers(0, 2, N_BITS, dtype=np.uint8)
            assert binary.call({"op": "create_column", "name": "y"},
                               payload)["ok"]
            request = {"op": "bits", "name": "y", "offset": 0,
                       "limit": N_BITS}
            binary_page = binary.call(dict(request))
            json_page = json_client.call(dict(request))
            assert json_page["ok"] and binary_page["ok"]
            assert _page_text(binary_page["bits"]) == json_page["bits"]
            assert binary_page["total"] == json_page["total"]
            assert binary_page["source"] == json_page["source"]
        finally:
            binary.close()
            json_client.close()

    def test_json_only_clients_unchanged(self, server):
        """A JSON-lines client sharing the server with a binary one
        sees exactly the legacy shapes."""
        port = server.server_address[1]
        binary = _BinaryClient(port)
        legacy = _JsonClient(port)
        try:
            binary.call({"op": "query", "expr": "a ^ b"})
            page = legacy.call({"op": "bits", "name": "a",
                                "offset": 0, "limit": 16})
            assert page["ok"] and isinstance(page["bits"], str)
            assert set(page["bits"]) <= {"0", "1"}
            response = legacy.call({"op": "query", "expr": "a & b"})
            assert response["ok"] and "count" in response
        finally:
            binary.close()
            legacy.close()

    def test_corrupt_frame_reports_and_closes(self, server):
        client = _BinaryClient(server.server_address[1])
        try:
            client.sock.sendall(b"X" * wire.HEADER_SIZE)
            response, _ = client.read_frame()
            assert not response["ok"]
            assert response["code"] == "protocol"
            # Framing is lost: the server hangs up.
            assert client.stream.read(1) == b""
        finally:
            client.close()

    def test_soak_json_and_binary_agree(self, server, service, rng):
        """Concurrent JSON and binary clients hammer mutations and
        page reads; every page read on either wire must match the
        service's ground truth at the end."""
        port = server.server_address[1]
        errors: list = []
        base = rng.integers(0, 2, N_BITS, dtype=np.uint8)

        def binary_worker(index: int):
            worker_rng = np.random.default_rng(1000 + index)
            client = _BinaryClient(port)
            try:
                name = f"bw{index}"
                client.call({"op": "create_column", "name": name},
                            base)
                for round_no in range(5):
                    patch = worker_rng.integers(0, 2, 64,
                                                dtype=np.uint8)
                    offset = 64 * round_no
                    result = client.call(
                        {"op": "write_slice", "name": name,
                         "offset": offset}, patch)
                    if not result.get("ok"):
                        errors.append(result)
                    page = client.call(
                        {"op": "bits", "name": name,
                         "offset": offset, "limit": 64})
                    if not np.array_equal(page["bits"], patch):
                        errors.append((name, offset))
            except Exception as exc:  # noqa: BLE001 - collected
                errors.append(exc)
            finally:
                client.close()

        def json_worker():
            client = _JsonClient(port)
            try:
                for _ in range(10):
                    response = client.call({"op": "query",
                                            "expr": "a & b"})
                    if not response.get("ok"):
                        errors.append(response)
            except Exception as exc:  # noqa: BLE001 - collected
                errors.append(exc)
            finally:
                client.close()

        threads = [threading.Thread(target=binary_worker, args=(i,))
                   for i in range(3)]
        threads += [threading.Thread(target=json_worker)
                    for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors, errors[:3]


class TestProtocolErrorSurface:
    def test_unserializable_response_is_protocol_error(
            self, server, service, monkeypatch):
        """Satellite regression: a stats object the wire cannot
        serialize must produce a typed error response (code
        "protocol"), not a default=str mangled payload — and the
        connection must survive."""
        class Opaque:
            pass

        original = service.stats

        def poisoned():
            stats = original()
            stats["opaque"] = Opaque()
            return stats

        monkeypatch.setattr(service, "stats", poisoned)
        client = _JsonClient(server.server_address[1])
        try:
            response = client.call({"op": "stats"})
            assert not response["ok"]
            assert response["code"] == "protocol"
            assert "Opaque" in response["error"]
            # The connection is still healthy afterwards.
            follow_up = client.call({"op": "query", "expr": "a"})
            assert follow_up["ok"]
        finally:
            client.close()

    def test_binary_wire_surfaces_protocol_error(
            self, server, service, monkeypatch):
        class Opaque:
            pass

        original = service.stats
        monkeypatch.setattr(
            service, "stats",
            lambda: {**original(), "opaque": Opaque()})
        client = _BinaryClient(server.server_address[1])
        try:
            response = client.call({"op": "stats"})
            assert not response["ok"]
            assert response["code"] == "protocol"
            follow_up = client.call({"op": "query", "expr": "a"})
            assert follow_up["ok"]
        finally:
            client.close()
