"""Async serving stack: scheduler coalescing/fairness/admission and
the JSON-lines TCP wire protocol."""

from __future__ import annotations

import asyncio
import json
import socket
import threading

import numpy as np
import pytest

from repro.service import (
    AdmissionError,
    BitwiseService,
    RequestScheduler,
    serve_tcp,
)

N_BITS = 512

pytestmark = pytest.mark.timeout(60)


@pytest.fixture
def service(rng):
    svc = BitwiseService(n_bits=N_BITS, n_shards=2,
                         capacity=N_BITS + 64)
    for name in ("a", "b", "c"):
        svc.create_column(
            name, (rng.random(N_BITS) < 0.5).astype(np.uint8))
    yield svc
    svc.close()


# ----------------------------------------------------------------------
# scheduler unit tests (no sockets)
# ----------------------------------------------------------------------
class TestScheduler:
    def test_concurrent_queries_coalesce_into_one_batch(self, service):
        async def scenario():
            scheduler = RequestScheduler(service, window_s=0.05,
                                         max_batch=16)
            scheduler.start()
            try:
                tasks = [asyncio.ensure_future(
                    scheduler.submit_query(None, "a & b"))
                    for _ in range(6)]
                tasks += [asyncio.ensure_future(
                    scheduler.submit_query(None, "a ^ c"))
                    for _ in range(2)]
                results = await asyncio.gather(*tasks)
                return results, dict(scheduler.metrics)
            finally:
                await scheduler.stop()

        results, metrics = asyncio.run(scenario())
        assert len(results) == 8
        assert len({r.count for r in results[:6]}) == 1
        # All eight queries arrived inside one batching window.
        assert metrics["batches"] == 1
        assert metrics["largest_batch"] == 8

    def test_idle_queue_skips_the_batching_window(self, service):
        """Sequential singleton queries converge the batch-size EWMA
        below the skip threshold: the scheduler stops paying the
        window per request, so a lone query on an idle queue returns
        far sooner than ``window_s``."""
        import time

        async def scenario():
            scheduler = RequestScheduler(service, window_s=0.2,
                                         max_batch=16)
            scheduler.start()
            try:
                for _ in range(3):
                    await scheduler.submit_query(None, "a & b")
                start = time.monotonic()
                await scheduler.submit_query(None, "a & b")
                elapsed = time.monotonic() - start
                return elapsed, dict(scheduler.metrics)
            finally:
                await scheduler.stop()

        elapsed, metrics = asyncio.run(scenario())
        assert metrics["window_skips"] >= 1
        assert elapsed < 0.15, \
            f"idle query waited the full window ({elapsed:.3f}s)"

    def test_window_fires_early_once_expected_batch_forms(
            self, service):
        """With a deliberately huge window, a backlog reaching the
        EWMA-predicted batch size must cut the wait short instead of
        sleeping out the window."""
        import time

        async def scenario():
            scheduler = RequestScheduler(service, window_s=5.0,
                                         max_batch=16)
            scheduler._batch_ewma = 4.0
            scheduler.start()
            try:
                start = time.monotonic()
                tasks = [asyncio.ensure_future(
                    scheduler.submit_query(None, "a & b"))
                    for _ in range(6)]
                await asyncio.gather(*tasks)
                elapsed = time.monotonic() - start
                return elapsed, dict(scheduler.metrics)
            finally:
                await scheduler.stop()

        elapsed, metrics = asyncio.run(scenario())
        assert metrics["early_fires"] >= 1
        assert metrics["batches"] == 1
        assert metrics["largest_batch"] == 6
        assert elapsed < 2.0, \
            f"batch sat out the window ({elapsed:.3f}s)"

    def test_admission_limit_rejects_excess(self, service):
        async def scenario():
            scheduler = RequestScheduler(service, window_s=0.2,
                                         max_pending=4)
            scheduler.start()
            try:
                tasks = [asyncio.ensure_future(
                    scheduler.submit_query(None, "a & b"))
                    for _ in range(4)]
                await asyncio.sleep(0)  # let submissions enqueue
                with pytest.raises(AdmissionError):
                    await scheduler.submit_query(None, "a & b")
                rejections = scheduler.metrics["admission_rejections"]
                results = await asyncio.gather(*tasks)
                return results, rejections
            finally:
                await scheduler.stop()

        results, rejections = asyncio.run(scenario())
        assert len(results) == 4 and rejections == 1

    def test_per_tenant_admission_override(self, service):
        service.register_tenant("small", max_pending=1)

        async def scenario():
            scheduler = RequestScheduler(service, window_s=0.2,
                                         max_pending=64)
            scheduler.start()
            try:
                task = asyncio.ensure_future(
                    scheduler.submit_query(None, "a & b"))
                await asyncio.sleep(0)
                # Default tenant: far below its limit of 64...
                second = asyncio.ensure_future(
                    scheduler.submit_query(None, "a | b"))
                await asyncio.sleep(0)
                # ...but "small" holds one slot only.
                service.tenant("small").create_column(
                    "x", np.ones(N_BITS, dtype=np.uint8))
                blocked = asyncio.ensure_future(
                    scheduler.submit_query("small", "x"))
                await asyncio.sleep(0)
                with pytest.raises(AdmissionError):
                    await scheduler.submit_query("small", "x")
                await asyncio.gather(task, second, blocked)
            finally:
                await scheduler.stop()

        asyncio.run(scenario())

    def test_round_robin_fairness(self, service):
        """A flooding tenant cannot fill the whole batch: round-robin
        draining interleaves one query per tenant per rotation."""
        service.tenant("loud").create_column(
            "x", np.ones(N_BITS, dtype=np.uint8))

        async def scenario():
            scheduler = RequestScheduler(service, window_s=0.0,
                                         max_batch=2)
            # No started task: drive _drain_round directly.
            for _ in range(3):
                item_future = scheduler.submit_query("loud", "x")
                asyncio.ensure_future(item_future)
            asyncio.ensure_future(
                scheduler.submit_query(None, "a & b"))
            await asyncio.sleep(0)  # enqueue all four
            batch, exclusives = scheduler._drain_round()
            assert not exclusives
            tenants = sorted(item.tenant or "-" for item in batch)
            # One from each tenant, despite loud's 3 queued.
            assert tenants == ["-", "loud"]
            for item in batch:
                item.future.cancel()
            for queue in scheduler._queues.values():
                for item in queue:
                    item.future.cancel()

        asyncio.run(scenario())

    def test_mutation_is_a_tenant_barrier(self, service):
        """A tenant's mutation waits for the batch, runs exclusively,
        and its later queries see the write (read-your-writes)."""
        original_count = int(service.column_bits("a").sum())
        assert original_count not in (0, N_BITS)

        async def scenario():
            scheduler = RequestScheduler(service, window_s=0.02)
            scheduler.start()
            try:
                ones = np.ones(N_BITS, dtype=np.uint8)
                first = asyncio.ensure_future(
                    scheduler.submit_query(None, "a"))
                mutation = asyncio.ensure_future(
                    scheduler.submit_exclusive(
                        None,
                        lambda: service.update_column("a", ones)))
                second = asyncio.ensure_future(
                    scheduler.submit_query(None, "a"))
                before, _, after = await asyncio.gather(
                    first, mutation, second)
                return before, after
            finally:
                await scheduler.stop()

        before, after = asyncio.run(scenario())
        # FIFO per tenant: the first query ran pre-mutation, the
        # second sees the all-ones update.
        assert before.count == original_count
        assert after.count == N_BITS

    def test_bad_query_error_attributes_to_its_request(self, service):
        async def scenario():
            scheduler = RequestScheduler(service, window_s=0.02)
            scheduler.start()
            try:
                good = asyncio.ensure_future(
                    scheduler.submit_query(None, "a & b"))
                bad = asyncio.ensure_future(
                    scheduler.submit_query(None, "zzz"))
                results = await asyncio.gather(good, bad,
                                               return_exceptions=True)
                return results
            finally:
                await scheduler.stop()

        good, bad = asyncio.run(scenario())
        assert good.count >= 0
        assert isinstance(bad, Exception) and "unbound" in str(bad)


# ----------------------------------------------------------------------
# TCP integration
# ----------------------------------------------------------------------
class _Client:
    def __init__(self, port: int):
        self.sock = socket.create_connection(("127.0.0.1", port),
                                             timeout=10)
        self.stream = self.sock.makefile("rw")

    def call(self, request: dict) -> dict:
        self.stream.write(json.dumps(request) + "\n")
        self.stream.flush()
        return json.loads(self.stream.readline())

    def close(self):
        self.sock.close()


@pytest.fixture
def server(service):
    srv = serve_tcp(service, 0, batch_window_s=0.002)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()


class TestWireProtocol:
    def test_legacy_ops_unchanged(self, server, service):
        client = _Client(server.server_address[1])
        try:
            assert client.call({"op": "create_column", "name": "x",
                                "seed": 1})["ok"]
            response = client.call({"op": "query", "expr": "x ^ a"})
            assert response["ok"] and response["count"] >= 0
            batch = client.call({"op": "batch",
                                 "exprs": ["a & b", "a | b"]})
            assert batch["ok"] and len(batch["results"]) == 2
            cols = client.call({"op": "columns"})
            assert set(cols["columns"]) == {"a", "b", "c", "x"}
            stats = client.call({"op": "stats"})
            assert stats["ok"] and "scheduler" in stats["stats"]
            error = client.call({"op": "query", "expr": "zzz"})
            assert not error["ok"] and "unbound" in error["error"]
            assert not client.call({"op": "nope"})["ok"]
        finally:
            client.close()

    def test_mutations_and_bits_over_the_wire(self, server, service):
        client = _Client(server.server_address[1])
        try:
            ones = [1] * N_BITS
            response = client.call({"op": "update_column", "name": "a",
                                    "bits": ones})
            assert response["ok"] and response["rows_written"] > 0
            query = client.call({"op": "query", "expr": "a"})
            assert query["count"] == N_BITS
            # Paginated column payload.
            page = client.call({"op": "bits", "name": "a",
                                "offset": 10, "limit": 16})
            assert page["ok"] and page["bits"] == "1" * 16
            assert page["total"] == N_BITS
            # Result payloads are fetchable by the returned key.
            page = client.call({"op": "bits", "name": query["key"],
                                "offset": 0, "limit": 8})
            assert page["ok"] and page["source"] == "result"
            assert page["bits"] == "1" * 8
            # Slice write, then append.
            response = client.call({"op": "write_slice", "name": "a",
                                    "offset": 0,
                                    "bits": [0] * 64})
            assert response["ok"] and response["rows_written"] == 1
            response = client.call({"op": "append_rows",
                                    "values": {"a": [1] * 64}})
            assert response["ok"]
            assert response["table_bits"] == N_BITS + 64
        finally:
            client.close()

    def test_large_batch_is_one_admission_unit(self, server, service):
        """Regression: a client batch wider than the per-tenant
        admission limit must still execute (the old threaded server
        ran batches as a single request)."""
        client = _Client(server.server_address[1])
        try:
            exprs = ["a & b", "a | b", "a ^ b"] * 30  # 90 > 64 limit
            response = client.call({"op": "batch", "exprs": exprs})
            assert response["ok"]
            assert len(response["results"]) == len(exprs)
        finally:
            client.close()

    def test_oversized_bits_page_rejected(self, server, service):
        client = _Client(server.server_address[1])
        try:
            response = client.call({"op": "bits", "name": "a",
                                    "limit": 1 << 30})
            assert not response["ok"] and "page" in response["error"]
        finally:
            client.close()

    def test_hello_pins_connection_tenant(self, server, service):
        alice = _Client(server.server_address[1])
        public = _Client(server.server_address[1])
        try:
            hello = alice.call({"op": "hello", "tenant": "alice"})
            assert hello["ok"] and hello["tenant"] == "alice"
            assert alice.call({"op": "create_column", "name": "a",
                               "bits": [1] * N_BITS})["ok"]
            assert alice.call({"op": "query", "expr": "a"})["count"] \
                == N_BITS
            # The public namespace still sees its own column `a`.
            count = public.call({"op": "query", "expr": "a"})["count"]
            assert count == int(service.column_bits("a").sum())
            # Per-request tenant override beats the connection default.
            override = alice.call({"op": "columns", "tenant": None})
            assert set(override["columns"]) >= {"a", "b", "c"}
        finally:
            alice.close()
            public.close()

    def test_concurrent_clients_coalesce(self, server, service):
        """Queries from parallel connections land in shared batches."""
        n_clients, per_client = 8, 5
        errors = []

        def worker(index: int):
            client = _Client(server.server_address[1])
            try:
                for _ in range(per_client):
                    response = client.call({"op": "query",
                                            "expr": "a & b"})
                    if not response.get("ok"):
                        errors.append(response)
            finally:
                client.close()

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(n_clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        metrics = server.scheduler.metrics
        assert metrics["batched_queries"] == n_clients * per_client
        # Coalescing happened: strictly fewer executes than queries.
        assert metrics["batches"] < metrics["batched_queries"]
