"""Energy-denominated tenant quotas.

``TenantState.quota_energy_nj`` caps the attributed in-memory energy a
tenant may spend; the service charges each executed plan/program/
mutation to its owner, and the scheduler rejects an exhausted tenant
at admission and sheds its already-queued items per batch — without
touching co-batched tenants.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.service import (
    AdmissionError,
    BitwiseService,
    RequestScheduler,
)

N_BITS = 512

pytestmark = pytest.mark.timeout(60)


@pytest.fixture
def service(rng):
    svc = BitwiseService(n_bits=N_BITS, n_shards=2,
                         capacity=N_BITS + 64)
    for tenant in ("capped", "free"):
        svc.register_tenant(tenant)
        view = svc.tenant(tenant)
        for name in ("a", "b"):
            view.create_column(
                name, (rng.random(N_BITS) < 0.5).astype(np.uint8))
    yield svc
    svc.close()


# ----------------------------------------------------------------------
# service-side accrual
# ----------------------------------------------------------------------
def test_queries_accrue_energy_to_their_tenant(service):
    state = service.tenant_state("capped")
    assert state.energy_spent_nj == 0.0
    result = service.query("a & b", tenant="capped")
    assert state.energy_spent_nj == result.energy_j * 1e9
    assert state.energy_spent_nj > 0
    # The other namespace is untouched.
    assert service.tenant_state("free").energy_spent_nj == 0.0


def test_cache_hits_accrue_no_quota_spend(service):
    first = service.query("a & b", tenant="capped")
    state = service.tenant_state("capped")
    spent = state.energy_spent_nj
    assert not first.cache_hit and spent > 0
    second = service.query("a & b", tenant="capped")
    assert second.cache_hit
    assert second.energy_j == 0.0
    assert state.energy_spent_nj == spent


def test_batch_duplicates_charge_once(service):
    results = service.execute(["a ^ b", "a ^ b"], tenant="capped")
    assert [r.cache_hit for r in results] == [False, False]
    assert service.tenant_state("capped").energy_spent_nj == \
        results[0].energy_j * 1e9


def test_mutations_accrue_energy(service):
    state = service.tenant_state("capped")
    result = service.update_column(
        "a", np.ones(N_BITS, dtype=np.uint8), tenant="capped")
    assert result.energy_j > 0
    assert state.energy_spent_nj == result.energy_j * 1e9


# ----------------------------------------------------------------------
# scheduler enforcement
# ----------------------------------------------------------------------
def test_zero_quota_tenant_rejected_at_admission(service):
    service.register_tenant("capped", quota_energy_nj=0.0)

    async def scenario():
        scheduler = RequestScheduler(service, window_s=0.01)
        scheduler.start()
        try:
            with pytest.raises(AdmissionError, match="energy quota"):
                await scheduler.submit_query("capped", "a & b")
            # The un-quota'd tenant is admitted and served normally.
            return await scheduler.submit_query("free", "a & b")
        finally:
            await scheduler.stop()

    result = asyncio.run(scenario())
    assert result.count is not None
    assert service.tenant_state("capped").energy_spent_nj == 0.0


def test_exhaustion_mid_queue_sheds_without_starving_others(service):
    """A tenant that overdraws its budget while requests are still
    queued gets those requests back as ``AdmissionError``; co-queued
    tenants keep executing."""
    # Budget covers (part of) one query: the first executes and
    # overdraws, anything still queued after that must be shed.
    service.register_tenant("capped", quota_energy_nj=1.0)

    async def scenario():
        # max_batch=1 forces one query per execute() round, so the
        # charge from the first capped query lands while the second
        # is still queued — the per-item shed path, not admission.
        scheduler = RequestScheduler(service, window_s=0.05,
                                     max_batch=1)
        scheduler.start()
        try:
            tasks = [
                asyncio.ensure_future(
                    scheduler.submit_query("capped", "a & b")),
                asyncio.ensure_future(
                    scheduler.submit_query("capped", "a | b")),
                asyncio.ensure_future(
                    scheduler.submit_query("free", "a ^ b")),
            ]
            return await asyncio.gather(*tasks,
                                        return_exceptions=True)
        finally:
            await scheduler.stop()

    first, second, other = asyncio.run(scenario())
    assert first.count is not None          # ran, overdrew the budget
    assert isinstance(second, AdmissionError)
    assert "energy quota" in str(second)
    assert other.count is not None          # free tenant untouched
    state = service.tenant_state("capped")
    assert state.energy_spent_nj >= state.quota_energy_nj


def test_exhausted_tenant_mutation_is_shed(service):
    service.register_tenant("capped", quota_energy_nj=0.0)

    async def scenario():
        scheduler = RequestScheduler(service, window_s=0.01)
        scheduler.start()
        try:
            with pytest.raises(AdmissionError, match="energy quota"):
                await scheduler.submit_exclusive(
                    "capped",
                    lambda: service.update_column(
                        "a", np.zeros(N_BITS, dtype=np.uint8),
                        tenant="capped"))
        finally:
            await scheduler.stop()

    asyncio.run(scenario())
    assert service.mutations_applied == 0


def test_reconfigured_quota_reopens_admission(service):
    service.register_tenant("capped", quota_energy_nj=0.0)
    assert service.tenant_state("capped").energy_exhausted()
    service.register_tenant("capped", quota_energy_nj=None)
    assert not service.tenant_state("capped").energy_exhausted()

    async def scenario():
        scheduler = RequestScheduler(service, window_s=0.01)
        scheduler.start()
        try:
            return await scheduler.submit_query("capped", "a & b")
        finally:
            await scheduler.stop()

    assert asyncio.run(scenario()).count is not None
