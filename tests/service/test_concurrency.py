"""Concurrent mutation/query interleavings.

Three layers:

* deterministic serialized schedules through the differential
  op-script harness (vector vs reference vs numpy shadow, full Stats);
* a hypothesis property over random op scripts (same harness);
* an async soak: multiple tenant clients hammer one shared async
  server concurrently with mixed query/mutation traffic; each
  tenant's result stream must be bit-exact against a serial
  reference-backend replay of that tenant's own schedule (namespaces
  are disjoint, and the scheduler guarantees per-tenant FIFO).
"""

from __future__ import annotations

import json
import socket
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import BitwiseService, serve_tcp
from tests.support.differential import assert_ops_equivalent

N_BITS = 3 * 64 * 2  # 2 words per shard on 3 shards

pytestmark = pytest.mark.timeout(120)


def table_for(seed: int, names=("a", "b", "c")) -> dict:
    rng = np.random.default_rng(seed)
    return {name: (rng.random(N_BITS) < 0.5).astype(np.uint8)
            for name in names}


class TestDeterministicSchedules:
    """Known-order interleavings, pinned exactly on both backends."""

    def test_read_heavy_with_periodic_updates(self):
        table = table_for(1)
        rng = np.random.default_rng(2)
        ops = []
        for round_index in range(4):
            ops += [("query", "a & b"), ("query", "b | c"),
                    ("query", "a ^ c"), ("query", "a & b")]
            fresh = (rng.random(N_BITS) < 0.5).astype(np.uint8)
            ops.append(("update", "a", fresh))
        ops.append(("query", "a & b"))
        assert_ops_equivalent(table, ops)

    def test_alternating_writers_one_column(self):
        table = table_for(3)
        rng = np.random.default_rng(4)
        ops = []
        for offset in range(0, N_BITS - 64, 64):
            patch = (rng.random(64) < 0.5).astype(np.uint8)
            ops.append(("write", "b", offset, patch))
            ops.append(("query", "a ^ b"))
        assert_ops_equivalent(table, ops)

    def test_mixed_ddl_dml_schedule(self):
        table = table_for(5)
        rng = np.random.default_rng(6)
        new_col = (rng.random(N_BITS) < 0.3).astype(np.uint8)
        appended = {"a": np.ones(64, dtype=np.uint8)}
        assert_ops_equivalent(table, [
            ("query", "maj(a, b, c)"),
            ("create", "d", new_col),
            ("query", "maj(a, b, c)"),       # must still be a hit
            ("query", "d & a"),
            ("update", "d", 1 - new_col),
            ("query", "d & a"),
            ("drop", "b"),
            ("append", appended),
            ("query", "a & ~c"),
        ], capacity=N_BITS + 64)


@st.composite
def op_scripts(draw):
    """A serialized script of queries and mutations over 3 columns."""
    names = ("a", "b", "c")
    queries = ("a & b", "a ^ b", "b | ~c", "maj(a, b, c)",
               "(a & b) | (b & c)", "a & ~b")
    n_ops = draw(st.integers(2, 10))
    ops = []
    for _ in range(n_ops):
        kind = draw(st.sampled_from(
            ["query", "query", "query", "update", "write"]))
        if kind == "query":
            ops.append(("query", draw(st.sampled_from(queries))))
        elif kind == "update":
            seed = draw(st.integers(0, 2 ** 16))
            bits = (np.random.default_rng(seed).random(N_BITS)
                    < 0.5).astype(np.uint8)
            ops.append(("update", draw(st.sampled_from(names)), bits))
        else:
            offset = draw(st.integers(0, N_BITS - 1))
            length = draw(st.integers(1, N_BITS - offset))
            seed = draw(st.integers(0, 2 ** 16))
            bits = (np.random.default_rng(seed).random(length)
                    < 0.5).astype(np.uint8)
            ops.append(("write", draw(st.sampled_from(names)),
                        offset, bits))
    return ops


class TestPropertyInterleavings:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2 ** 16), ops=op_scripts())
    def test_random_scripts_differentially_exact(self, seed, ops):
        assert_ops_equivalent(table_for(seed), ops)


class _TenantClient(threading.Thread):
    """One tenant's closed-loop client: runs its schedule through the
    async server and records every query count."""

    def __init__(self, port: int, tenant: str, schedule):
        super().__init__(daemon=True)
        self.port, self.tenant, self.schedule = port, tenant, schedule
        self.counts: list[int] = []
        self.error = None

    def run(self):
        try:
            sock = socket.create_connection(("127.0.0.1", self.port),
                                            timeout=30)
            stream = sock.makefile("rw")

            def call(request):
                stream.write(json.dumps(request) + "\n")
                stream.flush()
                response = json.loads(stream.readline())
                assert response.get("ok"), response
                return response

            call({"op": "hello", "tenant": self.tenant})
            for op in self.schedule:
                if op[0] == "create":
                    call({"op": "create_column", "name": op[1],
                          "bits": [int(bit) for bit in op[2]]})
                elif op[0] == "update":
                    call({"op": "update_column", "name": op[1],
                          "bits": [int(bit) for bit in op[2]]})
                elif op[0] == "write":
                    call({"op": "write_slice", "name": op[1],
                          "offset": op[2],
                          "bits": [int(bit) for bit in op[3]]})
                elif op[0] == "query":
                    self.counts.append(call({"op": "query",
                                             "expr": op[1]})["count"])
            sock.close()
        except Exception as exc:  # surfaced by the main thread
            self.error = exc


def tenant_schedule(seed: int):
    """A deterministic per-tenant schedule of creates/queries/writes."""
    rng = np.random.default_rng(seed)
    bits = lambda: (rng.random(N_BITS) < 0.5).astype(np.uint8)
    schedule = [("create", "x", bits()), ("create", "y", bits())]
    for _ in range(6):
        roll = rng.random()
        if roll < 0.4:
            schedule.append(("query", "x & y"))
        elif roll < 0.6:
            schedule.append(("query", "x ^ y"))
        elif roll < 0.8:
            schedule.append(("update", "x", bits()))
        else:
            offset = int(rng.integers(0, N_BITS - 64))
            schedule.append(("write", "y", offset,
                             bits()[:64]))
    schedule.append(("query", "x | y"))
    return schedule


class TestAsyncSoak:
    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 2 ** 10))
    def test_concurrent_tenants_match_serial_reference(self, seed):
        """Vector/reference differential exactness under genuinely
        concurrent interleaved updates: every tenant's async result
        stream equals a serial reference-backend replay."""
        n_tenants = 4
        schedules = {f"t{i}": tenant_schedule(seed * 101 + i)
                     for i in range(n_tenants)}

        # Serial ground truth: a reference-backend service replays
        # each tenant's schedule in isolation.
        expected: dict[str, list[int]] = {}
        ref = BitwiseService(n_bits=N_BITS, n_shards=3,
                             backend="reference")
        try:
            for tenant, schedule in schedules.items():
                view = ref.tenant(tenant)
                counts = []
                for op in schedule:
                    if op[0] == "create":
                        view.create_column(op[1], op[2])
                    elif op[0] == "update":
                        view.update_column(op[1], op[2])
                    elif op[0] == "write":
                        view.write_slice(op[1], op[2], op[3])
                    else:
                        counts.append(view.query(op[1]).count)
                expected[tenant] = counts
        finally:
            ref.close()

        service = BitwiseService(n_bits=N_BITS, n_shards=3,
                                 backend="vector")
        server = serve_tcp(service, 0, batch_window_s=0.001)
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        try:
            clients = [_TenantClient(server.server_address[1],
                                     tenant, schedule)
                       for tenant, schedule in schedules.items()]
            for client in clients:
                client.start()
            for client in clients:
                client.join(timeout=60)
                assert not client.is_alive(), "client hung"
            for client in clients:
                assert client.error is None, client.error
                assert client.counts == expected[client.tenant], \
                    f"tenant {client.tenant} diverged"
        finally:
            server.shutdown()
            server.server_close()
            service.close()
