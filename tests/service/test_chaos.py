"""Chaos suite: crash-recovery soaks under fault injection and a real
``kill -9``.

Marked ``chaos`` — CI runs these in a dedicated job (``pytest -m
chaos``) with ``REPRO_CHAOS_ROUNDS`` raising the soak length; the
default parameters keep them cheap enough for the tier-1 run too.

Both tests enforce the same contract: whatever record the process
dies on, restarting from the data directory recovers exactly the
state implied by the committed WAL prefix — bit-for-bit equal to an
uninterrupted reference service that ran only the committed ops.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.service import BitwiseService, FaultInjector, InjectedFault
from repro.service.durability import DurabilityManager, recover_service
from tests.support.durability_state import (
    apply_op,
    assert_recovered_equal,
    op_for,
    setup_soak,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
N_BITS = 512

pytestmark = [pytest.mark.chaos, pytest.mark.timeout(120)]


def make_service():
    return BitwiseService("feram-2tnc", n_bits=N_BITS, n_shards=4,
                          capacity=8 * N_BITS)


def make_durable(data_dir, injector=None):
    service = make_service()
    manager = DurabilityManager(data_dir, snapshot_every=7,
                                sync="none", injector=injector)
    manager.open(manager.load_base()[0])
    service.attach_durability(manager)
    return service


def test_injected_crash_soak_recovers_every_round(tmp_path):
    """Mutation-heavy multi-tenant soak: tear the WAL at a random
    record each round, recover, and demand exact equivalence with the
    uninterrupted reference — then keep going from the recovered
    service."""
    rounds = int(os.environ.get("REPRO_CHAOS_ROUNDS", "4"))
    ops_per_round = 12
    rng = np.random.default_rng(2025)
    data_dir = tmp_path / "soak"

    injector = FaultInjector()
    live = make_durable(data_dir, injector)
    reference = make_service()
    setup_soak(live, N_BITS)
    setup_soak(reference, N_BITS)
    width = N_BITS
    index = 0
    try:
        for _ in range(rounds):
            crash_at = int(rng.integers(0, ops_per_round + 1))
            injector.arm("wal.torn", after=crash_at)
            applied = 0
            for step in range(ops_per_round):
                op = op_for(index + step, width)
                try:
                    apply_op(live, op)
                except InjectedFault:
                    break
                width += apply_op(reference, op)
                applied += 1
            assert applied == min(crash_at, ops_per_round)
            injector.disarm()
            live.close()

            live = recover_service(data_dir, sync="none",
                                   snapshot_every=7,
                                   injector=injector)
            assert_recovered_equal(reference, live)
            index += applied
        # The survivors answer queries identically.
        for tenant in (None, "t1", "t2"):
            a = live.query("x ^ y", tenant=tenant)
            b = reference.query("x ^ y", tenant=tenant)
            assert a.count == b.count
            assert np.array_equal(a.bits, b.bits)
    finally:
        live.close()
        reference.close()


CHILD_SRC = """\
import sys
sys.path[:0] = [{repo!r}, {src!r}]
from repro.service import BitwiseService
from repro.service.durability import DurabilityManager
from tests.support.durability_state import apply_op, op_for, setup_soak

service = BitwiseService("feram-2tnc", n_bits={n_bits}, n_shards=4,
                         capacity={capacity})
manager = DurabilityManager(sys.argv[1], snapshot_every=7,
                            sync="batch")
manager.open(0)
service.attach_durability(manager)
setup_soak(service, {n_bits})
width = {n_bits}
print("READY", flush=True)
for index in range(400):
    width += apply_op(service, op_for(index, width))
    print(index, flush=True)
print("DONE", flush=True)
"""


def test_kill9_mid_soak_recovers_exactly(tmp_path):
    """The acceptance scenario: SIGKILL the serving process mid-way
    through a mutation-heavy multi-tenant stream, restart from
    ``--data-dir`` alone, and verify bit-/Stats-exact recovery.

    The child's op stream is a pure function of the step index, so
    the recovered ``mutations_applied`` counter tells the parent
    exactly which prefix committed; WAL-before-apply guarantees the
    recovered state matches a reference that ran precisely that
    prefix."""
    data_dir = tmp_path / "killed"
    child = subprocess.Popen(
        [sys.executable, "-c",
         CHILD_SRC.format(repo=str(REPO_ROOT),
                          src=str(REPO_ROOT / "src"),
                          n_bits=N_BITS, capacity=8 * N_BITS),
         str(data_dir)],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    progress = -1
    try:
        for line in child.stdout:
            line = line.strip()
            if line == "DONE":
                break
            if line != "READY":
                progress = int(line)
            if progress >= 25:
                break
    finally:
        if child.poll() is None:
            os.kill(child.pid, signal.SIGKILL)
        child.wait(timeout=30)
    if progress < 0:
        pytest.fail("child made no progress:\n"
                    + child.stderr.read())

    recovered = recover_service(data_dir, sync="none")
    reference = make_service()
    try:
        setup_soak(reference, N_BITS)
        committed = recovered.mutations_applied
        # Everything the child confirmed applied must have survived;
        # at most one more record (logged, killed before the apply)
        # may replay on top.
        assert committed >= progress + 1
        width = N_BITS
        for index in range(committed):
            width += apply_op(reference, op_for(index, width))
        assert_recovered_equal(reference, recovered)
        info = recovered.durability.last_recovery
        assert info["generation"] >= 1   # snapshots rotated mid-soak
    finally:
        recovered.close()
        reference.close()


def test_shard_worker_kill9_soak_stays_bit_exact(rng):
    """Kill -9 one shard worker per round while the query stream
    runs: every query must still return the exact numpy-truth
    popcount (workers never write column segments, so replaying a
    dead worker's row block is bit-exact), and the pool must account
    one respawn per kill.

    One kill is in flight at a time — fired from a side thread a
    moment into the round so it lands mid-batch when timing allows —
    and joined before the next round, so the pool's respawn-and-
    replay-once contract is never asked to beat a sustained
    kill rate faster than a process spawn."""
    import threading
    import time as _time

    rounds = int(os.environ.get("REPRO_CHAOS_ROUNDS", "4"))
    service = BitwiseService("feram-2tnc", n_bits=N_BITS, n_shards=8,
                             workers=2, capacity=8 * N_BITS)
    service._parallel_min_work = 0
    try:
        table = {name: rng.integers(0, 2, N_BITS, dtype=np.uint8)
                 for name in "abc"}
        for name, bits in table.items():
            service.create_column(name, bits)
        queries = {
            "a & b": int(np.sum(table["a"] & table["b"])),
            "a ^ c": int(np.sum(table["a"] ^ table["c"])),
            "maj(a, b, c)": int(np.sum(
                (table["a"].astype(int) + table["b"]
                 + table["c"]) >= 2)),
        }
        # spin the pool up before the chaos starts
        assert service.query("a & b",
                             use_cache=False).count == queries["a & b"]
        pool = service._worker_pool

        def kill(process):
            _time.sleep(0.001)
            try:
                os.kill(process.pid, signal.SIGKILL)
            except (ProcessLookupError, OSError):
                pass

        kills = rounds * 2
        for round_no in range(kills):
            victim = pool._workers[round_no % pool.n_workers].process
            thread = threading.Thread(target=kill, args=(victim,))
            thread.start()
            try:
                for query, truth in queries.items():
                    result = service.query(query, use_cache=False)
                    assert result.count == truth, \
                        f"round {round_no}: {query}"
            finally:
                thread.join(timeout=5.0)
        assert pool.stats()["respawns"] >= kills - 1
        # the stream survived: one clean post-chaos pass as well
        for query, truth in queries.items():
            assert service.query(query, use_cache=False).count == \
                truth, query
    finally:
        service.close()
