"""``repro explore``: closed-form design-space sweep + Pareto front."""

import json

import pytest

from repro.explore import (
    DesignPoint,
    SWEEP_WORKLOADS,
    default_sweep_geometries,
    evaluate_point,
    format_table,
    main,
    pareto_front,
    run_explore,
    sweep_geometries,
)
from repro.arch.components import reference_geometry
from repro.errors import ArchitectureError


def _point(energy: float, area: float) -> DesignPoint:
    return DesignPoint(
        technology="feram-2tnc", f_nm=28.0, n_caps=3,
        rows_per_bank=64, row_bytes=8192, stacking="vertical",
        energy_nj_per_row=energy * 65.536,
        energy_pj_per_bit=energy, cycles_per_row=100,
        area_nm2_per_bit=area, workload_nj={})


# ----------------------------------------------------------------------
# Pareto mechanics
# ----------------------------------------------------------------------
def test_pareto_front_excludes_dominated_points():
    cheap = _point(1.0, 9.0)
    small = _point(9.0, 1.0)
    dominated = _point(5.0, 5.0)   # beaten by `balanced`
    balanced = _point(4.0, 4.0)
    front = pareto_front([cheap, small, dominated, balanced])
    assert front == [cheap, balanced, small]  # ascending energy
    assert dominated not in front


def test_pareto_keeps_duplicate_optima():
    a, b = _point(1.0, 1.0), _point(1.0, 1.0)
    assert len(pareto_front([a, b])) == 2  # equal, neither dominates


# ----------------------------------------------------------------------
# the sweep
# ----------------------------------------------------------------------
def test_default_grid_covers_acceptance_floor():
    """≥ 2 technologies × ≥ 3 geometry points each."""
    geometries = default_sweep_geometries()
    by_tech = {}
    for g in geometries:
        by_tech.setdefault(g.technology, []).append(g)
    assert set(by_tech) == {"dram", "feram-2tnc"}
    assert all(len(points) >= 3 for points in by_tech.values())


@pytest.fixture(scope="module")
def payload():
    # Small fixed grid: both technologies, three feature sizes at the
    # reference plane counts (6 points, cached probe events shared).
    geometries = sweep_geometries(
        features_nm=(28.0, 22.0, 16.0), n_caps_values=(3,))
    return run_explore(geometries)


def test_payload_is_valid_and_json_serializable(payload):
    encoded = json.loads(json.dumps(payload))
    assert encoded["suite"] == list(SWEEP_WORKLOADS)
    assert encoded["technologies"] == ["dram", "feram-2tnc"]
    assert len(encoded["points"]) == 6
    for point in encoded["points"]:
        assert point["energy_pj_per_bit"] > 0
        assert point["area_nm2_per_bit"] > 0
        assert set(point["workload_nj"]) == set(SWEEP_WORKLOADS)
    front = encoded["pareto"]
    assert front
    marked = [p for p in encoded["points"] if p["pareto"]]
    assert len(marked) == len(front)


def test_front_members_are_mutually_nondominated(payload):
    front = payload["pareto"]
    for a in front:
        for b in front:
            if a is b:
                continue
            assert not (
                a["energy_pj_per_bit"] <= b["energy_pj_per_bit"]
                and a["area_nm2_per_bit"] <= b["area_nm2_per_bit"]
                and (a["energy_pj_per_bit"] < b["energy_pj_per_bit"]
                     or a["area_nm2_per_bit"]
                     < b["area_nm2_per_bit"]))


def test_feram_beats_dram_on_energy_at_reference(payload):
    """The paper's headline direction survives the sweep: at the same
    feature size, 2T-nC FeRAM spends less energy per bit than DRAM."""
    by_key = {(p["technology"], p["f_nm"]): p
              for p in payload["points"]}
    for f_nm in (28.0, 22.0, 16.0):
        assert (by_key[("feram-2tnc", f_nm)]["energy_pj_per_bit"]
                < by_key[("dram", f_nm)]["energy_pj_per_bit"])


def test_reference_point_costing_uses_assembled_spec():
    """The sweep's reference point is costed through a spec that is
    equal to the default constant — no parallel cost model."""
    from repro.arch.spec import FERAM_2TNC_8GB
    point = evaluate_point(reference_geometry("feram-2tnc"))
    assert point.energy_nj_per_row > 0
    assert point.rows_per_bank == FERAM_2TNC_8GB.rows_per_bank
    assert point.row_bytes == FERAM_2TNC_8GB.row_bytes


def test_empty_sweep_rejected():
    with pytest.raises(ArchitectureError):
        run_explore([])


def test_format_table_lists_every_point(payload):
    table = format_table(payload)
    assert table.count("\n") >= len(payload["points"]) + 2
    assert "pJ/bit" in table and "pareto front:" in table


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_json_emits_valid_pareto_front(capsys):
    code = main(["--json", "--feature", "28", "22", "16",
                 "--caps", "3"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert len(payload["technologies"]) >= 2
    assert len(payload["points"]) >= 6
    assert payload["pareto"]


def test_cli_table_output(capsys):
    code = main(["--tech", "feram-2tnc", "--feature", "28",
                 "--caps", "2", "3", "4"])
    assert code == 0
    out = capsys.readouterr().out
    assert "feram-2tnc" in out and "pareto front:" in out
