"""End-to-end reproduction checks: every experiment driver passes.

These are the repository's acceptance tests — each paper artefact's
driver must report all its records within tolerance.  Slower SPICE/
thermal/1GB-scale drivers run here once with module-scoped caching.
"""

import pytest

from repro.experiments import (
    run_energy_params,
    run_fig1,
    run_fig2,
    run_fig3d,
    run_fig3f,
    run_fig4d,
    run_fig4e,
    run_fig4f,
    run_fig4gh,
    run_fig4ij,
    run_fig5,
    run_fig6,
    run_fig7,
)


def _assert_report_passes(report):
    failing = [rec.format() for rec in report.records if not rec.passed]
    assert report.passed, "\n".join(failing)


class TestDeviceExperiments:
    def test_fig4d_transfer_curve(self):
        _assert_report_passes(run_fig4d())

    def test_fig4e_pv_loops(self):
        _assert_report_passes(run_fig4e())

    def test_fig4f_endurance(self):
        _assert_report_passes(run_fig4f())

    def test_fig4gh_kinetics(self):
        _assert_report_passes(run_fig4gh(quick=True))

    def test_fig4ij_minority(self):
        _assert_report_passes(run_fig4ij())


class TestCellExperiments:
    def test_fig2_sensing(self):
        _assert_report_passes(run_fig2())

    def test_fig3d_not(self):
        _assert_report_passes(run_fig3d())

    def test_fig3f_tba(self):
        _assert_report_passes(run_fig3f())


class TestSystemExperiments:
    def test_fig1_comparison(self):
        _assert_report_passes(run_fig1())

    def test_fig5_area(self):
        _assert_report_passes(run_fig5())

    def test_fig6_workloads_paper_size(self):
        # The paper's 1 GB size: refresh overhead grows with runtime x
        # footprint, so the headline ratios are specific to this size.
        # Counting mode keeps this fast.
        _assert_report_passes(run_fig6(1 << 30))

    def test_fig7_thermal(self):
        _assert_report_passes(run_fig7())

    def test_energy_params(self):
        _assert_report_passes(run_energy_params())


class TestHeadlineNumbers:
    """The paper's abstract claims, end to end."""

    def test_2_5x_energy(self):
        report = run_fig6(1 << 30)
        ratio = report.record("geomean energy reduction").measured
        assert 2.0 <= ratio <= 3.0

    def test_2x_performance(self):
        report = run_fig6(1 << 30)
        ratio = report.record("geomean performance gain").measured
        assert 1.6 <= ratio <= 2.2

    def test_4_18x_area(self):
        report = run_fig5()
        assert report.record("footprint reduction").measured == \
            pytest.approx(4.18, abs=0.01)

    def test_351_88k_peak(self):
        report = run_fig7()
        assert report.record(
            "peak temperature (bitmap query)").measured == pytest.approx(
                351.88, abs=1.0)

    def test_endurance_1e6(self):
        report = run_fig4f()
        assert report.record("stable through 1e6 cycles").measured == 1.0
