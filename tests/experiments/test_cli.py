"""CLI entry-point tests."""

import pytest

from repro.cli import main
from repro.errors import ExperimentError


class TestCli:
    def test_no_args_lists_experiments(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out
        assert "usage" in out

    def test_runs_named_experiment(self, capsys):
        assert main(["fig5"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out
        assert "PASS" in out

    def test_multiple_experiments(self, capsys):
        assert main(["fig5", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out and "fig1" in out

    def test_unknown_experiment_raises(self):
        with pytest.raises(ExperimentError):
            main(["not_a_fig"])


class TestExtensionExperiments:
    def test_writeback_passes(self):
        from repro.experiments.extensions import run_writeback
        report = run_writeback()
        assert report.passed

    def test_variation_small_passes(self):
        from repro.experiments.extensions import run_variation
        report = run_variation(n_cells=6)
        assert report.record("yield grows with grain count").passed
        assert report.record("hard failures at 1024 grains").passed
