"""Experiment registry and record-type tests."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.result import ExperimentReport, Record

#: every artefact in DESIGN.md's per-experiment index must be registered
DESIGN_INDEX = ("fig1", "fig2", "fig3d", "fig3f", "fig4d", "fig4e",
                "fig4f", "fig4gh", "fig4ij", "fig5", "fig6", "fig7",
                "energy_params")


class TestRegistry:
    def test_design_index_covered(self):
        for experiment_id in DESIGN_INDEX:
            assert experiment_id in EXPERIMENTS

    def test_unknown_experiment_raises(self):
        with pytest.raises(ExperimentError, match="unknown experiment"):
            run_experiment("nope")

    def test_drivers_are_callable(self):
        assert all(callable(driver) for driver in EXPERIMENTS.values())


class TestRecord:
    def test_pass_within_tolerance(self):
        assert Record("x", measured=2.4, paper=2.5, tolerance=0.1).passed

    def test_fail_outside_tolerance(self):
        assert not Record("x", measured=5.0, paper=2.5,
                          tolerance=0.1).passed

    def test_shape_only_always_passes(self):
        assert Record("x", measured=123.0, paper=None).passed

    def test_zero_paper_uses_absolute(self):
        assert Record("x", measured=0.05, paper=0.0, tolerance=0.1).passed
        assert not Record("x", measured=0.5, paper=0.0,
                          tolerance=0.1).passed

    def test_format_shows_status(self):
        good = Record("metric", measured=1.0, paper=1.0)
        assert "[ok]" in good.format()
        bad = Record("metric", measured=9.0, paper=1.0, tolerance=0.1)
        assert "MISMATCH" in bad.format()


class TestReport:
    def _report(self):
        report = ExperimentReport("figx", "test")
        report.add(Record("a", measured=1.0, paper=1.0))
        report.add(Record("b", measured=2.0, paper=None))
        return report

    def test_passed_when_all_pass(self):
        assert self._report().passed

    def test_failed_when_any_fails(self):
        report = self._report()
        report.add(Record("c", measured=10.0, paper=1.0, tolerance=0.1))
        assert not report.passed

    def test_record_lookup(self):
        report = self._report()
        assert report.record("a").measured == 1.0
        with pytest.raises(ExperimentError):
            report.record("missing")

    def test_format_has_header_and_footer(self):
        text = self._report().format()
        assert text.startswith("== figx")
        assert "PASS" in text
