"""Fig. 6 runner tests: table structure, ratios, scaling, consistency."""

import numpy as np
import pytest

from repro.arch.primitives import make_engine
from repro.errors import WorkloadError
from repro.workloads import (
    WORKLOAD_CLASSES,
    XorCipher,
    make_workloads,
    run_comparison,
    run_fig6,
)

SMALL = 1 << 20  # 1 MB


@pytest.fixture(scope="module")
def table():
    # Paper size (1 GB): the refresh share — and thus the headline
    # energy ratio — grows with runtime x footprint, so Fig. 6 is
    # regenerated at the size the paper used.  Counting mode is fast.
    return run_fig6(1 << 30)


class TestTable:
    def test_eight_rows(self, table):
        assert len(table.rows) == 8

    def test_paper_workload_names(self, table):
        names = {row.workload for row in table.rows}
        assert names == {"crc8", "xor_cipher", "set_union",
                         "set_intersection", "set_difference",
                         "masked_init", "bitmap_index", "bnn"}

    def test_feram_wins_energy_everywhere(self, table):
        assert all(row.energy_ratio > 1.5 for row in table.rows)

    def test_feram_wins_cycles_everywhere(self, table):
        assert all(row.cycle_ratio > 1.3 for row in table.rows)

    def test_geomeans_in_paper_band(self, table):
        # Paper headline: ~2.5x energy, ~2x cycles.
        assert 2.1 <= table.mean_energy_ratio() <= 2.9
        assert 1.7 <= table.mean_cycle_ratio() <= 2.2

    def test_row_lookup(self, table):
        assert table.row("crc8").workload == "crc8"
        with pytest.raises(WorkloadError):
            table.row("nope")

    def test_format_contains_all_titles(self, table):
        text = table.format()
        for row in table.rows:
            assert row.title in text
        assert "geomean" in text


class TestConsistency:
    def test_counting_equals_functional_accounting(self):
        """The counting-mode ledger must match the functional run's."""
        wl = XorCipher(SMALL)
        functional = run_comparison(wl, functional=True)
        counting = run_comparison(wl, functional=False)
        assert functional.dram.cycles == counting.dram.cycles
        assert functional.feram.cycles == counting.feram.cycles
        assert functional.dram.energy_j == pytest.approx(
            counting.dram.energy_j)
        assert functional.feram.energy_j == pytest.approx(
            counting.feram.energy_j)

    def test_energy_scales_linearly_with_size(self):
        small = run_comparison(XorCipher(SMALL)).feram.energy_j
        large = run_comparison(XorCipher(4 * SMALL)).feram.energy_j
        assert large / small == pytest.approx(4.0, rel=0.05)

    def test_cycles_scale_linearly_with_size(self):
        small = run_comparison(XorCipher(SMALL)).feram.cycles
        large = run_comparison(XorCipher(4 * SMALL)).feram.cycles
        assert large / small == pytest.approx(4.0, rel=0.05)

    def test_charge_io_increases_cost(self):
        base = run_comparison(XorCipher(SMALL))
        with_io = run_comparison(XorCipher(SMALL), charge_io=True)
        assert with_io.feram.energy_j > base.feram.energy_j
        assert with_io.feram.cycles > base.feram.cycles

    def test_make_workloads_instantiates_all(self):
        workloads = make_workloads(SMALL)
        assert len(workloads) == len(WORKLOAD_CLASSES)
        assert all(wl.n_bytes == SMALL for wl in workloads)

    def test_detail_categories_present(self, table):
        detail = table.row("set_union").dram.detail
        assert detail["energy_refresh_nj"] > 0
        assert table.row("set_union").feram.detail[
            "energy_refresh_nj"] == 0

    def test_workload_result_energy_nj(self, table):
        row = table.row("set_union")
        assert row.dram.energy_nj == pytest.approx(
            row.dram.energy_j * 1e9)

    def test_missing_output_raises(self):
        from repro.workloads.base import Workload

        class Broken(Workload):
            name = "broken"
            title = "Broken"

            def execute(self, engine, io):
                io.input("x", 64)

            def reference(self, inputs):
                return {"y": np.zeros(64, dtype=np.uint8)}

        with pytest.raises(WorkloadError, match="no output"):
            Broken(64).run(make_engine("dram", functional=True))
