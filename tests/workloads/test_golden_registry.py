"""Golden-fixture guard for the registry-assembled default specs.

Rebuilds ``FERAM_2TNC_8GB`` / ``DRAM_8GB`` **from the component
registry** and asserts the Fig. 6 energies and the program workloads'
per-row ACP/AAP primitive counts against the checked-in
``tests/data/golden_stats.json`` — deliberately with no
``GOLDEN_REGEN`` escape hatch: if assembly ever drifts off the
calibrated constants, this fails and the registry (not the fixture)
must be fixed.
"""

import json
import math

from repro.arch.components import paper_memory_spec
from repro.arch.program import compile_program
from repro.arch.spec import DRAM_8GB, FERAM_2TNC_8GB
from repro.workloads import run_fig6

from tests.workloads.test_golden_stats import (
    GOLDEN_PATH,
    PROGRAM_CASES,
)


def _golden() -> dict:
    assert GOLDEN_PATH.exists(), "golden fixture missing"
    return json.loads(GOLDEN_PATH.read_text())


def test_rebuilt_specs_match_module_constants():
    """A fresh registry assembly equals the import-time constants."""
    assert paper_memory_spec("dram") == DRAM_8GB
    assert paper_memory_spec("feram-2tnc") == FERAM_2TNC_8GB


def test_fig6_from_rebuilt_specs_matches_golden():
    """Fig. 6 recomputed through freshly assembled specs reproduces
    the frozen energies and cycle counts."""
    golden = _golden()
    table = run_fig6(golden["fig6_bytes"], functional=False,
                     dram_spec=paper_memory_spec("dram"),
                     feram_spec=paper_memory_spec("feram-2tnc"))
    assert {row.workload for row in table.rows} == set(golden["fig6"])
    for row in table.rows:
        entry = golden["fig6"][row.workload]
        assert math.isclose(row.dram.energy_j,
                            entry["dram"]["energy_j"],
                            rel_tol=1e-9), row.workload
        assert math.isclose(row.feram.energy_j,
                            entry["feram"]["energy_j"],
                            rel_tol=1e-9), row.workload
        assert row.dram.cycles == entry["dram"]["cycles"]
        assert row.feram.cycles == entry["feram"]["cycles"]


def test_program_primitives_match_golden():
    """Per-row ACP/AAP counts of the program workloads stay frozen."""
    golden = _golden()
    for name, make in PROGRAM_CASES.items():
        program = make().as_program(seed=1).program
        entry = golden["programs"][name]
        assert len(program) == entry["statements"], name
        assert compile_program(program, inverting=True).primitives \
            == entry["per_row"]["feram_acp"], name
        assert compile_program(program, inverting=False).primitives \
            == entry["per_row"]["dram_aap"], name
