"""Program-form workloads: BNN / CRC8 / XOR cipher / masked init.

Every workload program is pinned three ways: vector-vs-reference via
the differential harness, outputs vs the workload's own numpy
reference, and the service runner's end-to-end verification flag.
"""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads import (
    PROGRAM_WORKLOADS,
    BnnInference,
    Crc8,
    MaskedInit,
    XorCipher,
    generate_inputs,
    run_workload,
)
from repro.workloads.crc8 import crc8_reference
from tests.support.differential import assert_program_equivalent

#: small-geometry instances (fast, still multi-shard / multi-word)
SMALL = {
    "bnn": lambda: BnnInference(1 << 12, n_features=8, n_neurons=3),
    "crc8": lambda: Crc8(1 << 11, record_bytes=4),
    "xor_cipher": lambda: XorCipher(1 << 11),
    "masked_init": lambda: MaskedInit(3 << 10),
}


def _table(workload_program, seed=3):
    return generate_inputs(workload_program, seed=seed)


class TestWorkloadProgramsDifferential:
    @pytest.mark.parametrize("technology", ["feram-2tnc", "dram"])
    @pytest.mark.parametrize("name", sorted(SMALL))
    def test_vector_matches_reference_and_numpy(self, technology,
                                                name):
        workload_program = SMALL[name]().as_program(seed=1)
        table = _table(workload_program)
        # Ground truth from the workload's own numpy reference (the
        # harness additionally checks the program-level numpy eval).
        _, vec = assert_program_equivalent(
            workload_program.program, table, technology=technology,
            check_ground_truth=False)
        expected = workload_program.reference(table)
        assert set(workload_program.program.outputs) == set(expected)
        for key, bits in expected.items():
            assert np.array_equal(vec.outputs[key],
                                  bits.astype(np.uint8)), key


class TestWorkloadPrograms:
    def test_crc8_program_matches_table_free_reference(self):
        workload = Crc8(1 << 11, record_bytes=4)
        workload_program = workload.as_program()
        table = _table(workload_program, seed=9)
        lanes = workload.n_lanes
        records = np.zeros((lanes, workload.record_bytes),
                           dtype=np.uint8)
        for byte_idx in range(workload.record_bytes):
            for bit in range(8):
                plane = table[f"byte{byte_idx}_bit{bit}"]
                records[:, byte_idx] |= plane << bit
        crc = crc8_reference(records)
        _, vec = assert_program_equivalent(workload_program.program,
                                           table,
                                           check_ground_truth=False)
        got = np.zeros(lanes, dtype=np.uint8)
        for k in range(8):
            got |= (vec.outputs[f"crc{k}"] << k).astype(np.uint8)
        assert np.array_equal(got, crc)

    def test_bnn_weight_complements_are_free_on_vector_path(self):
        """XNOR against a constant weight bit is an expression-level
        complement — an AIG edge attribute, not an op — so the number
        of vector kernel steps is identical for every weight draw (the
        engine replay may pay a NOT or two of parity steering; the
        bytecode never grows)."""
        from repro.arch.program import compile_program

        workload = BnnInference(1 << 10, n_features=4, n_neurons=1)
        step_counts = set()
        for seed in range(10):
            program = workload.as_program(seed=seed)
            cprog = compile_program(program.program)
            step_counts.add(len(cprog.vector_program().steps))
            assert cprog.primitives <= cprog.naive_primitives
        assert len(step_counts) == 1

    def test_bnn_cross_neuron_cse_shrinks_vector_steps(self):
        """Neurons sharing weight structure share popcount sub-trees
        on the vector path (fewer kernel steps than 2x one neuron)."""
        from repro.arch.program import compile_program

        one = BnnInference(1 << 10, n_features=8, n_neurons=1)
        two = BnnInference(1 << 10, n_features=8, n_neurons=2)
        # Seed 5 happens to give the two neurons overlapping rows; any
        # seed works for the <= bound, which is the real claim.
        steps_one = len(compile_program(
            one.as_program(seed=5).program).vector_program().steps)
        steps_two = len(compile_program(
            two.as_program(seed=5).program).vector_program().steps)
        assert steps_two < 2 * steps_one


class TestRunWorkload:
    @pytest.mark.parametrize("backend", ["vector", "reference"])
    @pytest.mark.parametrize("name", sorted(PROGRAM_WORKLOADS))
    def test_runner_verifies(self, name, backend):
        run = run_workload(SMALL[name](), backend=backend, n_shards=3)
        assert run.verified is True
        assert run.backend == backend
        assert run.energy_j > 0 and run.cycles > 0
        assert run.n_lanes >= 64

    def test_runner_by_name_counting_mode(self):
        run = run_workload("xor_cipher", n_bytes=1 << 20,
                           functional=False)
        assert run.verified is None
        assert run.cycles > 0

    def test_runner_unknown_name(self):
        with pytest.raises(WorkloadError, match="no program workload"):
            run_workload("bitmap_index")

    def test_non_program_workload_raises(self):
        from repro.workloads import SetUnion

        with pytest.raises(WorkloadError, match="no program form"):
            SetUnion(1 << 12).as_program()

    def test_cli_workload_subcommand(self, capsys):
        from repro.cli import main

        code = main(["workload", "masked_init", "--bytes", "6144",
                     "--shards", "2", "--per-statement"])
        out = capsys.readouterr().out
        assert code == 0
        assert "verified  : True" in out
        assert "sel(mask, init, data)" in out

    def test_cli_workload_json(self, capsys):
        import json

        from repro.cli import main

        code = main(["workload", "xor_cipher", "--bytes", "4096",
                     "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["verified"] is True
        assert payload["statements"] == 1
