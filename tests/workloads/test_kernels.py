"""Per-workload functional verification against numpy references."""

import numpy as np
import pytest

from repro.arch.primitives import make_engine
from repro.workloads import (
    BitmapIndexQuery,
    BnnInference,
    Crc8,
    MaskedInit,
    SetDifference,
    SetIntersection,
    SetUnion,
    XorCipher,
    crc8_reference,
)
from repro.errors import WorkloadError

SIZE = 48 * 1024  # 48 KB keeps functional runs fast

TECHS = ("dram", "feram-2tnc")


def _run_verified(workload, tech, seed=3):
    engine = make_engine(tech, functional=True)
    result = workload.run(engine, seed=seed)
    assert result.verified, f"{workload.name} failed on {tech}"
    return result


@pytest.mark.parametrize("tech", TECHS)
class TestFunctionalCorrectness:
    def test_xor_cipher(self, tech):
        _run_verified(XorCipher(SIZE), tech)

    def test_set_union(self, tech):
        _run_verified(SetUnion(SIZE), tech)

    def test_set_intersection(self, tech):
        _run_verified(SetIntersection(SIZE), tech)

    def test_set_difference(self, tech):
        _run_verified(SetDifference(SIZE), tech)

    def test_masked_init(self, tech):
        _run_verified(MaskedInit(SIZE), tech)

    def test_bitmap_index(self, tech):
        _run_verified(BitmapIndexQuery(SIZE), tech)

    def test_crc8(self, tech):
        _run_verified(Crc8(SIZE, record_bytes=4), tech)

    def test_bnn(self, tech):
        _run_verified(BnnInference(SIZE), tech)


class TestCrc8Reference:
    def test_known_check_value(self):
        # CRC-8 (poly 0x07, init 0x00) of "123456789" is 0xF4.
        data = np.frombuffer(b"123456789", dtype=np.uint8)
        assert crc8_reference(data[None, :])[0] == 0xF4

    def test_zero_data_zero_crc(self):
        records = np.zeros((5, 8), dtype=np.uint8)
        assert np.all(crc8_reference(records) == 0)

    def test_vectorized_matches_scalar(self, rng):
        records = rng.integers(0, 256, (16, 6), dtype=np.uint8)
        batch = crc8_reference(records)
        for i in range(16):
            single = crc8_reference(records[i: i + 1])
            assert batch[i] == single[0]

    def test_different_seeds_different_outputs(self):
        r1 = _run_verified(Crc8(SIZE, record_bytes=4), "feram-2tnc",
                           seed=1)
        r2 = _run_verified(Crc8(SIZE, record_bytes=4), "feram-2tnc",
                           seed=2)
        assert r1.verified and r2.verified


class TestGeometry:
    def test_workload_rejects_zero_size(self):
        with pytest.raises(WorkloadError):
            XorCipher(0)

    def test_crc_lane_count(self):
        wl = Crc8(1 << 20, record_bytes=64)
        assert wl.n_lanes == (1 << 20) // 64

    def test_bnn_lane_count(self):
        wl = BnnInference(1 << 20)
        assert wl.n_lanes == (1 << 20) * 8 // wl.n_features

    def test_vector_bits_word_aligned(self):
        wl = XorCipher(1000)
        assert wl.vector_bits(0.5) % 64 == 0

    def test_bnn_threshold(self):
        assert BnnInference(SIZE).threshold == 8

    def test_bnn_custom_shape(self):
        wl = BnnInference(SIZE, n_features=8, n_neurons=2)
        assert wl.n_features == 8
        assert wl.threshold == 4
        _run_verified(wl, "feram-2tnc")
