"""Golden-stats regression: frozen cost figures for fig6 + programs.

The analytic cost model is the paper-facing output of this repo; a
refactor that silently shifts an energy or primitive count is a
correctness bug even when every bit still verifies.  This suite pins
per-workload energy/cycle figures (the Fig. 6 counting-mode table at a
fixed small geometry, both technologies) and the program-form
workloads' per-row ACP/AAP primitives and attributed service costs
against a checked-in fixture, failing on any drift.

Regenerate intentionally with::

    GOLDEN_REGEN=1 PYTHONPATH=src python -m pytest \
        tests/workloads/test_golden_stats.py -q
"""

import json
import math
import os
from pathlib import Path

import pytest

from repro.arch.program import compile_program
from repro.workloads import run_fig6, run_workload
from repro.workloads.bnn import BnnInference
from repro.workloads.crc8 import Crc8
from repro.workloads.masked_init import MaskedInit
from repro.workloads.xor_cipher import XorCipher

GOLDEN_PATH = Path(__file__).parent.parent / "data" / "golden_stats.json"

#: fixed fig6 geometry (counting mode: deterministic, payload-free)
FIG6_BYTES = 1 << 13

#: fixed program-workload geometries (functional, seed-pinned)
PROGRAM_CASES = {
    "bnn": lambda: BnnInference(1 << 12, n_features=8, n_neurons=2),
    "crc8": lambda: Crc8(1 << 11, record_bytes=4),
    "xor_cipher": lambda: XorCipher(1 << 11),
    "masked_init": lambda: MaskedInit(3 << 10),
}


def compute_golden() -> dict:
    table = run_fig6(FIG6_BYTES, functional=False)
    fig6 = {
        row.workload: {
            "dram": {"energy_j": row.dram.energy_j,
                     "cycles": row.dram.cycles},
            "feram": {"energy_j": row.feram.energy_j,
                      "cycles": row.feram.cycles},
        }
        for row in table.rows
    }
    programs = {}
    for name, make in PROGRAM_CASES.items():
        workload = make()
        program = workload.as_program(seed=1).program
        entry = {
            "statements": len(program),
            "per_row": {
                "feram_acp":
                    compile_program(program, inverting=True).primitives,
                "dram_aap":
                    compile_program(program,
                                    inverting=False).primitives,
            },
        }
        for technology in ("feram-2tnc", "dram"):
            run = run_workload(make(), technology=technology,
                               n_shards=3, seed=1)
            assert run.verified is True, (name, technology)
            entry[technology] = {
                "energy_j": run.energy_j,
                "cycles": run.cycles,
                "lanes": run.n_lanes,
            }
        programs[name] = entry
    return {"fig6_bytes": FIG6_BYTES, "fig6": fig6,
            "programs": programs}


def _assert_matches(golden, fresh, path=""):
    """Exact integers; energies at 1e-9 rtol (float accumulation)."""
    assert type(golden) is type(fresh) or \
        isinstance(golden, (int, float)), path
    if isinstance(golden, dict):
        assert set(golden) == set(fresh), path
        for key in golden:
            _assert_matches(golden[key], fresh[key], f"{path}/{key}")
    elif isinstance(golden, float):
        assert math.isclose(golden, fresh, rel_tol=1e-9,
                            abs_tol=1e-18), \
            f"{path}: {golden!r} -> {fresh!r} (silent cost drift)"
    else:
        assert golden == fresh, \
            f"{path}: {golden!r} -> {fresh!r} (silent cost drift)"


@pytest.fixture(scope="module")
def fresh():
    return compute_golden()


def test_golden_stats_frozen(fresh):
    if os.environ.get("GOLDEN_REGEN"):
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(fresh, indent=2,
                                          sort_keys=True) + "\n")
        pytest.skip(f"regenerated {GOLDEN_PATH}")
    assert GOLDEN_PATH.exists(), \
        "golden fixture missing - run with GOLDEN_REGEN=1"
    golden = json.loads(GOLDEN_PATH.read_text())
    _assert_matches(golden, fresh)


def test_golden_covers_required_workloads():
    golden = json.loads(GOLDEN_PATH.read_text())
    assert {"bnn", "crc8"} <= set(golden["programs"])
    assert {"bnn", "crc8"} <= set(golden["fig6"])
    for entry in golden["programs"].values():
        assert entry["per_row"]["feram_acp"] > 0
        assert entry["per_row"]["dram_aap"] > 0


def test_fig6_feram_beats_dram_in_golden():
    """The paper's headline direction is part of the frozen contract."""
    golden = json.loads(GOLDEN_PATH.read_text())
    ratios = [entry["dram"]["energy_j"] / entry["feram"]["energy_j"]
              for entry in golden["fig6"].values()]
    geomean = math.exp(sum(map(math.log, ratios)) / len(ratios))
    assert geomean > 1.5
