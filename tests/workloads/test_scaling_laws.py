"""Workload scaling-law tests: accounting must extrapolate cleanly.

The 1 GB Fig.-6 numbers rest on counting-mode extrapolation; these tests
pin the scaling structure (linear compute, superlinear refresh) that the
EXPERIMENTS.md accounting section documents.
"""

import pytest

from repro.workloads import (
    BitmapIndexQuery,
    BnnInference,
    Crc8,
    SetUnion,
    XorCipher,
    run_comparison,
)

MB = 1 << 20


class TestComputeScaling:
    @pytest.mark.parametrize("cls", [XorCipher, SetUnion,
                                     BitmapIndexQuery])
    def test_feram_cycles_linear(self, cls):
        small = run_comparison(cls(4 * MB)).feram.cycles
        large = run_comparison(cls(16 * MB)).feram.cycles
        assert large / small == pytest.approx(4.0, rel=0.02)

    def test_crc_cycles_scale_with_record_count(self):
        # Same total bytes, shorter records => more lanes, same bits:
        # total ops scale with record length x lanes = total bits.
        short = run_comparison(Crc8(4 * MB, record_bytes=8)).feram
        long = run_comparison(Crc8(4 * MB, record_bytes=16)).feram
        assert short.cycles == pytest.approx(long.cycles, rel=0.1)

    def test_bnn_cycles_grow_with_neurons(self):
        few = run_comparison(BnnInference(4 * MB, n_neurons=2)).feram
        many = run_comparison(BnnInference(4 * MB, n_neurons=4)).feram
        assert many.cycles == pytest.approx(2 * few.cycles, rel=0.1)


class TestRefreshScaling:
    def test_dram_refresh_share_grows_with_size(self):
        shares = []
        for size in (4 * MB, 64 * MB):
            result = run_comparison(XorCipher(size)).dram
            share = result.detail["energy_refresh_nj"] \
                / result.detail["energy_total_nj"]
            shares.append(share)
        assert shares[1] > shares[0]

    def test_energy_ratio_grows_with_size(self):
        small = run_comparison(XorCipher(4 * MB)).energy_ratio
        large = run_comparison(XorCipher(256 * MB)).energy_ratio
        assert large > small

    def test_cycle_ratio_size_stable(self):
        small = run_comparison(XorCipher(4 * MB)).cycle_ratio
        large = run_comparison(XorCipher(256 * MB)).cycle_ratio
        assert large == pytest.approx(small, rel=0.05)
