"""Cross-module system tests: the full paper pipeline, end to end.

These exercise module *boundaries*: device physics feeding cell sensing,
cell economics feeding the architecture spec, workload activity feeding
the thermal solve, and the thermal result feeding back into the device
stability check — the complete loop the paper's evaluation walks.
"""

import numpy as np
import pytest

from repro.arch.primitives import make_engine
from repro.arch.writeback import compare_writeback_policies
from repro.core.behavioral import BehavioralCell
from repro.ferro.materials import FAB_HZO
from repro.ferro.thermal_response import check_thermal_stability
from repro.thermal.powermap import (
    memory_power_maps,
    tpu_power_map,
    workload_memory_power,
)
from repro.thermal.solver import solve_steady_state
from repro.thermal.stack import build_fig7_stack
from repro.workloads import BitmapIndexQuery, run_comparison

GIB = 1 << 30


class TestFullPipeline:
    """Workload → power → temperature → ferroelectric stability."""

    @pytest.fixture(scope="class")
    def pipeline(self):
        comparison = run_comparison(BitmapIndexQuery(GIB))
        memory_w = workload_memory_power(comparison.feram)
        stack = build_fig7_stack(3)
        nx, ny = 24, 18
        power = {0: tpu_power_map(nx, ny)}
        layers = [stack.layer_index(n) for n in
                  ("L1-TR", "L2-C1", "L3-C2", "L4-C3", "L5-TW")]
        power.update(memory_power_maps(memory_w, layers, nx, ny))
        result = solve_steady_state(stack, power, nx=nx, ny=ny)
        return comparison, memory_w, result

    def test_memory_power_is_sub_watt(self, pipeline):
        _, memory_w, _ = pipeline
        assert 0.05 < memory_w < 2.0

    def test_peak_in_paper_band(self, pipeline):
        _, _, result = pipeline
        assert result.peak_k == pytest.approx(351.88, abs=3.0)

    def test_ferroelectric_survives_operating_point(self, pipeline):
        _, _, result = pipeline
        report = check_thermal_stability(FAB_HZO, result.peak_k)
        assert report.stable

    def test_power_conservation_through_pipeline(self, pipeline):
        _, memory_w, result = pipeline
        assert result.total_power_w() == pytest.approx(28.0 + memory_w,
                                                       rel=1e-6)

    def test_peak_on_compute_die(self, pipeline):
        _, _, result = pipeline
        layer, _, _ = result.peak_location
        assert result.stack.layers[layer].name == "L0-compute"


class TestEngineEquivalence:
    """Both technologies must compute identical logical results."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_program_identical_outputs(self, seed):
        rng = np.random.default_rng(seed)
        n = 2048
        bits = [rng.integers(0, 2, n, dtype=np.uint8) for _ in range(4)]
        outputs = {}
        for tech in ("dram", "feram-2tnc"):
            eng = make_engine(tech)
            first = eng.load(bits[0])
            vecs = [first] + [eng.load(b, group_with=first)
                              for b in bits[1:]]
            t1 = eng.xor(vecs[0], vecs[1])
            t2 = eng.nand(vecs[2], vecs[3])
            t3 = eng.majority(t1, t2, vecs[0])
            out = eng.select(t3, vecs[1], vecs[2])
            outputs[tech] = out.logical_bits()
        assert np.array_equal(outputs["dram"], outputs["feram-2tnc"])

    def test_same_seed_same_workload_outputs(self):
        from repro.workloads import XorCipher
        results = []
        for _ in range(2):
            eng = make_engine("feram-2tnc")
            wl = XorCipher(1 << 16)
            result = wl.run(eng, seed=42)
            results.append(result)
        assert results[0].energy_j == results[1].energy_j
        assert results[0].cycles == results[1].cycles


class TestDeviceToArchitectureConsistency:
    """Device-model numbers and architecture-spec constants must agree."""

    def test_control_rewrite_period_within_disturb_budget(self):
        from repro.arch.spec import FERAM_2TNC_8GB
        from repro.ferro.materials import NVDRAM_CAL
        from repro.ferro.reliability import reads_until_disturb
        budget = reads_until_disturb(NVDRAM_CAL, v_read=0.5,
                                     t_read=50e-9)
        assert FERAM_2TNC_8GB.control_rewrite_period < budget

    def test_writeback_period_exceeds_control_period(self):
        from repro.arch.spec import FERAM_2TNC_8GB
        _, qnro = compare_writeback_policies()
        assert qnro.reads_per_writeback \
            >= FERAM_2TNC_8GB.control_rewrite_period

    def test_qnro_signal_consistent_between_models(self):
        """SPICE cell and behavioural cell agree on level ordering and
        rough contrast."""
        from repro.core.cell import TwoTnCCell
        from repro.core.operations import CellOperations
        cell = TwoTnCCell(n_caps=3, n_domains=24)
        spice_levels = CellOperations(cell, dt=1e-9).tba_level_sweep()
        behavioral = BehavioralCell(
            n_caps=3, material=cell.material).level_sweep()
        for high, low in [((0, 0, 0), (0, 0, 1)), ((0, 0, 1), (0, 1, 1)),
                          ((0, 1, 1), (1, 1, 1))]:
            assert spice_levels[high] > spice_levels[low]
            assert behavioral[high] > behavioral[low]
        spice_contrast = spice_levels[(0, 0, 0)] / spice_levels[(1, 1, 1)]
        behav_contrast = behavioral[(0, 0, 0)] / behavioral[(1, 1, 1)]
        assert spice_contrast == pytest.approx(behav_contrast, rel=1.5)


class TestThermalConvergence:
    def test_grid_refinement_stable_peak(self):
        stack = build_fig7_stack(3)
        peaks = []
        for nx, ny in ((16, 12), (32, 24)):
            power = {0: tpu_power_map(nx, ny)}
            result = solve_steady_state(stack, power, nx=nx, ny=ny)
            peaks.append(result.peak_k)
        assert peaks[0] == pytest.approx(peaks[1], abs=2.0)
