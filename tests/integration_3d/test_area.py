"""Area and density model tests (§V anchors)."""

import pytest

from repro.errors import ArchitectureError
from repro.integration.area import (
    area_report,
    planar_cell_area_f2,
    planar_cell_area_nm2,
    vertical_cell_area_nm2,
    vertical_reduction_factor,
)
from repro.integration.density import density_comparison
from repro.integration.stack3d import FIG7_DIE, StackedDie, VerticalString


class TestAreaAnchors:
    def test_2t1c_is_30f2(self):
        assert planar_cell_area_f2(1) == 30.0

    def test_2t3c_is_90f2(self):
        assert planar_cell_area_f2(3) == 90.0

    def test_planar_nm2_at_28nm(self):
        assert planar_cell_area_nm2(3) == pytest.approx(90 * 784)

    def test_vertical_footprint(self):
        assert vertical_cell_area_nm2() == pytest.approx(16900)

    def test_paper_reduction_factor(self):
        assert vertical_reduction_factor(3) == pytest.approx(4.18,
                                                             abs=0.01)

    def test_reduction_grows_with_caps(self):
        assert vertical_reduction_factor(4) > vertical_reduction_factor(3)

    def test_validation(self):
        with pytest.raises(ArchitectureError):
            planar_cell_area_f2(0)
        with pytest.raises(ArchitectureError):
            planar_cell_area_nm2(3, f_nm=0.0)
        with pytest.raises(ArchitectureError):
            vertical_cell_area_nm2(footprint_nm=-1.0)

    def test_report_per_bit(self):
        report = area_report(3)
        assert report.planar_nm2_per_bit == pytest.approx(70560 / 3)
        assert report.vertical_nm2_per_bit == pytest.approx(16900 / 3)


class TestVerticalString:
    def test_layers_n_plus_2(self):
        assert VerticalString(n_caps=3).n_layers == 5

    def test_layer_names(self):
        names = VerticalString(n_caps=3).layer_names()
        assert names == ["T_R", "C1", "C2", "C3", "T_W"]

    def test_bits_per_string(self):
        assert VerticalString(n_caps=3).bits == 3

    def test_validation(self):
        with pytest.raises(ArchitectureError):
            VerticalString(n_caps=0)


class TestStackedDie:
    def test_fig7_capacity_near_2gb(self):
        assert FIG7_DIE.capacity_gb == pytest.approx(2.0, rel=0.1)

    def test_capacity_scales_with_area(self):
        double = StackedDie(width_mm=28.4, height_mm=10.65)
        assert double.capacity_bits == pytest.approx(
            2 * FIG7_DIE.capacity_bits, rel=0.01)

    def test_periphery_reduces_capacity(self):
        lean = StackedDie(width_mm=14.2, height_mm=10.65,
                          periphery_overhead=0.0)
        assert lean.capacity_bits > FIG7_DIE.capacity_bits

    def test_validation(self):
        with pytest.raises(ArchitectureError):
            StackedDie(width_mm=0.0, height_mm=1.0)


class TestDensity:
    def test_single_deck_gain_matches_area(self):
        assert density_comparison(3).storage_gain == pytest.approx(
            4.18, abs=0.01)

    def test_decks_multiply(self):
        d1 = density_comparison(3, n_decks=1)
        d4 = density_comparison(3, n_decks=4)
        assert d4.storage_gain == pytest.approx(4 * d1.storage_gain)

    def test_compute_gain_equals_cell_gain(self):
        d = density_comparison(3)
        assert d.compute_gain == pytest.approx(
            d.storage_gain)

    def test_validates_decks(self):
        with pytest.raises(ArchitectureError):
            density_comparison(3, n_decks=0)
