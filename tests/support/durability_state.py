"""Shared helpers for the durability and chaos suites.

* :func:`durable_state` / :func:`assert_recovered_equal` pin the
  recovery contract — bit-exact column payloads, exact tenant and
  write-back state, Stats-allclose compute ledger (WAL replay folds a
  batch's per-item charges into one summed delta, so the ledger is
  compared under float reassociation tolerance).
* :func:`setup_soak` / :func:`op_for` / :func:`apply_op` define the
  deterministic multi-tenant mutation stream used by the chaos soak
  and the kill -9 child process — both sides regenerate the exact
  same ops from the step index alone, so the parent can rebuild the
  uninterrupted reference for any crash point.
"""

from __future__ import annotations

import numpy as np

from repro.service.durability import stats_from_dict

SOAK_TENANTS = (None, "t1", "t2")
SOAK_COLUMNS = ("x", "y")


def durable_state(service) -> tuple[dict, dict]:
    """The service's durable meta + raw column payloads."""
    with service._table_lock:
        with service._stats_lock:
            meta = service._durable_state_locked()
        columns = {physical: np.asarray(
                       service._store.bits(physical)).copy()
                   for physical in service._columns}
    return meta, columns


def assert_recovered_equal(expected, recovered) -> None:
    a, a_cols = durable_state(expected)
    b, b_cols = durable_state(recovered)
    assert set(a_cols) == set(b_cols)
    for name in a_cols:
        assert np.array_equal(a_cols[name], b_cols[name]), \
            f"column {name!r} bits diverge after recovery"
    a_tenants = {t["name"]: t for t in a.pop("tenants")}
    b_tenants = {t["name"]: t for t in b.pop("tenants")}
    assert a_tenants == b_tenants
    assert stats_from_dict(a.pop("ledger")).allclose(
        stats_from_dict(b.pop("ledger")))
    a_wb, b_wb = a.pop("writeback"), b.pop("writeback")
    assert stats_from_dict(a_wb.pop("stats")).allclose(
        stats_from_dict(b_wb.pop("stats")))
    assert a_wb == b_wb
    # Served-traffic counters are observability, not durable state:
    # only the mutation counter is recovered exactly (cache hits log
    # nothing, so queries_served freezes at the snapshot).
    a_counters, b_counters = a.pop("counters"), b.pop("counters")
    assert a_counters["mutations_applied"] == \
        b_counters["mutations_applied"]
    assert a == b


# ----------------------------------------------------------------------
# deterministic multi-tenant mutation stream
# ----------------------------------------------------------------------
def setup_soak(service, width: int) -> None:
    """Tenants + columns every soak op targets (all barriers logged)."""
    rng = np.random.default_rng(99)
    service.register_tenant("t1", quota_energy_nj=None)
    service.register_tenant("t2", max_pending=16)
    for tenant in SOAK_TENANTS:
        for name in SOAK_COLUMNS:
            service.create_column(
                name, (rng.random(width) < 0.5).astype(np.uint8),
                tenant=tenant)


def op_for(index: int, width: int) -> tuple:
    """The ``index``-th soak op for a table currently ``width`` wide.

    Purely a function of its arguments — the reference run regenerates
    the identical op sequence after a crash."""
    rng = np.random.default_rng(7_000_000 + index)
    tenant = SOAK_TENANTS[index % len(SOAK_TENANTS)]
    name = SOAK_COLUMNS[index % len(SOAK_COLUMNS)]
    kind = ("update", "write", "append")[int(rng.integers(3))]
    if kind == "update":
        return ("update", tenant, name,
                (rng.random(width) < 0.5).astype(np.uint8))
    if kind == "write":
        offset = int(rng.integers(0, width - 8))
        length = int(rng.integers(1, min(64, width - offset) + 1))
        return ("write", tenant, name, offset,
                (rng.random(length) < 0.5).astype(np.uint8))
    n = int(rng.integers(1, 9))
    return ("append", tenant, name,
            (rng.random(n) < 0.5).astype(np.uint8))


def apply_op(service, op: tuple) -> int:
    """Apply one soak op; returns the table's width delta."""
    kind, tenant, name = op[0], op[1], op[2]
    if kind == "update":
        service.update_column(name, op[3], tenant=tenant)
        return 0
    if kind == "write":
        service.write_slice(name, op[3], op[4], tenant=tenant)
        return 0
    service.append_rows({name: op[3]}, len(op[3]), tenant=tenant)
    return len(op[3])
