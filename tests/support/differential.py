"""Differential-testing harness: vector vs reference execution.

Two reusable assertions pin the equivalence contract of the service:

* :func:`assert_program_equivalent` — for any program and table, the
  columnar vector backend must be indistinguishable from the engine
  replay — same output bits, same popcounts, the same attributed
  :class:`~repro.arch.commands.Stats` *per statement*
  (``Stats.allclose``: integer counts/cycles exact, energies at float
  tolerance), and the same aggregate service ledgers.
* :func:`assert_ops_equivalent` — for any serialized **op script**
  interleaving queries with column mutations (update / slice write /
  append / drop / create), both backends must agree with each other
  *and* with a plain-numpy shadow table after every step — bits,
  counts, per-query Stats, mutation dirty-row accounting, and the
  disturb/scrub maintenance ledger.

Every workload, mutation and property test routes through here
instead of re-implementing the comparison.
"""

from __future__ import annotations

import math

import numpy as np

from repro.service import BitwiseService


def numpy_program_eval(program, table):
    """Ground-truth evaluation of a program on plain numpy bit arrays.

    Statements execute sequentially over an environment seeded with the
    table columns; shadowing rebinds for subsequent statements only.
    Returns the final bindings of the program outputs.
    """
    from repro.arch import expr as e

    width = len(next(iter(table.values())))

    def eval_expr(node, env):
        if isinstance(node, e.Col):
            return env[node.name]
        if isinstance(node, e.Const):
            return np.full(width, node.bit, dtype=np.uint8)
        kids = [eval_expr(k, env) for k in node.children()]
        if isinstance(node, e.Not):
            return 1 - kids[0]
        if isinstance(node, (e.And, e.Nand)):
            out = kids[0]
            for k in kids[1:]:
                out = out & k
            return 1 - out if isinstance(node, e.Nand) else out
        if isinstance(node, (e.Or, e.Nor)):
            out = kids[0]
            for k in kids[1:]:
                out = out | k
            return 1 - out if isinstance(node, e.Nor) else out
        if isinstance(node, (e.Xor, e.Xnor)):
            out = kids[0]
            for k in kids[1:]:
                out = out ^ k
            return 1 - out if isinstance(node, e.Xnor) else out
        if isinstance(node, e.AndNot):
            return kids[0] & (1 - kids[1])
        if isinstance(node, e.Maj):
            return ((kids[0].astype(int) + kids[1] + kids[2]) >= 2
                    ).astype(np.uint8)
        if isinstance(node, e.Select):
            return (kids[0] & kids[1]) | ((1 - kids[0]) & kids[2])
        if isinstance(node, e.Match):
            out = np.ones(width, dtype=np.uint8)
            for kid, bit, care in zip(kids, node.key, node.mask):
                if care:
                    out &= kid ^ (1 - bit)
            return out
        raise AssertionError(type(node))

    env = {name: np.asarray(bits, dtype=np.uint8)
           for name, bits in table.items()}
    for name, expr in program.statements:
        env[name] = eval_expr(expr, env)
    return {name: env[name] for name in program.outputs}


def run_program_on_backends(program, table, *,
                            technology="feram-2tnc", n_shards=3,
                            functional=True, warmup_queries=(),
                            fused=True, workers=None,
                            parallel_min_work=None):
    """Run one program on a fresh service pair; returns
    ``(reference_result, vector_result, reference_stats, vector_stats)``.

    ``warmup_queries`` run first on both services (uncached) so the
    equivalence is also exercised from evolved column-flag state.
    ``fused``/``workers``/``parallel_min_work`` select the vector
    backend's executor tier (the reference replay ignores them).
    """
    n_bits = len(next(iter(table.values())))
    results = {}
    ledgers = {}
    for backend in ("reference", "vector"):
        service = BitwiseService(technology, n_bits=n_bits,
                                 n_shards=n_shards,
                                 functional=functional, backend=backend,
                                 fuse=fused, workers=workers)
        if parallel_min_work is not None:
            service._parallel_min_work = parallel_min_work
        try:
            for name, bits in table.items():
                service.create_column(
                    name, bits if functional else None)
            for query in warmup_queries:
                service.query(query, use_cache=False)
            results[backend] = service.run_program(program)
            ledgers[backend] = service.stats()
        finally:
            service.close()
    return (results["reference"], results["vector"],
            ledgers["reference"], ledgers["vector"])


def assert_program_equivalent(program, table, *,
                              technology="feram-2tnc", n_shards=3,
                              functional=True, warmup_queries=(),
                              check_ground_truth=True,
                              fused=True, workers=None,
                              parallel_min_work=None):
    """THE differential assertion (see module docstring).

    Returns ``(reference_result, vector_result)`` for further checks.
    """
    ref, vec, ref_ledger, vec_ledger = run_program_on_backends(
        program, table, technology=technology, n_shards=n_shards,
        functional=functional, warmup_queries=warmup_queries,
        fused=fused, workers=workers,
        parallel_min_work=parallel_min_work)

    # --- bits ---------------------------------------------------------
    if functional:
        expected = numpy_program_eval(program, table) \
            if check_ground_truth else None
        for name in program.outputs:
            assert np.array_equal(ref.outputs[name],
                                  vec.outputs[name]), \
                f"{technology}: output {name!r} bits diverge"
            assert ref.counts[name] == vec.counts[name], name
            if expected is not None:
                assert np.array_equal(vec.outputs[name],
                                      expected[name]), \
                    f"{technology}: output {name!r} != numpy truth"
    else:
        assert ref.outputs is None and vec.outputs is None

    # --- per-statement Stats ------------------------------------------
    assert len(ref.statements) == len(vec.statements) == len(program)
    for rs, vs in zip(ref.statements, vec.statements):
        assert rs.name == vs.name and rs.index == vs.index
        assert rs.stats.allclose(vs.stats), (
            f"{technology}: statement {rs.index} ({rs.name!r}) Stats "
            f"diverge:\n  reference={rs.stats}\n  vector={vs.stats}")

    # --- totals and service ledgers -----------------------------------
    assert ref.cycles == vec.cycles
    assert math.isclose(ref.energy_j, vec.energy_j,
                        rel_tol=1e-9, abs_tol=1e-15)
    assert ref.primitives_per_row == vec.primitives_per_row
    assert ref_ledger["rows_used"] == vec_ledger["rows_used"]
    assert ref_ledger["cycles_total"] == vec_ledger["cycles_total"]
    assert math.isclose(ref_ledger["energy_total_nj"],
                        vec_ledger["energy_total_nj"],
                        rel_tol=1e-9, abs_tol=1e-12)
    return ref, vec


# ----------------------------------------------------------------------
# mutation op scripts
# ----------------------------------------------------------------------
def numpy_query_eval(expr, table):
    """Ground-truth evaluation of one query on plain numpy bit arrays."""
    from repro.arch.program import Program

    return numpy_program_eval(
        Program([("__q", expr)]), table)["__q"]


def apply_op_to_shadow(shadow: dict, op: tuple) -> None:
    """Mirror one mutation op onto the plain-numpy shadow table."""
    kind = op[0]
    if kind == "create":
        shadow[op[1]] = np.asarray(op[2], dtype=np.uint8).copy()
    elif kind == "drop":
        del shadow[op[1]]
    elif kind == "update":
        shadow[op[1]] = np.asarray(op[2], dtype=np.uint8).copy()
    elif kind == "write":
        _, name, offset, bits = op
        bits = np.asarray(bits, dtype=np.uint8)
        shadow[name][offset:offset + bits.size] = bits
    elif kind == "append":
        values = {name: np.asarray(bits, dtype=np.uint8)
                  for name, bits in op[1].items()}
        n = next(iter(values.values())).size
        for name in list(shadow):
            extra = values.get(name, np.zeros(n, dtype=np.uint8))
            shadow[name] = np.concatenate([shadow[name], extra])
    elif kind != "query":
        raise AssertionError(f"unknown op {kind!r}")


def apply_op_to_service(service: BitwiseService, op: tuple):
    """Apply one op; returns the QueryResult / MutationResult."""
    kind = op[0]
    if kind == "create":
        return service.create_column(op[1], op[2])
    if kind == "drop":
        return service.drop_column(op[1])
    if kind == "update":
        return service.update_column(op[1], op[2])
    if kind == "write":
        return service.write_slice(op[1], op[2], op[3])
    if kind == "append":
        return service.append_rows(op[1])
    if kind == "query":
        return service.query(op[1])
    raise AssertionError(f"unknown op {kind!r}")


def assert_ops_equivalent(initial_table: dict, ops, *,
                          technology="feram-2tnc", n_shards=3,
                          capacity=None, cache_size=64,
                          fused=True, workers=None,
                          parallel_min_work=None, replicas=0):
    """Differential assertion for serialized mutation/query scripts.

    Runs the same op script on a vector-backend service, a
    reference-backend service, and a plain-numpy shadow table; after
    every op, queries must return identical bits/counts/Stats on both
    backends and match the shadow; mutations must charge identical
    dirty rows/energy.  Finally the column states and the full service
    ledgers (compute + writeback maintenance) must agree.

    ``workers``/``parallel_min_work``/``replicas`` select the vector
    backend's executor tier (shared-memory process pool and replica
    routing); the reference replay ignores them.
    """
    n_bits = len(next(iter(initial_table.values())))
    services = {
        backend: BitwiseService(technology, n_bits=n_bits,
                                n_shards=n_shards, backend=backend,
                                capacity=capacity,
                                cache_size=cache_size,
                                fuse=fused, workers=workers,
                                replicas=(replicas if
                                          backend == "vector" else 0))
        for backend in ("reference", "vector")
    }
    if parallel_min_work is not None:
        services["vector"]._parallel_min_work = parallel_min_work
    shadow = {name: np.asarray(bits, dtype=np.uint8).copy()
              for name, bits in initial_table.items()}
    try:
        for name, bits in initial_table.items():
            for service in services.values():
                service.create_column(name, bits)
        for step, op in enumerate(ops):
            ref = apply_op_to_service(services["reference"], op)
            vec = apply_op_to_service(services["vector"], op)
            apply_op_to_shadow(shadow, op)
            label = f"op {step} {op[0]!r}"
            if op[0] == "query":
                truth = numpy_query_eval(op[1], shadow)
                assert np.array_equal(vec.bits, truth), \
                    f"{label}: vector bits != shadow"
                assert np.array_equal(ref.bits, truth), \
                    f"{label}: reference bits != shadow"
                assert ref.count == vec.count == int(truth.sum()), label
                assert ref.cache_hit == vec.cache_hit, label
                assert ref.cycles == vec.cycles, label
                assert math.isclose(ref.energy_j, vec.energy_j,
                                    rel_tol=1e-9, abs_tol=1e-15), label
            elif op[0] not in ("create", "drop"):
                assert ref.rows_written == vec.rows_written, label
                assert ref.dirty_shards == vec.dirty_shards, label
                assert ref.invalidated == vec.invalidated, label
                assert math.isclose(ref.energy_j, vec.energy_j,
                                    rel_tol=1e-9, abs_tol=1e-15), label
        for name, bits in shadow.items():
            for backend, service in services.items():
                got = service.column_bits(name)
                assert np.array_equal(got, bits), \
                    f"final state of {name!r} diverges on {backend}"
        ref_stats = services["reference"].stats()
        vec_stats = services["vector"].stats()
        assert ref_stats["cycles_total"] == vec_stats["cycles_total"]
        assert math.isclose(ref_stats["energy_total_nj"],
                            vec_stats["energy_total_nj"],
                            rel_tol=1e-9, abs_tol=1e-12)
        assert ref_stats["writeback"] == vec_stats["writeback"]
        return ref_stats, vec_stats
    finally:
        for service in services.values():
            service.close()
