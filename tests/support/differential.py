"""Differential-testing harness: vector vs reference program execution.

One reusable assertion pins the whole equivalence contract of the
multi-statement program executor: for any program and table, the
columnar vector backend must be indistinguishable from the engine
replay — same output bits, same popcounts, the same attributed
:class:`~repro.arch.commands.Stats` *per statement*
(``Stats.allclose``: integer counts/cycles exact, energies at float
tolerance), and the same aggregate service ledgers.  Every workload
and property test routes through here instead of re-implementing the
comparison.
"""

from __future__ import annotations

import math

import numpy as np

from repro.service import BitwiseService


def numpy_program_eval(program, table):
    """Ground-truth evaluation of a program on plain numpy bit arrays.

    Statements execute sequentially over an environment seeded with the
    table columns; shadowing rebinds for subsequent statements only.
    Returns the final bindings of the program outputs.
    """
    from repro.arch import expr as e

    width = len(next(iter(table.values())))

    def eval_expr(node, env):
        if isinstance(node, e.Col):
            return env[node.name]
        if isinstance(node, e.Const):
            return np.full(width, node.bit, dtype=np.uint8)
        kids = [eval_expr(k, env) for k in node.children()]
        if isinstance(node, e.Not):
            return 1 - kids[0]
        if isinstance(node, (e.And, e.Nand)):
            out = kids[0]
            for k in kids[1:]:
                out = out & k
            return 1 - out if isinstance(node, e.Nand) else out
        if isinstance(node, (e.Or, e.Nor)):
            out = kids[0]
            for k in kids[1:]:
                out = out | k
            return 1 - out if isinstance(node, e.Nor) else out
        if isinstance(node, (e.Xor, e.Xnor)):
            out = kids[0]
            for k in kids[1:]:
                out = out ^ k
            return 1 - out if isinstance(node, e.Xnor) else out
        if isinstance(node, e.AndNot):
            return kids[0] & (1 - kids[1])
        if isinstance(node, e.Maj):
            return ((kids[0].astype(int) + kids[1] + kids[2]) >= 2
                    ).astype(np.uint8)
        if isinstance(node, e.Select):
            return (kids[0] & kids[1]) | ((1 - kids[0]) & kids[2])
        raise AssertionError(type(node))

    env = {name: np.asarray(bits, dtype=np.uint8)
           for name, bits in table.items()}
    for name, expr in program.statements:
        env[name] = eval_expr(expr, env)
    return {name: env[name] for name in program.outputs}


def run_program_on_backends(program, table, *,
                            technology="feram-2tnc", n_shards=3,
                            functional=True, warmup_queries=()):
    """Run one program on a fresh service pair; returns
    ``(reference_result, vector_result, reference_stats, vector_stats)``.

    ``warmup_queries`` run first on both services (uncached) so the
    equivalence is also exercised from evolved column-flag state.
    """
    n_bits = len(next(iter(table.values())))
    results = {}
    ledgers = {}
    for backend in ("reference", "vector"):
        service = BitwiseService(technology, n_bits=n_bits,
                                 n_shards=n_shards,
                                 functional=functional, backend=backend)
        try:
            for name, bits in table.items():
                service.create_column(
                    name, bits if functional else None)
            for query in warmup_queries:
                service.query(query, use_cache=False)
            results[backend] = service.run_program(program)
            ledgers[backend] = service.stats()
        finally:
            service.close()
    return (results["reference"], results["vector"],
            ledgers["reference"], ledgers["vector"])


def assert_program_equivalent(program, table, *,
                              technology="feram-2tnc", n_shards=3,
                              functional=True, warmup_queries=(),
                              check_ground_truth=True):
    """THE differential assertion (see module docstring).

    Returns ``(reference_result, vector_result)`` for further checks.
    """
    ref, vec, ref_ledger, vec_ledger = run_program_on_backends(
        program, table, technology=technology, n_shards=n_shards,
        functional=functional, warmup_queries=warmup_queries)

    # --- bits ---------------------------------------------------------
    if functional:
        expected = numpy_program_eval(program, table) \
            if check_ground_truth else None
        for name in program.outputs:
            assert np.array_equal(ref.outputs[name],
                                  vec.outputs[name]), \
                f"{technology}: output {name!r} bits diverge"
            assert ref.counts[name] == vec.counts[name], name
            if expected is not None:
                assert np.array_equal(vec.outputs[name],
                                      expected[name]), \
                    f"{technology}: output {name!r} != numpy truth"
    else:
        assert ref.outputs is None and vec.outputs is None

    # --- per-statement Stats ------------------------------------------
    assert len(ref.statements) == len(vec.statements) == len(program)
    for rs, vs in zip(ref.statements, vec.statements):
        assert rs.name == vs.name and rs.index == vs.index
        assert rs.stats.allclose(vs.stats), (
            f"{technology}: statement {rs.index} ({rs.name!r}) Stats "
            f"diverge:\n  reference={rs.stats}\n  vector={vs.stats}")

    # --- totals and service ledgers -----------------------------------
    assert ref.cycles == vec.cycles
    assert math.isclose(ref.energy_j, vec.energy_j,
                        rel_tol=1e-9, abs_tol=1e-15)
    assert ref.primitives_per_row == vec.primitives_per_row
    assert ref_ledger["rows_used"] == vec_ledger["rows_used"]
    assert ref_ledger["cycles_total"] == vec_ledger["cycles_total"]
    assert math.isclose(ref_ledger["energy_total_nj"],
                        vec_ledger["energy_total_nj"],
                        rel_tol=1e-9, abs_tol=1e-12)
    return ref, vec
