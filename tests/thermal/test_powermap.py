"""Power-map generation tests."""

import numpy as np
import pytest

from repro.errors import ThermalError
from repro.thermal.powermap import (
    TPU_POWER_W,
    memory_power_maps,
    tpu_power_map,
    workload_memory_power,
)
from repro.workloads.base import WorkloadResult


class TestTpuMap:
    def test_total_power_conserved(self):
        power = tpu_power_map(32, 24)
        assert power.sum() == pytest.approx(TPU_POWER_W)

    def test_has_hotspot(self):
        power = tpu_power_map(32, 24)
        assert power.max() > 1.3 * power.min()

    def test_hotspot_concentration_configurable(self):
        sharp = tpu_power_map(32, 24, hotspot_fraction=0.6,
                              hotspot_extent=0.3)
        assert sharp.max() > 2 * sharp.min()

    def test_custom_total(self):
        assert tpu_power_map(16, 16, total_w=10.0).sum() == pytest.approx(
            10.0)

    def test_all_nonnegative(self):
        assert np.all(tpu_power_map(32, 24) >= 0)

    def test_validation(self):
        with pytest.raises(ThermalError):
            tpu_power_map(total_w=-1.0)
        with pytest.raises(ThermalError):
            tpu_power_map(hotspot_fraction=0.0)


class TestMemoryMaps:
    def test_power_conserved_across_layers(self):
        maps = memory_power_maps(1.5, [2, 3, 4, 5, 6], 16, 12)
        total = sum(pmap.sum() for pmap in maps.values())
        assert total == pytest.approx(1.5)

    def test_tr_layer_weighted_heaviest(self):
        maps = memory_power_maps(1.0, [2, 3, 4], 16, 12)
        assert maps[2].sum() > maps[3].sum()

    def test_single_layer_gets_all(self):
        maps = memory_power_maps(2.0, [7], 16, 12)
        assert maps[7].sum() == pytest.approx(2.0)

    def test_custom_weights(self):
        maps = memory_power_maps(1.0, [1, 2], 16, 12,
                                 layer_weights=[3.0, 1.0])
        assert maps[1].sum() == pytest.approx(0.75)

    def test_active_fraction_concentrates(self):
        full = memory_power_maps(1.0, [1], 16, 12, active_fraction=1.0)
        partial = memory_power_maps(1.0, [1], 16, 12,
                                    active_fraction=0.25)
        assert partial[1].max() > full[1].max()
        assert partial[1].sum() == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ThermalError):
            memory_power_maps(-1.0, [1])
        with pytest.raises(ThermalError):
            memory_power_maps(1.0, [])
        with pytest.raises(ThermalError):
            memory_power_maps(1.0, [1, 2], layer_weights=[1.0])


class TestWorkloadPower:
    def _result(self, energy, wall_cycles):
        return WorkloadResult(workload="x", technology="feram-2tnc",
                              n_bytes=1, energy_j=energy,
                              cycles=wall_cycles,
                              wall_time_s=wall_cycles * 50e-9,
                              verified=None)

    def test_power_is_energy_over_time(self):
        result = self._result(1e-3, 20000)
        assert workload_memory_power(result) == pytest.approx(
            1e-3 / (20000 * 50e-9))

    def test_zero_time_rejected(self):
        with pytest.raises(ThermalError):
            workload_memory_power(self._result(1.0, 0))
