"""Thermal solver tests: analytic checks, linearity, fig-7 behaviour."""

import numpy as np
import pytest

from repro.errors import ThermalError
from repro.thermal.materials import SILICON, ThermalLayerSpec
from repro.thermal.solver import solve_steady_state
from repro.thermal.stack import ThermalStack, build_fig7_stack


def _single_layer_stack(r_pkg=2.0):
    stack = ThermalStack(width_m=10e-3, height_m=10e-3,
                         package_resistance_k_w=r_pkg)
    stack.add_layer(SILICON)
    return stack


class TestAnalyticChecks:
    def test_uniform_power_matches_lumped_model(self):
        # Uniform power on one layer: T = ambient + P * R_package
        # (no lateral gradients, conduction drop internal to layer).
        stack = _single_layer_stack(r_pkg=2.0)
        nx, ny = 16, 16
        power = np.full((ny, nx), 10.0 / (nx * ny))
        result = solve_steady_state(stack, {0: power}, nx=nx, ny=ny)
        expected = 300.0 + 10.0 * 2.0
        assert result.peak_k == pytest.approx(expected, rel=1e-6)
        # Uniform: no in-plane spread.
        spread = result.temperatures_k.max() - result.temperatures_k.min()
        assert spread < 1e-6

    def test_zero_power_is_ambient(self):
        stack = _single_layer_stack()
        result = solve_steady_state(stack, {}, nx=8, ny=8)
        assert np.allclose(result.temperatures_k, 300.0)

    def test_superposition(self):
        stack = _single_layer_stack()
        nx = ny = 12
        rng = np.random.default_rng(0)
        p1 = rng.random((ny, nx)) * 0.1
        p2 = rng.random((ny, nx)) * 0.1
        t1 = solve_steady_state(_single_layer_stack(), {0: p1},
                                nx=nx, ny=ny).temperatures_k - 300.0
        t2 = solve_steady_state(_single_layer_stack(), {0: p2},
                                nx=nx, ny=ny).temperatures_k - 300.0
        t12 = solve_steady_state(stack, {0: p1 + p2},
                                 nx=nx, ny=ny).temperatures_k - 300.0
        assert np.allclose(t12, t1 + t2, atol=1e-9)

    def test_monotone_in_power(self):
        nx = ny = 10
        p = np.zeros((ny, nx))
        p[5, 5] = 1.0
        low = solve_steady_state(_single_layer_stack(), {0: p},
                                 nx=nx, ny=ny)
        high = solve_steady_state(_single_layer_stack(), {0: 2 * p},
                                  nx=nx, ny=ny)
        assert np.all(high.temperatures_k >= low.temperatures_k - 1e-12)

    def test_peak_at_hotspot(self):
        nx = ny = 11
        p = np.zeros((ny, nx))
        p[3, 7] = 1.0
        result = solve_steady_state(_single_layer_stack(), {0: p},
                                    nx=nx, ny=ny)
        layer, j, i = result.peak_location
        assert (j, i) == (3, 7)

    def test_symmetry(self):
        nx = ny = 11
        p = np.zeros((ny, nx))
        p[5, 5] = 1.0  # centre
        result = solve_steady_state(_single_layer_stack(), {0: p},
                                    nx=nx, ny=ny)
        t = result.temperatures_k[0]
        assert np.allclose(t, t[::-1, :], rtol=1e-9)
        assert np.allclose(t, t[:, ::-1], rtol=1e-9)


class TestValidation:
    def test_rejects_tiny_grid(self):
        with pytest.raises(ThermalError):
            solve_steady_state(_single_layer_stack(), {}, nx=1, ny=4)

    def test_rejects_wrong_shape(self):
        with pytest.raises(ThermalError):
            solve_steady_state(_single_layer_stack(),
                               {0: np.zeros((3, 3))}, nx=8, ny=8)

    def test_rejects_unknown_layer(self):
        with pytest.raises(ThermalError):
            solve_steady_state(_single_layer_stack(),
                               {5: np.zeros((8, 8))}, nx=8, ny=8)

    def test_rejects_negative_power(self):
        p = np.full((8, 8), -1.0)
        with pytest.raises(ThermalError):
            solve_steady_state(_single_layer_stack(), {0: p}, nx=8, ny=8)

    def test_layer_spec_validation(self):
        with pytest.raises(ThermalError):
            ThermalLayerSpec("x", 0.0, 100.0)

    def test_stack_validation(self):
        with pytest.raises(ThermalError):
            ThermalStack(width_m=-1.0, height_m=1.0)


class TestFig7Stack:
    def test_layer_order(self):
        stack = build_fig7_stack(3)
        names = [layer.name for layer in stack.layers]
        assert names[0] == "L0-compute"
        assert "L1-TR" in names
        assert "L5-TW" in names
        assert names[-1] == "cu-spreader"

    def test_layer_index_lookup(self):
        stack = build_fig7_stack(3)
        assert stack.layer_index("L1-TR") == 2
        with pytest.raises(ThermalError):
            stack.layer_index("nope")

    def test_n_caps_changes_layer_count(self):
        assert build_fig7_stack(4).n_layers == build_fig7_stack(3).n_layers + 1

    def test_vertical_gradient_direction(self):
        # Heat source at the bottom: layers get cooler toward the sink.
        stack = build_fig7_stack(3)
        nx, ny = 8, 6
        power = {0: np.full((ny, nx), 28.0 / (nx * ny))}
        result = solve_steady_state(stack, power, nx=nx, ny=ny)
        means = [result.layer_mean(i) for i in range(stack.n_layers)]
        assert all(a >= b - 1e-9 for a, b in zip(means, means[1:]))
