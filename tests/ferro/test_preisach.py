"""Domain-bank (Preisach) invariants and behaviour."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DeviceError
from repro.ferro.materials import FAB_HZO, NVDRAM_CAL, UC_PER_CM2
from repro.ferro.preisach import DomainBank


def _bank(material=FAB_HZO, **kwargs) -> DomainBank:
    return DomainBank(material, **kwargs)


class TestStateInvariants:
    def test_virgin_polarization_zero(self):
        assert _bank().polarization() == pytest.approx(0.0)

    def test_set_uniform_saturates(self):
        bank = _bank()
        bank.set_uniform(1.0)
        assert bank.polarization() == pytest.approx(bank.ps)

    def test_set_uniform_validates(self):
        with pytest.raises(DeviceError):
            _bank().set_uniform(1.5)

    @given(st.lists(st.tuples(
        st.floats(min_value=-4.0, max_value=4.0),
        st.floats(min_value=1e-9, max_value=1e-3)), min_size=1,
        max_size=12))
    def test_polarization_always_bounded(self, pulses):
        bank = _bank(NVDRAM_CAL)
        for voltage, dt in pulses:
            bank.apply_voltage(voltage, dt)
            assert abs(bank.polarization()) <= bank.ps * (1 + 1e-9)
            assert np.all(np.abs(bank.s) <= 1 + 1e-12)

    def test_snapshot_restore_roundtrip(self):
        bank = _bank()
        bank.apply_voltage(2.0, 1e-5)
        snap = bank.snapshot()
        p_before = bank.polarization()
        bank.apply_voltage(-3.0, 1e-4)
        bank.restore(snap)
        assert bank.polarization() == pytest.approx(p_before)

    def test_restore_validates_shape(self):
        bank = _bank()
        with pytest.raises(DeviceError):
            bank.restore(np.zeros(3))

    def test_zero_voltage_is_identity(self):
        bank = _bank()
        bank.apply_voltage(2.5, 1e-5)
        p = bank.polarization()
        bank.apply_voltage(0.0, 1.0)
        assert bank.polarization() == pytest.approx(p)

    def test_evolved_state_is_pure(self):
        bank = _bank()
        before = bank.snapshot()
        bank.evolved_state(3.0, 1e-3)
        assert np.array_equal(bank.s, before)


class TestSwitching:
    def test_saturating_pulse_poles_fully(self):
        bank = _bank()
        bank.apply_voltage(3.5, 1e-3)
        assert bank.polarization() == pytest.approx(bank.ps, rel=1e-3)

    def test_opposite_pulse_reverses(self):
        bank = _bank()
        bank.apply_voltage(3.5, 1e-3)
        bank.apply_voltage(-3.5, 1e-3)
        assert bank.polarization() == pytest.approx(-bank.ps, rel=1e-3)

    def test_small_voltage_negligible_switching(self):
        bank = _bank()
        bank.set_uniform(-1.0)
        bank.apply_voltage(0.3, 1e-6)
        assert bank.polarization() == pytest.approx(-bank.ps, rel=1e-3)

    def test_aligned_read_no_switching(self):
        # Reading with the field parallel to polarization changes nothing.
        bank = _bank(NVDRAM_CAL)
        bank.set_uniform(1.0)
        p = bank.polarization()
        bank.apply_voltage(0.6, 1e-7)
        assert bank.polarization() == pytest.approx(p, abs=1e-6)

    def test_opposing_read_partial_switching(self):
        # QNRO asymmetry: a stored '0' loses a little polarization.
        bank = _bank(NVDRAM_CAL)
        bank.set_uniform(-1.0)
        bank.apply_voltage(0.6, 1e-7)
        delta = bank.polarization() + bank.ps
        assert 0 < delta < 0.4 * bank.ps

    def test_accumulative_disturb_monotone(self):
        bank = _bank(NVDRAM_CAL)
        bank.set_uniform(-1.0)
        history = []
        for _ in range(10):
            history.append(bank.apply_voltage(0.6, 1e-7))
        assert all(a <= b + 1e-15 for a, b in zip(history, history[1:]))


class TestChargeModel:
    def test_charge_includes_dielectric(self):
        bank = _bank()
        q0 = bank.charge(0.0)
        q1 = bank.charge(1.0)
        assert q1 > q0

    def test_charge_density_at_saturation(self):
        bank = _bank(FAB_HZO)
        bank.apply_voltage(3.0, 1e-3)
        q = bank.total_charge_density(3.0) * UC_PER_CM2
        assert q == pytest.approx(38.0, rel=0.05)


class TestLoops:
    def test_loop_is_hysteretic(self):
        bank = _bank()
        v, q = bank.quasi_static_loop(3.0)
        # At V = 0 the two branches must differ by ~2 Pr.
        near_zero = np.abs(v) < 0.05
        spread = q[near_zero].max() - q[near_zero].min()
        assert spread > 1.5 * bank.ps

    def test_loop_closes(self):
        bank = _bank()
        v1, q1 = bank.quasi_static_loop(3.0, cycles=2)
        v2, q2 = bank.quasi_static_loop(3.0, cycles=1)
        assert np.allclose(q1, q2, atol=0.02 * bank.ps)

    def test_loop_rejects_bad_args(self):
        with pytest.raises(DeviceError):
            _bank().quasi_static_loop(-1.0)

    def test_loop_orientation_counterclockwise(self):
        # Going up in V the charge is lower than coming down (P lags E).
        bank = _bank()
        v, q = bank.quasi_static_loop(3.0)
        dv = np.diff(v)
        rising = q[1:][dv > 0]
        falling = q[1:][dv < 0]
        assert rising.mean() < falling.mean()


class TestSamplingModes:
    def test_quantile_sampling_deterministic(self):
        b1, b2 = _bank(), _bank()
        assert np.array_equal(b1.vc, b2.vc)

    def test_rng_sampling_varies(self):
        b1 = _bank(rng=np.random.default_rng(1))
        b2 = _bank(rng=np.random.default_rng(2))
        assert not np.array_equal(b1.vc, b2.vc)

    def test_vc_shift_applies(self):
        b1 = _bank()
        b2 = _bank(vc_shift=0.2)
        assert np.allclose(b2.vc - b1.vc, 0.2)

    def test_temperature_scales_vc(self):
        hot = _bank(temperature_k=390.0)
        cold = _bank(temperature_k=300.0)
        assert hot.vc.mean() < cold.vc.mean()

    def test_apply_waveform_validates(self):
        bank = _bank()
        with pytest.raises(DeviceError):
            bank.apply_waveform(np.array([0.0, 1.0]), np.array([0.0]))
        with pytest.raises(DeviceError):
            bank.apply_waveform(np.array([1.0, 0.0]),
                                np.array([0.0, 1.0]))
