"""Material parameter-set tests."""

import pytest

from repro.errors import DeviceError
from repro.ferro.materials import FAB_HZO, NVDRAM_CAL, UC_PER_CM2, FerroMaterial


class TestPresets:
    def test_fab_pr_matches_paper(self):
        assert FAB_HZO.ps * UC_PER_CM2 == pytest.approx(22.3)

    def test_presets_validate(self):
        for preset in (FAB_HZO, NVDRAM_CAL):
            assert preset.vc_mean > 0
            assert preset.n_domains >= 2

    def test_linear_capacitance_formula(self):
        eps0 = 8.8541878128e-12
        expected = (eps0 * NVDRAM_CAL.eps_r * NVDRAM_CAL.area
                    / NVDRAM_CAL.thickness)
        assert NVDRAM_CAL.linear_capacitance == pytest.approx(expected)

    def test_full_switching_charge(self):
        assert FAB_HZO.full_switching_charge == pytest.approx(
            2 * 0.223 * FAB_HZO.area)

    def test_scaled_override(self):
        scaled = FAB_HZO.scaled(n_domains=8)
        assert scaled.n_domains == 8
        assert scaled.ps == FAB_HZO.ps


class TestTemperatureLaws:
    def test_vc_decreases_with_temperature(self):
        assert FAB_HZO.vc_at(390.0) < FAB_HZO.vc_at(300.0)

    def test_vc_at_reference_unchanged(self):
        assert FAB_HZO.vc_at(300.0) == pytest.approx(FAB_HZO.vc_mean)

    def test_ps_nearly_constant(self):
        drop = 1 - FAB_HZO.ps_at(390.0) / FAB_HZO.ps
        assert 0 < drop < 0.05

    def test_vc_clamped_at_extreme_temperature(self):
        assert FAB_HZO.vc_at(5000.0) > 0


class TestValidation:
    def _base(self, **over):
        kwargs = dict(name="x", ps=0.2, vc_mean=1.0, vc_sigma=0.2,
                      tau0=1e-8, merz_n=2.0, activation_scale=3.0,
                      chi_nl=0.05, v_nl=1.5, eps_r=30.0, thickness=1e-8,
                      area=1e-12)
        kwargs.update(over)
        return FerroMaterial(**kwargs)

    def test_valid_base(self):
        assert self._base().ps == 0.2

    def test_rejects_bad_ps(self):
        with pytest.raises(DeviceError):
            self._base(ps=0.0)

    def test_rejects_bad_tau0(self):
        with pytest.raises(DeviceError):
            self._base(tau0=-1.0)

    def test_rejects_bad_geometry(self):
        with pytest.raises(DeviceError):
            self._base(thickness=0.0)

    def test_rejects_too_few_domains(self):
        with pytest.raises(DeviceError):
            self._base(n_domains=1)
