"""Switching-dynamics law tests."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DeviceError
from repro.ferro.dynamics import (
    minimum_full_switch_pulse,
    pulse_switched_polarization,
    switched_fraction,
    switching_time,
)
from repro.ferro.materials import FAB_HZO


class TestSwitchingTime:
    def test_decreases_with_voltage(self):
        taus = [float(switching_time(v, 3.0, 1e-8, 2.5))
                for v in (1.0, 2.0, 3.0)]
        assert taus[0] > taus[1] > taus[2]

    def test_increases_with_activation(self):
        low = float(switching_time(2.0, 2.0, 1e-8, 2.5))
        high = float(switching_time(2.0, 4.0, 1e-8, 2.5))
        assert high > low

    def test_zero_voltage_infinite(self):
        assert np.isinf(switching_time(0.0, 3.0, 1e-8, 2.5))

    def test_polarity_independent(self):
        assert float(switching_time(-2.0, 3.0, 1e-8, 2.5)) == pytest.approx(
            float(switching_time(2.0, 3.0, 1e-8, 2.5)))

    def test_broadcasts_over_domains(self):
        va = np.array([1.0, 2.0, 3.0])
        taus = switching_time(2.0, va, 1e-8, 2.5)
        assert taus.shape == (3,)
        assert taus[0] < taus[1] < taus[2]

    def test_no_overflow_for_tiny_voltage(self):
        tau = switching_time(1e-5, 3.0, 1e-8, 2.5)
        assert np.isfinite(tau) or np.isinf(tau)  # no exception, no nan
        assert not np.isnan(tau)


class TestSwitchedFraction:
    @given(st.floats(min_value=1e-12, max_value=1.0),
           st.floats(min_value=1e-12, max_value=1e3))
    def test_in_unit_interval(self, dt, tau):
        f = float(switched_fraction(dt, tau))
        assert 0.0 <= f <= 1.0

    def test_monotone_in_dt(self):
        fs = [float(switched_fraction(dt, 1e-6))
              for dt in (1e-8, 1e-7, 1e-6, 1e-5)]
        assert all(a < b for a, b in zip(fs, fs[1:]))

    def test_infinite_tau_no_switching(self):
        assert float(switched_fraction(1.0, np.inf)) == 0.0

    def test_exact_exponential(self):
        assert float(switched_fraction(1e-6, 1e-6)) == pytest.approx(
            1 - np.exp(-1))

    def test_rejects_negative_dt(self):
        with pytest.raises(DeviceError):
            switched_fraction(-1.0, 1e-6)


class TestPulseSwitching:
    def test_monotone_in_width(self):
        widths = np.logspace(-8, -3, 8)
        dps = [pulse_switched_polarization(FAB_HZO, 3.0, w)
               for w in widths]
        assert all(a <= b + 1e-12 for a, b in zip(dps, dps[1:]))

    def test_monotone_in_amplitude(self):
        dps = [pulse_switched_polarization(FAB_HZO, a, 1e-6)
               for a in (1.5, 2.0, 2.5, 3.0)]
        assert all(a <= b + 1e-12 for a, b in zip(dps, dps[1:]))

    def test_saturates_at_2ps(self):
        dp = pulse_switched_polarization(FAB_HZO, 3.5, 1e-2)
        assert dp == pytest.approx(2 * FAB_HZO.ps, rel=1e-3)

    def test_negative_amplitude_symmetric(self):
        pos = pulse_switched_polarization(FAB_HZO, 3.0, 1e-5)
        neg = pulse_switched_polarization(FAB_HZO, -3.0, 1e-5)
        assert neg == pytest.approx(pos, rel=1e-6)


class TestFullSwitchPulse:
    def test_paper_300ns_claim(self):
        t = minimum_full_switch_pulse(FAB_HZO, 3.0)
        assert t < 300e-9

    def test_lower_voltage_needs_longer(self):
        t3 = minimum_full_switch_pulse(FAB_HZO, 3.0)
        t2 = minimum_full_switch_pulse(FAB_HZO, 2.0)
        assert t2 > t3

    def test_unreachable_returns_inf(self):
        assert minimum_full_switch_pulse(FAB_HZO, 0.5) == float("inf")

    def test_rejects_bad_fraction(self):
        with pytest.raises(DeviceError):
            minimum_full_switch_pulse(FAB_HZO, 3.0, fraction=1.5)
