"""DomainEnsemble vs per-cell DomainBank equivalence.

The batched ensemble must reproduce the per-cell bank results exactly
(same kernels at batch size one) so that Monte-Carlo studies built on the
ensemble are interchangeable with sequential per-cell runs.
"""

import numpy as np
import pytest

from repro.errors import DeviceError
from repro.ferro.materials import FAB_HZO, NVDRAM_CAL
from repro.ferro.preisach import DomainBank, DomainEnsemble

N_CELLS = 5


def _banks(material, n_cells=N_CELLS, seed=7):
    rng = np.random.default_rng(seed)
    return [DomainBank(material, rng=np.random.default_rng(rng.integers(
        2**32))) for _ in range(n_cells)]


class TestConstruction:
    def test_quantile_ensemble_matches_bank(self):
        ens = DomainEnsemble(NVDRAM_CAL, 3)
        bank = DomainBank(NVDRAM_CAL)
        for row in range(3):
            assert np.array_equal(ens.vc[row], bank.vc)
            assert np.array_equal(ens.va[row], bank.va)

    def test_rng_ensemble_matches_sequential_banks(self):
        # One generator, n cells: the ensemble consumes the same stream
        # as n sequential banks drawing from the same generator.
        ens = DomainEnsemble(NVDRAM_CAL, N_CELLS,
                             rng=np.random.default_rng(42))
        rng = np.random.default_rng(42)
        for row in range(N_CELLS):
            bank = DomainBank(NVDRAM_CAL, rng=rng)
            assert np.array_equal(ens.vc[row], bank.vc)

    def test_from_banks_stacks_state(self):
        banks = _banks(FAB_HZO)
        banks[2].set_uniform(1.0)
        ens = DomainEnsemble.from_banks(banks)
        assert ens.n_cells == len(banks)
        for row, bank in enumerate(banks):
            assert np.array_equal(ens.s[row], bank.s)
            assert np.array_equal(ens.vc[row], bank.vc)

    def test_from_banks_rejects_mixed_temperature(self):
        bank_a = DomainBank(FAB_HZO)
        bank_b = DomainBank(FAB_HZO, temperature_k=350.0)
        with pytest.raises(DeviceError):
            DomainEnsemble.from_banks([bank_a, bank_b])

    def test_needs_at_least_one_cell(self):
        with pytest.raises(DeviceError):
            DomainEnsemble(NVDRAM_CAL, 0)
        with pytest.raises(DeviceError):
            DomainEnsemble.from_banks([])


class TestDynamicsEquivalence:
    def test_apply_voltage_matches_per_cell(self):
        banks = _banks(NVDRAM_CAL)
        ens = DomainEnsemble.from_banks(banks)
        voltages = np.linspace(-2.0, 2.0, N_CELLS)
        p_batch = ens.apply_voltage(voltages, 5e-8)
        for row, bank in enumerate(banks):
            p_cell = bank.apply_voltage(float(voltages[row]), 5e-8)
            assert p_batch[row] == pytest.approx(p_cell, rel=1e-12)
            np.testing.assert_allclose(ens.s[row], bank.s, rtol=1e-12)

    def test_pulse_train_stays_equivalent(self):
        banks = _banks(FAB_HZO, seed=11)
        ens = DomainEnsemble.from_banks(banks)
        pulses = [(3.0, 1e-6), (-1.5, 1e-7), (0.9, 1e-5), (-3.0, 1e-6)]
        for voltage, dt in pulses:
            ens.apply_voltage(np.full(N_CELLS, voltage), dt)
            for bank in banks:
                bank.apply_voltage(voltage, dt)
        for row, bank in enumerate(banks):
            np.testing.assert_allclose(ens.s[row], bank.s, rtol=1e-12)

    def test_apply_waveform_matches_per_cell(self):
        banks = _banks(NVDRAM_CAL, seed=3)
        ens = DomainEnsemble.from_banks(banks)
        times = np.linspace(0.0, 1e-4, 200)
        voltages = 2.5 * np.sin(2 * np.pi * 2e4 * times)
        p_batch = ens.apply_waveform(times, voltages)
        assert p_batch.shape == (times.size, N_CELLS)
        for row, bank in enumerate(banks):
            p_cell = bank.apply_waveform(times, voltages)
            np.testing.assert_allclose(p_batch[:, row], p_cell,
                                       rtol=1e-10, atol=1e-12)

    def test_evolved_state_is_pure(self):
        ens = DomainEnsemble(NVDRAM_CAL, 3)
        before = ens.snapshot()
        ens.evolved_state(np.full(3, 2.0), 1e-6)
        assert np.array_equal(ens.s, before)


class TestChargeEquivalence:
    def test_charge_matches_per_cell(self):
        banks = _banks(FAB_HZO, seed=5)
        ens = DomainEnsemble.from_banks(banks)
        ens.apply_voltage(np.full(N_CELLS, 2.0), 1e-6)
        for bank in banks:
            bank.apply_voltage(2.0, 1e-6)
        for v in (-1.0, 0.0, 0.4, 3.0):
            q_batch = ens.charge(np.full(N_CELLS, v))
            for row, bank in enumerate(banks):
                assert q_batch[row] == pytest.approx(bank.charge(v),
                                                     rel=1e-12)

    def test_evolved_charges_matches_scalar_trials(self):
        bank = DomainBank(NVDRAM_CAL)
        bank.set_uniform(-1.0)
        voltages = (0.6, 0.6001, 0.5999)
        fused = bank.evolved_charges(voltages, 5e-8)
        for k, v in enumerate(voltages):
            evolved = bank.evolved_state(v, 5e-8)
            assert fused[k] == pytest.approx(bank.charge(v, evolved),
                                             rel=1e-12)

    def test_set_uniform_per_cell_values(self):
        ens = DomainEnsemble(NVDRAM_CAL, 3)
        ens.set_uniform(np.array([-1.0, 0.0, 1.0]))
        p = ens.polarization()
        assert p[0] == pytest.approx(-ens.ps)
        assert p[1] == pytest.approx(0.0)
        assert p[2] == pytest.approx(ens.ps)
        with pytest.raises(DeviceError):
            ens.set_uniform(1.5)
