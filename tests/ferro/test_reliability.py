"""Endurance, read-disturb and retention model tests."""

import numpy as np
import pytest

from repro.errors import DeviceError
from repro.ferro.materials import FAB_HZO, NVDRAM_CAL
from repro.ferro.reliability import (
    EnduranceModel,
    ReadDisturbTracker,
    endurance_sweep,
    reads_until_disturb,
    retention_factor,
)


class TestEnduranceModel:
    def test_factor_starts_at_one(self):
        assert EnduranceModel().factor(0) == pytest.approx(1.0)

    def test_wakeup_increases_pr(self):
        model = EnduranceModel()
        assert model.factor(1e4) > model.factor(1.0)

    def test_stable_through_1e6(self):
        assert EnduranceModel().stable_through(1e6)

    def test_fatigue_beyond_onset(self):
        model = EnduranceModel()
        assert model.factor(1e8) < model.factor(1e6)

    def test_breakdown_zeroes(self):
        model = EnduranceModel(n_breakdown=1e7)
        assert model.factor(1e7) == 0.0

    def test_not_stable_with_aggressive_fatigue(self):
        model = EnduranceModel(fatigue_rate=0.5, n_fatigue=1e3)
        assert not model.stable_through(1e6)

    def test_rejects_negative_cycles(self):
        with pytest.raises(DeviceError):
            EnduranceModel().factor(-1)


class TestEnduranceSweep:
    def test_shapes_match(self):
        cycles, pr_plus, pr_minus = endurance_sweep(FAB_HZO)
        assert cycles.shape == pr_plus.shape == pr_minus.shape

    def test_symmetry(self):
        _, pr_plus, pr_minus = endurance_sweep(FAB_HZO)
        assert np.allclose(pr_plus, -pr_minus)

    def test_magnitude_near_pr(self):
        _, pr_plus, _ = endurance_sweep(FAB_HZO)
        assert np.all(pr_plus > 0.9 * FAB_HZO.ps)
        assert np.all(pr_plus < 1.2 * FAB_HZO.ps)


class TestReadDisturb:
    def test_margin_starts_full(self):
        tracker = ReadDisturbTracker(NVDRAM_CAL, v_read=0.6,
                                     t_read=100e-9)
        assert tracker.margin_remaining() == pytest.approx(1.0)

    def test_margin_decreases_with_reads(self):
        tracker = ReadDisturbTracker(NVDRAM_CAL, v_read=0.6,
                                     t_read=100e-9)
        margins = []
        for _ in range(6):
            tracker.read(4)
            margins.append(tracker.margin_remaining())
        assert all(a >= b - 1e-12 for a, b in zip(margins, margins[1:]))
        assert margins[-1] < margins[0]

    def test_write_resets(self):
        tracker = ReadDisturbTracker(NVDRAM_CAL, v_read=0.6,
                                     t_read=100e-9)
        tracker.read(20)
        tracker.write(0)
        assert tracker.margin_remaining() == pytest.approx(1.0)
        assert tracker.reads == 0

    def test_validations(self):
        with pytest.raises(DeviceError):
            ReadDisturbTracker(NVDRAM_CAL, v_read=0.6, t_read=0.0)
        tracker = ReadDisturbTracker(NVDRAM_CAL, v_read=0.6,
                                     t_read=1e-7)
        with pytest.raises(DeviceError):
            tracker.read(0)
        with pytest.raises(DeviceError):
            tracker.write(5)


class TestReadsUntilDisturb:
    def test_multiple_reads_supported(self):
        # The paper's QNRO claim: several reads before write-back needed.
        count = reads_until_disturb(NVDRAM_CAL, v_read=0.6, t_read=50e-9)
        assert count >= 10

    def test_stronger_read_disturbs_sooner(self):
        weak = reads_until_disturb(NVDRAM_CAL, v_read=0.5, t_read=50e-9)
        strong = reads_until_disturb(NVDRAM_CAL, v_read=0.9,
                                     t_read=50e-9)
        assert strong < weak

    def test_margin_validation(self):
        with pytest.raises(DeviceError):
            reads_until_disturb(NVDRAM_CAL, v_read=0.6, t_read=1e-7,
                                margin=1.5)

    def test_caps_at_max_reads(self):
        count = reads_until_disturb(NVDRAM_CAL, v_read=0.05,
                                    t_read=1e-9, max_reads=100)
        assert count == 100


class TestRetention:
    def test_full_at_time_zero(self):
        assert retention_factor(FAB_HZO, time_s=0.0) == 1.0

    def test_decreases_with_time(self):
        year = 365.25 * 24 * 3600
        r1 = retention_factor(FAB_HZO, time_s=year)
        r10 = retention_factor(FAB_HZO, time_s=10 * year)
        assert r10 < r1

    def test_ten_year_retention_at_85c(self):
        ten_years = 10 * 365.25 * 24 * 3600
        assert retention_factor(FAB_HZO, time_s=ten_years,
                                temperature_k=358.0) > 0.9

    def test_hotter_is_worse(self):
        t = 3600.0 * 24 * 365
        assert retention_factor(FAB_HZO, time_s=t, temperature_k=450.0) \
            < retention_factor(FAB_HZO, time_s=t, temperature_k=300.0)

    def test_rejects_negative_time(self):
        with pytest.raises(DeviceError):
            retention_factor(FAB_HZO, time_s=-1.0)
