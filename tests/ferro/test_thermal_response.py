"""Temperature-dependence tests (Fig. 4(e) behaviour, §VII stability)."""

import numpy as np
import pytest

from repro.errors import DeviceError
from repro.ferro.materials import FAB_HZO, UC_PER_CM2
from repro.ferro.thermal_response import (
    check_thermal_stability,
    loop_metrics,
    pv_loop_at_temperature,
    temperature_family,
)


class TestLoops:
    def test_loop_crosses_zero(self):
        v, q = pv_loop_at_temperature(FAB_HZO, 300.0)
        assert q.min() < 0 < q.max()

    def test_rejects_bad_temperature(self):
        with pytest.raises(DeviceError):
            pv_loop_at_temperature(FAB_HZO, -5.0)

    def test_metrics_extraction(self):
        v, q = pv_loop_at_temperature(FAB_HZO, 300.0)
        metrics = loop_metrics(v, q)
        assert metrics["pr_plus"] > 0 > metrics["pr_minus"]
        assert metrics["vc_plus"] > 0 > metrics["vc_minus"]

    def test_metrics_on_synthetic_loop(self):
        # A synthetic square-ish loop with known Pr and Vc.
        v = np.concatenate([np.linspace(-3, 3, 100),
                            np.linspace(3, -3, 100)])
        q = np.where(np.diff(v, prepend=v[0] - 1e-9) > 0,
                     np.tanh(2 * (v - 1.0)), np.tanh(2 * (v + 1.0)))
        metrics = loop_metrics(v, q)
        assert metrics["vc_plus"] == pytest.approx(1.0, abs=0.1)
        assert metrics["pr_plus"] == pytest.approx(np.tanh(2.0), abs=0.05)

    def test_metrics_validate_input(self):
        with pytest.raises(DeviceError):
            loop_metrics(np.zeros(4), np.zeros(4))


class TestFamily:
    def test_paper_pr(self):
        family = temperature_family(FAB_HZO)
        assert family[300.0]["pr_plus"] * UC_PER_CM2 == pytest.approx(
            22.3, rel=0.03)

    def test_vc_monotone_decreasing(self):
        family = temperature_family(FAB_HZO)
        vcs = [family[t]["vc_plus"] for t in sorted(family)]
        assert all(a > b for a, b in zip(vcs, vcs[1:]))

    def test_pr_nearly_constant(self):
        family = temperature_family(FAB_HZO)
        prs = [family[t]["pr_plus"] for t in sorted(family)]
        assert max(prs) / min(prs) < 1.05


class TestStability:
    def test_stable_at_operating_peak(self):
        report = check_thermal_stability(FAB_HZO, 351.88)
        assert report.stable
        assert report.pr_fraction > 0.95

    def test_unstable_near_curie(self):
        report = check_thermal_stability(FAB_HZO, 0.95 * FAB_HZO.t_curie)
        assert not report.stable

    def test_rejects_bad_temperature(self):
        with pytest.raises(DeviceError):
            check_thermal_stability(FAB_HZO, 0.0)

    def test_report_fields(self):
        report = check_thermal_stability(FAB_HZO, 330.0)
        assert report.temperature_k == 330.0
        assert 0 < report.vc_fraction <= 1.0
