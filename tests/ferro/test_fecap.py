"""FeCap circuit-element tests: companion model, writes, conservation."""

import numpy as np
import pytest

from repro.errors import DeviceError
from repro.ferro.fecap import FeCapacitor
from repro.ferro.materials import NVDRAM_CAL
from repro.spice import PWL, Circuit, Resistor, TransientSolver, VoltageSource


def _drive_circuit(initial_state=0.0):
    ckt = Circuit("fe")
    ckt.add(VoltageSource("vin", "in", "0", 0.0))
    ckt.add(Resistor("rs", "in", "top", 1e3))
    cap = FeCapacitor("fe1", "top", "0", NVDRAM_CAL.scaled(n_domains=16),
                      initial_state=initial_state)
    ckt.add(cap)
    return ckt, cap


class TestWritesThroughCircuit:
    def test_positive_write_stores_one(self):
        ckt, cap = _drive_circuit()
        ckt.component("vin").waveform = PWL([(0, 0), (1e-9, 1.5)])
        TransientSolver(ckt).run(100e-9, 5e-10)
        assert cap.stored_bit() == 1
        assert cap.polarization() > 0.5 * cap.bank.ps

    def test_negative_write_stores_zero(self):
        ckt, cap = _drive_circuit(initial_state=1.0)
        ckt.component("vin").waveform = PWL([(0, 0), (1e-9, -1.5)])
        TransientSolver(ckt).run(100e-9, 5e-10)
        assert cap.stored_bit() == 0

    def test_charge_conservation(self):
        # Integral of source current equals the capacitor charge change.
        ckt, cap = _drive_circuit()
        q_start = cap.bank.charge(0.0)
        ckt.component("vin").waveform = PWL([(0, 0), (1e-9, 1.5)])
        result = TransientSolver(ckt).run(100e-9, 2e-10)
        q_in = -result.integrate(result.i("vin"))
        v_end = result.v("top")[-1]
        q_end = cap.bank.charge(v_end)
        assert q_in == pytest.approx(q_end - q_start, rel=0.05)

    def test_small_read_preserves_state(self):
        ckt, cap = _drive_circuit(initial_state=-1.0)
        ckt.component("vin").waveform = PWL(
            [(0, 0), (1e-9, 0.3), (50e-9, 0.3), (51e-9, 0.0)])
        TransientSolver(ckt).run(60e-9, 5e-10)
        assert cap.stored_bit() == 0


class TestHelpers:
    def test_write_state_validates(self):
        _, cap = _drive_circuit()
        with pytest.raises(DeviceError):
            cap.write_state(2)

    def test_write_state_sets_polarization(self):
        _, cap = _drive_circuit()
        cap.write_state(1)
        assert cap.polarization_uc_cm2() == pytest.approx(
            cap.bank.ps * 1e2)

    def test_reset_terminal_rebases(self):
        _, cap = _drive_circuit()
        cap.v_prev = 1.0
        cap.reset_terminal()
        assert cap.v_prev == 0.0
        assert cap._q_prev == pytest.approx(cap.bank.charge(0.0))

    def test_initial_state_applied(self):
        cap = FeCapacitor("f", "a", "b", NVDRAM_CAL, initial_state=-1.0)
        assert cap.stored_bit() == 0

    def test_trial_charge_does_not_mutate(self):
        _, cap = _drive_circuit()
        state_before = cap.bank.snapshot()
        cap.begin_step(1e-9, 1e-9)
        cap._trial_charge(1.0, 1e-9)
        assert np.array_equal(cap.bank.s, state_before)
