"""Physics property tests: rate dependence, energy, disturb asymmetry.

These check emergent behaviours of the domain model that the paper's
device section relies on but that no single parameter encodes directly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ferro.materials import FAB_HZO, NVDRAM_CAL
from repro.ferro.preisach import DomainBank
from repro.ferro.thermal_response import loop_metrics


class TestRateDependence:
    def test_faster_sweep_wider_loop(self):
        """Dynamic coercive voltage grows as the sweep speeds up —
        standard ferroelectric kinetics, emergent from the Merz law."""
        vcs = []
        for period in (1e-2, 1e-4):
            bank = DomainBank(FAB_HZO)
            v, q = bank.quasi_static_loop(3.0, period=period)
            vcs.append(loop_metrics(v, q)["vc_plus"])
        slow_vc, fast_vc = vcs
        assert fast_vc > slow_vc

    def test_slow_sweep_saturates_fully(self):
        bank = DomainBank(FAB_HZO)
        v, q = bank.quasi_static_loop(3.0, period=1e-1)
        metrics = loop_metrics(v, q)
        assert metrics["pr_plus"] == pytest.approx(FAB_HZO.ps, rel=0.02)


class TestDisturbAsymmetry:
    """The QNRO mechanism: reads disturb only opposing states."""

    @given(st.floats(min_value=0.4, max_value=0.8))
    @settings(max_examples=10)
    def test_aligned_state_never_disturbed(self, v_read):
        bank = DomainBank(NVDRAM_CAL)
        bank.set_uniform(1.0)
        p0 = bank.polarization()
        bank.apply_voltage(v_read, 100e-9)
        assert bank.polarization() >= p0 - 1e-12

    @given(st.floats(min_value=0.45, max_value=0.8))
    @settings(max_examples=10)
    def test_opposing_state_disturb_grows_with_voltage(self, v_read):
        low = DomainBank(NVDRAM_CAL)
        low.set_uniform(-1.0)
        low.apply_voltage(v_read, 100e-9)
        high = DomainBank(NVDRAM_CAL)
        high.set_uniform(-1.0)
        high.apply_voltage(v_read + 0.1, 100e-9)
        assert high.polarization() >= low.polarization() - 1e-12

    def test_disturb_diminishing_per_read(self):
        """Each read consumes part of the weak tail: increments shrink."""
        bank = DomainBank(NVDRAM_CAL)
        bank.set_uniform(-1.0)
        deltas = []
        prev = bank.polarization()
        for _ in range(8):
            current = bank.apply_voltage(0.55, 50e-9)
            deltas.append(current - prev)
            prev = current
        assert deltas[0] > deltas[-1]
        assert all(d >= -1e-15 for d in deltas)


class TestEnergyConsistency:
    def test_hysteresis_loop_dissipates_energy(self):
        """The P-E loop area (dissipated energy) must be positive."""
        bank = DomainBank(FAB_HZO)
        v, q = bank.quasi_static_loop(3.0)
        # Loop integral of V dQ over one closed cycle > 0 for a
        # dissipative (hysteretic) system.
        dq = np.diff(q, append=q[0])
        area = float(np.sum(v * dq))
        assert area > 0

    def test_loop_area_scales_with_pr(self):
        small = FAB_HZO.scaled(ps=0.1)
        areas = []
        for material in (small, FAB_HZO):
            bank = DomainBank(material)
            v, q = bank.quasi_static_loop(3.0)
            dq = np.diff(q, append=q[0])
            areas.append(float(np.sum(v * dq)))
        assert areas[1] > areas[0]


class TestTemperatureConsistency:
    @given(st.floats(min_value=300.0, max_value=420.0))
    @settings(max_examples=10)
    def test_hotter_switches_faster(self, temperature):
        """Lower Vc at higher T → more switching for the same pulse."""
        cold = DomainBank(NVDRAM_CAL, temperature_k=300.0)
        cold.set_uniform(-1.0)
        hot = DomainBank(NVDRAM_CAL, temperature_k=temperature)
        hot.set_uniform(-1.0)
        cold.apply_voltage(1.0, 1e-7)
        hot.apply_voltage(1.0, 1e-7)
        assert hot.polarization() >= cold.polarization() - 1e-12
