"""Shared pytest configuration: hypothesis profile, common fixtures,
and a fallback implementation of the ``timeout`` marker.

The server/concurrency suites mark themselves ``@pytest.mark.timeout``
so a hung event loop or deadlocked scheduler fails fast instead of
wedging the whole run.  When the ``pytest-timeout`` plugin is
installed (CI) it owns the marker; in bare environments the
SIGALRM-based fallback below enforces it for main-thread tests on
POSIX, and the marker degrades to a no-op elsewhere.
"""

from __future__ import annotations

import signal
import threading

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


def pytest_configure(config) -> None:
    config.addinivalue_line(
        "markers",
        "timeout(seconds): fail the test if it exceeds the wall-clock "
        "budget (pytest-timeout when installed, SIGALRM fallback "
        "otherwise)")


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    marker = item.get_closest_marker("timeout")
    usable = (
        marker is not None
        and marker.args
        and not item.config.pluginmanager.hasplugin("timeout")
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return
    seconds = float(marker.args[0])

    def on_alarm(signum, frame):
        raise TimeoutError(
            f"test exceeded its {seconds:g}s timeout marker")

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
