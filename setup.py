"""Setup shim: allows legacy editable installs where the 'wheel' package
(needed for PEP 517 editable builds) is unavailable offline."""
from setuptools import setup

setup()
