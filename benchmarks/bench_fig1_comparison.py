"""Fig. 1 benchmark: model-derived technology comparison table."""

from benchmarks.conftest import attach_report
from repro.experiments.fig1_comparison import run_fig1


def test_fig1_comparison(benchmark):
    report = benchmark(run_fig1)
    attach_report(benchmark, report)
