"""Fig. 3(d) benchmark: SPICE NOT operation on the 2T-1C cell."""

from benchmarks.conftest import attach_report
from repro.experiments.fig3_cell import run_fig3d


def test_fig3d_not_operation(benchmark):
    report = benchmark.pedantic(run_fig3d, rounds=2, iterations=1)
    attach_report(benchmark, report)
