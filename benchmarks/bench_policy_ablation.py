"""Ablation benchmark: DRAM staging-policy bracket around Fig. 6.

``paper`` (1 AAP/op) is DRAM's best case, ``staged`` reproduces the
paper's headline, ``ambit`` is the faithful worst case — the FeRAM
advantage must grow monotonically across them.
"""

from benchmarks.conftest import attach_report
from repro.experiments.fig6_workloads import run_policy_ablation


def test_staging_policy_ablation(benchmark):
    report = benchmark.pedantic(run_policy_ablation, rounds=1,
                                iterations=1)
    attach_report(benchmark, report)
    ratios = [report.record(f"geomean energy ratio [{p}]").measured
              for p in ("paper", "staged", "ambit")]
    assert ratios[0] < ratios[1] < ratios[2]
