"""Substrate micro-benchmarks: solver, device model and engine speed.

Not paper artefacts — these track the performance of the simulation
infrastructure itself (useful when extending the repository).
"""

import numpy as np

from repro.arch.primitives import make_engine
from repro.core.behavioral import BehavioralCell
from repro.ferro.materials import NVDRAM_CAL
from repro.ferro.preisach import DomainBank
from repro.spice import (
    PWL,
    Capacitor,
    Circuit,
    Resistor,
    TransientSolver,
    VoltageSource,
)


def test_transient_solver_rc_throughput(benchmark):
    def run():
        ckt = Circuit("rc")
        ckt.add(VoltageSource("vin", "in", "0",
                              PWL([(0, 0.0), (1e-9, 1.0)])))
        ckt.add(Resistor("r1", "in", "out", 1e3))
        ckt.add(Capacitor("c1", "out", "0", 1e-9))
        return TransientSolver(ckt).run(1e-6, 1e-9)

    result = benchmark(run)
    assert len(result) > 500


def test_domain_bank_waveform_throughput(benchmark):
    times = np.linspace(0.0, 1e-3, 2000)
    voltages = 3.0 * np.sin(2 * np.pi * 2e3 * times)

    def run():
        bank = DomainBank(NVDRAM_CAL)
        return bank.apply_waveform(times, voltages)

    p = benchmark(run)
    assert np.max(np.abs(p)) > 0.5 * NVDRAM_CAL.ps


def test_behavioral_cell_minority_throughput(benchmark):
    def run():
        cell = BehavioralCell(n_caps=3)
        return cell.level_sweep()

    levels = benchmark(run)
    assert len(levels) == 8


def test_bulk_engine_counting_throughput(benchmark):
    def run():
        eng = make_engine("feram-2tnc", functional=False)
        a = eng.allocate(1 << 25)
        b = eng.allocate(1 << 25, group_with=a)
        for _ in range(64):
            eng.xor(a, b)
        return eng.finalize()

    stats = benchmark(run)
    assert stats.total_cycles > 0


def test_bulk_engine_functional_throughput(benchmark):
    rng = np.random.default_rng(0)
    bits_a = rng.integers(0, 2, 1 << 20, dtype=np.uint8)
    bits_b = rng.integers(0, 2, 1 << 20, dtype=np.uint8)

    def run():
        eng = make_engine("feram-2tnc", functional=True)
        a = eng.load(bits_a)
        b = eng.load(bits_b, group_with=a)
        return eng.xor(a, b).logical_bits()

    out = benchmark(run)
    assert np.array_equal(out, bits_a ^ bits_b)
