"""Fig. 4(g,h) benchmark: pulse-width/amplitude switching kinetics."""

from benchmarks.conftest import attach_report
from repro.experiments.fig4_device import run_fig4gh


def test_fig4gh_switching_kinetics(benchmark):
    report = benchmark.pedantic(run_fig4gh, kwargs={"quick": True},
                                rounds=2, iterations=1)
    attach_report(benchmark, report)
