"""Fig. 4(f) benchmark: endurance sweep to 1e6 cycles."""

from benchmarks.conftest import attach_report
from repro.experiments.fig4_device import run_fig4f


def test_fig4f_endurance(benchmark):
    report = benchmark(run_fig4f)
    attach_report(benchmark, report)
