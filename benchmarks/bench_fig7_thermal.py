"""Fig. 7 benchmark: steady-state thermal solve of the stacked SoC."""

from benchmarks.conftest import attach_report
from repro.experiments.fig7_thermal import run_fig7


def test_fig7_thermal_profile(benchmark):
    report = benchmark.pedantic(run_fig7, rounds=2, iterations=1)
    attach_report(benchmark, report)
