"""Fig. 3(f) benchmark: SPICE TBA NAND-NOR over all eight states."""

from benchmarks.conftest import attach_report
from repro.experiments.fig3_cell import run_fig3f


def test_fig3f_tba_minority(benchmark):
    report = benchmark.pedantic(run_fig3f, rounds=1, iterations=1)
    attach_report(benchmark, report)
