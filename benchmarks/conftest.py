"""Benchmark-suite helpers: paper-vs-measured reporting."""

from __future__ import annotations


def attach_report(benchmark, report) -> None:
    """Record an experiment report's key numbers on the benchmark and
    assert the reproduction passed."""
    for record in report.records:
        if record.paper is not None:
            benchmark.extra_info[record.name] = {
                "paper": record.paper,
                "measured": record.measured,
                "unit": record.unit,
            }
    failing = [rec.format() for rec in report.records if not rec.passed]
    assert report.passed, "\n".join(failing)
