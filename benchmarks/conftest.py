"""Benchmark-suite helpers: paper-vs-measured reporting.

The suite uses the ``benchmark`` fixture of pytest-benchmark when that
plugin is installed; otherwise a minimal single-pass fallback fixture is
provided here so ``pytest benchmarks`` still runs (and still verifies the
reproduction assertions) without timing statistics.
"""

from __future__ import annotations

import time

import pytest


class _FallbackBenchmark:
    """Single-pass stand-in for pytest-benchmark's fixture."""

    def __init__(self) -> None:
        self.extra_info: dict = {}
        self.stats = None
        self.elapsed: float | None = None

    def __call__(self, func, *args, **kwargs):
        start = time.perf_counter()
        result = func(*args, **kwargs)
        self.elapsed = time.perf_counter() - start
        return result

    def pedantic(self, func, args=(), kwargs=None, **_unused):
        return self(func, *args, **(kwargs or {}))


class _FallbackBenchmarkPlugin:
    """Provides ``benchmark`` when pytest-benchmark is absent/disabled."""

    @pytest.fixture
    def benchmark(self) -> _FallbackBenchmark:
        return _FallbackBenchmark()


def pytest_configure(config) -> None:
    # Registered post-CLI so `-p no:benchmark` and a missing plugin both
    # fall back cleanly, while an active pytest-benchmark wins.
    if not config.pluginmanager.hasplugin("benchmark"):
        config.pluginmanager.register(_FallbackBenchmarkPlugin(),
                                      "fallback-benchmark")


def attach_report(benchmark, report) -> None:
    """Record an experiment report's key numbers on the benchmark and
    assert the reproduction passed."""
    for record in report.records:
        if record.paper is not None:
            benchmark.extra_info[record.name] = {
                "paper": record.paper,
                "measured": record.measured,
                "unit": record.unit,
            }
    failing = [rec.format() for rec in report.records if not rec.passed]
    assert report.passed, "\n".join(failing)
