"""Fig. 5 / §V benchmark: area and density model."""

from benchmarks.conftest import attach_report
from repro.experiments.fig5_area import run_fig5


def test_fig5_area_density(benchmark):
    report = benchmark(run_fig5)
    attach_report(benchmark, report)
