"""§VI energy-parameter derivation benchmark (22.6/16.6/28/0.32 nJ)."""

from benchmarks.conftest import attach_report
from repro.experiments.energy_params import run_energy_params


def test_energy_parameter_derivation(benchmark):
    report = benchmark(run_energy_params)
    attach_report(benchmark, report)
