"""CAM search throughput: the ``cam_scale`` benchmark.

A 16 Mi-row table with a 16-bit key field (one column per key bit
position, the paper's column-per-bit layout) answers a mix of exact
and masked/ternary searches through ``service.match`` — the full
pipeline: key canonicalization, AIG lowering to an AND-of-literals,
vectorized one-pass ``np.bitwise_*`` execution, and the closed-form
2T-nC read-path energy attribution per search.

Reported: best batch wall-clock, row-matches/s across the batch, and
the mean attributed in-memory energy per search.  The raw
:class:`ColumnStore` kernel throughput rides along as a nested record
(no service overhead: just the packed-word AND-fold).

The entry is recorded in ``BENCH_substrate.json`` and gated two ways
by ``perf_smoke --check``: the generic 25% wall-clock gate, and a hard
throughput floor of ``MIN_ROWS_PER_S`` row-matches/s.
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro.service import BitwiseService
from repro.service.columnstore import ColumnStore

#: cam_scale geometry: 16 Mi rows x 16 key-bit columns
CAM_BITS = 1 << 24
CAM_SHARDS = 8
KEY_WIDTH = 16

#: hard floor on searched row-matches per second (acceptance gate)
MIN_ROWS_PER_S = 1e8

#: the search mix: exact, prefix-ternary, sparse-ternary, masked exact
SEARCHES = [
    ("exact", "0b1011001110001101", None),
    ("prefix8", "0b10110011xxxxxxxx", None),
    ("sparse4", "0b1xxx0xxxxxx1xxx0", None),
    ("masked", "0b1011001110001101", "0b1111000011110000"),
]


def _time(fn, *, repeat: int = 3) -> float:
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def cam_scale(*, n_bits: int = CAM_BITS, repeat: int = 3) -> dict:
    """Searched-rows/s and energy/search for the cam_scale mix."""
    rng = np.random.default_rng(7)
    with BitwiseService("feram-2tnc", n_bits=n_bits,
                        n_shards=CAM_SHARDS) as svc:
        cols = [f"k{j}" for j in range(KEY_WIDTH)]
        for name in cols:
            svc.create_column(
                name, (rng.random(n_bits) < 0.5).astype(np.uint8))

        energy: list[float] = []

        def run():
            energy.clear()
            for _, key, mask in SEARCHES:
                result = svc.match(cols, key, mask, use_cache=False)
                assert result.count is not None
                energy.append(result.energy_j)

        run()  # warm the plan pipeline; the timing measures searches
        seconds = _time(run, repeat=repeat)
    rows_per_s = n_bits * len(SEARCHES) / seconds
    return {
        "seconds": seconds,
        "searches": len(SEARCHES),
        "key_width": KEY_WIDTH,
        "rows_per_s": rows_per_s,
        "energy_per_search_nj": 1e9 * sum(energy) / len(energy),
        "kernel": _kernel_rate(rng, n_bits),
    }


def _kernel_rate(rng, n_bits: int) -> dict:
    """Raw ColumnStore.match throughput (nested record, ungated)."""
    store = ColumnStore(n_bits, CAM_SHARDS)
    names = [f"k{j}" for j in range(KEY_WIDTH)]
    for name in names:
        store.add(name, (rng.random(n_bits) < 0.5).astype(np.uint8))
    out = np.zeros(store.shape, dtype=np.uint64)

    def run():
        for _, key, mask in SEARCHES:
            store.match(names, key, mask, out=out)

    run()
    seconds = _time(run, repeat=3)
    return {
        "seconds": seconds,
        "rows_per_s": round(n_bits * len(SEARCHES) / seconds),
    }


def main() -> int:
    record = cam_scale()
    record["rows_per_s"] = round(record["rows_per_s"])
    record["seconds"] = round(record["seconds"], 4)
    record["energy_per_search_nj"] = round(
        record["energy_per_search_nj"], 1)
    print(json.dumps(record, indent=2))
    if record["rows_per_s"] < MIN_ROWS_PER_S:
        print(f"FAIL: {record['rows_per_s']:.3g} row-matches/s below "
              f"the {MIN_ROWS_PER_S:.0e} floor")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
