"""Fig. 4(d) benchmark: fabricated-transistor transfer curve."""

from benchmarks.conftest import attach_report
from repro.experiments.fig4_device import run_fig4d


def test_fig4d_transfer_curve(benchmark):
    report = benchmark(run_fig4d)
    attach_report(benchmark, report)
