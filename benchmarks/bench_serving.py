"""Async serving-stack load generator and benchmarks.

Closed-loop multi-client load against the asyncio JSON-lines server:
each client opens its own TCP connection and issues its next request
as soon as the previous response arrives, mixing queries with
in-place column mutations.  Per-request latencies aggregate into
p50/p99 and total queries/s — the ``serving_latency`` entry recorded
in ``BENCH_substrate.json`` and gated by ``perf_smoke --check``.

The same run demonstrates dependency-aware invalidation at the
system level: mutation clients write column ``m`` only, so the
query clients' plans over ``a``/``b``/``c`` keep their cache hits
across every mutation.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import numpy as np

from repro.service import BitwiseService, serve_tcp

N_BITS = 1 << 16
N_SHARDS = 4

#: read-only predicates over a/b/c — never invalidated by the
#: mutation clients, which write column m exclusively
QUERY_MIX = ["a & b", "(a & b) | ~c", "a ^ c", "maj(a, b, c)"]


def _make_service() -> BitwiseService:
    rng = np.random.default_rng(7)
    service = BitwiseService("feram-2tnc", n_bits=N_BITS,
                             n_shards=N_SHARDS)
    for name in ("a", "b", "c", "m"):
        service.create_column(
            name, (rng.random(N_BITS) < 0.4).astype(np.uint8))
    return service


class _LoadClient(threading.Thread):
    """One closed-loop client; records per-request latencies."""

    def __init__(self, port: int, requests: list[dict]) -> None:
        super().__init__(daemon=True)
        self.port = port
        self.requests = requests
        self.latencies: list[float] = []
        self.error: Exception | None = None

    def run(self) -> None:
        try:
            sock = socket.create_connection(("127.0.0.1", self.port),
                                            timeout=30)
            stream = sock.makefile("rw")
            for request in self.requests:
                start = time.perf_counter()
                stream.write(json.dumps(request) + "\n")
                stream.flush()
                response = json.loads(stream.readline())
                self.latencies.append(time.perf_counter() - start)
                assert response.get("ok"), response
            sock.close()
        except Exception as exc:
            self.error = exc


def _client_requests(index: int, n_requests: int,
                     mutation_share: float) -> list[dict]:
    """Deterministic per-client request mix (queries + slice writes)."""
    rng = np.random.default_rng(1000 + index)
    requests: list[dict] = []
    for step in range(n_requests):
        if rng.random() < mutation_share:
            offset = int(rng.integers(0, N_BITS - 256))
            bits = rng.integers(0, 2, size=256).tolist()
            requests.append({"op": "write_slice", "name": "m",
                             "offset": offset, "bits": bits})
        else:
            requests.append({"op": "query",
                             "expr": QUERY_MIX[step % len(QUERY_MIX)]})
    return requests


def serving_latency(*, n_clients: int = 6, requests_per_client: int = 40,
                    mutation_share: float = 0.2,
                    batch_window_s: float = 0.0005) -> dict:
    """Closed-loop mixed query/mutation load; p50/p99 and queries/s."""
    service = _make_service()
    server = serve_tcp(service, 0, batch_window_s=batch_window_s)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        clients = [
            _LoadClient(server.server_address[1],
                        _client_requests(index, requests_per_client,
                                         mutation_share))
            for index in range(n_clients)
        ]
        start = time.perf_counter()
        for client in clients:
            client.start()
        for client in clients:
            client.join(timeout=120)
            assert not client.is_alive(), "load client hung"
        elapsed = time.perf_counter() - start
        for client in clients:
            if client.error is not None:
                raise client.error
        latencies = np.array(sorted(
            latency for client in clients
            for latency in client.latencies))
        total = n_clients * requests_per_client
        metrics = dict(server.scheduler.metrics)
        stats = service.stats()
        return {
            "seconds": elapsed,
            "clients": n_clients,
            "requests": total,
            "mutation_share": mutation_share,
            "p50_ms": float(np.percentile(latencies, 50) * 1e3),
            "p99_ms": float(np.percentile(latencies, 99) * 1e3),
            "qps": total / elapsed,
            "batches": metrics["batches"],
            "batched_queries": metrics["batched_queries"],
            "cache_hits": stats["cache_hits"],
            "mutations": stats["mutations_applied"],
        }
    finally:
        server.shutdown()
        server.server_close()
        service.close()


def test_serving_latency_under_mixed_load(benchmark):
    """≥4 concurrent clients, mixed query/mutation traffic: the server
    answers everything, coalesces queries across connections, and —
    because mutations touch only column m — the a/b/c query plans
    keep serving cache hits straight through the writes."""
    record = benchmark(serving_latency)
    assert record["requests"] == record["clients"] * 40
    assert record["clients"] >= 4
    assert record["mutations"] > 0
    assert record["p50_ms"] <= record["p99_ms"]
    # Coalescing: strictly fewer vector batches than queries answered.
    assert record["batches"] < record["batched_queries"]
    # Dependency-aware invalidation at the system level: with only
    # four distinct read plans, nearly every query after warm-up is a
    # hit despite the interleaved mutations.
    assert record["cache_hits"] > record["batched_queries"] // 2
    benchmark.extra_info["serving_latency"] = {
        key: round(value, 4) if isinstance(value, float) else value
        for key, value in record.items()}
