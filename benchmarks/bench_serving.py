"""Async serving-stack load generator and benchmarks.

Closed-loop multi-client load against the asyncio TCP server: each
client opens its own connection and issues its next request as soon
as the previous response arrives, mixing queries with in-place column
mutations.  Per-request latencies aggregate into p50/p99 and total
queries/s — the ``serving_latency`` entry recorded in
``BENCH_substrate.json`` and gated by ``perf_smoke --check``.

Clients speak either wire: JSON-lines (default) or the negotiated
binary ``REPB`` frames (``wire="binary"``), with mutation payloads
shipped as packed words.  Client-side wire-encode time (JSON dumps /
frame packing) is measured separately from round-trip latency so the
record splits serialization cost from server time.

The same run demonstrates dependency-aware invalidation at the
system level: mutation clients write column ``m`` only, so the
query clients' plans over ``a``/``b``/``c`` keep their cache hits
across every mutation.
"""

from __future__ import annotations

import json
import socket
import tempfile
import threading
import time

import numpy as np

from repro.service import BitwiseService, DurabilityManager, serve_tcp
from repro.service import wire as wire_codec

N_BITS = 1 << 16
N_SHARDS = 4

#: read-only predicates over a/b/c — never invalidated by the
#: mutation clients, which write column m exclusively
QUERY_MIX = ["a & b", "(a & b) | ~c", "a ^ c", "maj(a, b, c)"]


def _make_service(*, workers: int = 1,
                  replicas: int = 0) -> BitwiseService:
    rng = np.random.default_rng(7)
    service = BitwiseService("feram-2tnc", n_bits=N_BITS,
                             n_shards=N_SHARDS, workers=workers,
                             replicas=replicas)
    if workers > 1:
        # The 64Ki-bit bench table is far below the default
        # work threshold; drop it so the process tier actually
        # executes the scattered jobs being measured.
        service._parallel_min_work = 0
    for name in ("a", "b", "c", "m"):
        service.create_column(
            name, (rng.random(N_BITS) < 0.4).astype(np.uint8))
    return service


class _LoadClient(threading.Thread):
    """One closed-loop client; records per-request latencies and the
    client-side wire-encode share separately."""

    def __init__(self, port: int, requests: list[dict],
                 wire: str = "json") -> None:
        super().__init__(daemon=True)
        self.port = port
        self.requests = requests
        self.wire = wire
        self.latencies: list[float] = []
        self.encode_s = 0.0
        self.error: Exception | None = None

    def run(self) -> None:
        try:
            if self.wire == "binary":
                self._run_binary()
            else:
                self._run_json()
        except Exception as exc:
            self.error = exc

    def _run_json(self) -> None:
        sock = socket.create_connection(("127.0.0.1", self.port),
                                        timeout=30)
        stream = sock.makefile("rw")
        for request in self.requests:
            start = time.perf_counter()
            line = json.dumps(request) + "\n"
            self.encode_s += time.perf_counter() - start
            stream.write(line)
            stream.flush()
            response = json.loads(stream.readline())
            self.latencies.append(time.perf_counter() - start)
            assert response.get("ok"), response
        sock.close()

    def _run_binary(self) -> None:
        sock = socket.create_connection(("127.0.0.1", self.port),
                                        timeout=30)
        stream = sock.makefile("rb")
        sock.sendall((json.dumps({"op": "hello", "wire": "binary"})
                      + "\n").encode())
        hello = json.loads(stream.readline())
        assert hello.get("ok"), hello
        for request in self.requests:
            start = time.perf_counter()
            meta = dict(request)
            bits = meta.pop("bits", None)
            if bits is not None:  # one flat payload, not segments
                bits = np.asarray(bits, dtype=np.uint8)
            frame = wire_codec.encode_frame(
                wire_codec.KIND_REQUEST, meta, bits)
            self.encode_s += time.perf_counter() - start
            sock.sendall(frame)
            header = wire_codec.decode_header(
                stream.read(wire_codec.HEADER_SIZE))
            meta_bytes = stream.read(header.meta_len)
            payload = stream.read(header.payload_bytes)
            response, _ = wire_codec.decode_frame(
                header, meta_bytes, payload)
            self.latencies.append(time.perf_counter() - start)
            assert response.get("ok"), response
        sock.close()


def _client_requests(index: int, n_requests: int,
                     mutation_share: float) -> list[dict]:
    """Deterministic per-client request mix (queries + slice writes)."""
    rng = np.random.default_rng(1000 + index)
    requests: list[dict] = []
    for step in range(n_requests):
        if rng.random() < mutation_share:
            offset = int(rng.integers(0, N_BITS - 256))
            bits = rng.integers(0, 2, size=256).tolist()
            requests.append({"op": "write_slice", "name": "m",
                             "offset": offset, "bits": bits})
        else:
            requests.append({"op": "query",
                             "expr": QUERY_MIX[step % len(QUERY_MIX)]})
    return requests


def serving_latency(*, n_clients: int = 6, requests_per_client: int = 40,
                    mutation_share: float = 0.2,
                    batch_window_s: float = 0.0005,
                    wire: str = "json",
                    durable: bool = False,
                    workers: int = 1, replicas: int = 0) -> dict:
    """Closed-loop mixed query/mutation load; p50/p99 and queries/s.

    ``durable=True`` runs the identical load with a write-ahead log
    attached (``sync="batch"``: one fsync per mutation barrier), so
    the recorded delta against the plain run is the end-to-end WAL
    overhead on the serving path.  ``workers>1`` serves through the
    multi-process shard-worker tier over the shared-memory store;
    ``replicas>0`` adds asynchronously-fed read replicas (queries
    route to them under the generation-fence staleness contract).
    """
    service = _make_service(workers=workers, replicas=replicas)
    data_dir = None
    if durable:
        data_dir = tempfile.TemporaryDirectory(prefix="repro-wal-")
        manager = DurabilityManager(data_dir.name, snapshot_every=256,
                                    sync="batch")
        manager.open(manager.load_base()[0])
        service.attach_durability(manager)
    server = serve_tcp(service, 0, batch_window_s=batch_window_s)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        clients = [
            _LoadClient(server.server_address[1],
                        _client_requests(index, requests_per_client,
                                         mutation_share),
                        wire=wire)
            for index in range(n_clients)
        ]
        start = time.perf_counter()
        for client in clients:
            client.start()
        for client in clients:
            client.join(timeout=120)
            assert not client.is_alive(), "load client hung"
        elapsed = time.perf_counter() - start
        for client in clients:
            if client.error is not None:
                raise client.error
        latencies = np.array(sorted(
            latency for client in clients
            for latency in client.latencies))
        total = n_clients * requests_per_client
        encode_s = sum(client.encode_s for client in clients)
        metrics = dict(server.scheduler.metrics)
        stats = service.stats()
        return {
            "seconds": elapsed,
            "wire": wire,
            "workers": workers,
            "replicas": replicas,
            "replica_reads": stats.get("executor", {}).get(
                "replica_reads", 0),
            "clients": n_clients,
            "requests": total,
            "mutation_share": mutation_share,
            "p50_ms": float(np.percentile(latencies, 50) * 1e3),
            "p99_ms": float(np.percentile(latencies, 99) * 1e3),
            "qps": total / elapsed,
            "encode_s": encode_s,
            "encode_ms_per_request": encode_s * 1e3 / total,
            "batches": metrics["batches"],
            "batched_queries": metrics["batched_queries"],
            "cache_hits": stats["cache_hits"],
            "mutations": stats["mutations_applied"],
        }
    finally:
        server.shutdown()
        server.server_close()
        service.close()


def test_serving_latency_under_mixed_load(benchmark):
    """≥4 concurrent clients, mixed query/mutation traffic: the server
    answers everything, coalesces queries across connections, and —
    because mutations touch only column m — the a/b/c query plans
    keep serving cache hits straight through the writes."""
    record = benchmark(serving_latency)
    assert record["requests"] == record["clients"] * 40
    assert record["clients"] >= 4
    assert record["mutations"] > 0
    assert record["p50_ms"] <= record["p99_ms"]
    # The encode split is a strict share of total wall-clock.
    assert 0.0 <= record["encode_s"] < record["seconds"]
    # Coalescing: strictly fewer vector batches than queries answered.
    assert record["batches"] < record["batched_queries"]
    # Dependency-aware invalidation at the system level: with only
    # four distinct read plans, nearly every query after warm-up is a
    # hit despite the interleaved mutations.
    assert record["cache_hits"] > record["batched_queries"] // 2
    benchmark.extra_info["serving_latency"] = {
        key: round(value, 4) if isinstance(value, float) else value
        for key, value in record.items()}


def test_serving_latency_binary_wire(benchmark):
    """The same closed loop over negotiated REPB frames: every
    request answered, mutations land, and the recorded encode share
    stays split out."""
    record = benchmark(lambda: serving_latency(wire="binary"))
    assert record["wire"] == "binary"
    assert record["requests"] == record["clients"] * 40
    assert record["mutations"] > 0
    assert 0.0 <= record["encode_s"] < record["seconds"]
    benchmark.extra_info["serving_latency_binary"] = {
        key: round(value, 4) if isinstance(value, float) else value
        for key, value in record.items()}
