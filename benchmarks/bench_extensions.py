"""Extension benchmarks: variation Monte-Carlo and write-back economics.

These go beyond the paper's figures, quantifying its prose claims
("robust reliability", "minimizing write-backs").
"""

from benchmarks.conftest import attach_report
from repro.experiments.extensions import run_variation, run_writeback


def test_writeback_economics(benchmark):
    report = benchmark(run_writeback)
    attach_report(benchmark, report)


def test_variation_grain_scaling(benchmark):
    report = benchmark.pedantic(run_variation, kwargs={"n_cells": 10},
                                rounds=1, iterations=1)
    assert report.record("yield grows with grain count").passed
    assert report.record("hard failures at 1024 grains").passed
