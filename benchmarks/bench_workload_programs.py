"""Program-executor benchmarks: dataflow workloads on the service.

Tracks the tentpole claims of the multi-statement program layer:

* the four dataflow workloads (BNN, CRC8, XOR cipher, masked init)
  run end-to-end on the columnar vector backend, verified bit-exactly
  against their numpy references;
* the vector backend beats the interpreted per-shard engine replay on
  the adder-tree-heavy BNN program (the `workload_scale` record in
  ``BENCH_substrate.json`` pins the 16Mi-lane figure);
* program compilation (per-statement plans + whole-program AIG +
  bytecode) stays cheap enough to amortize after one run.
"""

import numpy as np

from repro.arch.program import compile_program
from repro.workloads import run_workload
from repro.workloads.bnn import BnnInference
from repro.workloads.crc8 import Crc8

BNN_BYTES = 1 << 17   # 64Ki lanes at 16 features
CRC_BYTES = 1 << 13   # 128 lanes of 64-byte records (1544 statements)


def test_bnn_program_vector_backend(benchmark):
    run = benchmark(run_workload, BnnInference(BNN_BYTES),
                    backend="vector", n_shards=4, seed=1)
    assert run.verified is True
    benchmark.extra_info["lanes_per_s"] = round(run.lanes_per_s)
    benchmark.extra_info["energy_per_lane_nj"] = \
        round(run.energy_per_lane_nj, 4)


def test_bnn_program_vector_beats_reference(benchmark):
    """Same program, both backends, identical results; the vector
    executor must win on wall-clock (the 3x+ claim is pinned at scale
    by ``perf_smoke``'s workload_scale gate)."""
    def both():
        runs = {
            backend: run_workload(BnnInference(BNN_BYTES),
                                  backend=backend, n_shards=4, seed=1)
            for backend in ("vector", "reference")
        }
        return runs

    runs = benchmark(both)
    vector, reference = runs["vector"], runs["reference"]
    assert vector.verified and reference.verified
    assert vector.cycles == reference.cycles
    for name in ("neuron0", "neuron1"):
        assert np.array_equal(vector.result.outputs[name],
                              reference.result.outputs[name])
    benchmark.extra_info["speedup"] = round(
        reference.elapsed_s / vector.elapsed_s, 2)


def test_crc8_program_compile_amortizes(benchmark):
    """Compiling the 1544-statement CRC8 program (per-statement plans,
    program AIG, bytecode, cost probe) is a one-time cost."""
    workload = Crc8(CRC_BYTES)
    program = workload.as_program().program

    def compile_and_probe():
        cprog = compile_program(program, inverting=True)
        cprog.vector_program()
        cprog.cost_events()
        return cprog

    cprog = benchmark(compile_and_probe)
    assert len(cprog.stmt_plans) == len(program)
    benchmark.extra_info["statements"] = len(program)


def test_crc8_program_end_to_end(benchmark):
    run = benchmark(run_workload, Crc8(CRC_BYTES), backend="vector",
                    n_shards=2)
    assert run.verified is True
    benchmark.extra_info["statements"] = run.statements
