"""Perf smoke: timed hot paths, recorded to BENCH_substrate.json.

Runs the benchmarks the optimization work targets — the ``variation``
Monte-Carlo experiment, the ``fig3f`` SPICE TBA sweep, the RC transient
solve, the behavioral level sweep, a sharded-service query batch and
the 16Mi-lane BNN program (``workload_scale``) — and writes wall-clock
timings (with the frozen seed baselines for trajectory) plus the
compiler's native-primitive counts to ``BENCH_substrate.json`` at the
repo root.  CI runs this after the test suite so every PR leaves a
recorded perf data point.

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py [output.json]
    PYTHONPATH=src python benchmarks/perf_smoke.py out.json --check BENCH_substrate.json
    PYTHONPATH=src python benchmarks/perf_smoke.py --summary-from out.json

``--check BASELINE`` turns the run into a regression gate: it fails
(exit 1) when any timed benchmark is more than ``REGRESSION_TOLERANCE``
slower than the committed baseline, or when a compiled primitive count
regresses at all.  ``--summary-from RECORD`` prints a markdown
baseline-vs-measured trajectory table from an existing record (used by
CI to publish the perf history in the job summary) and exits.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.arch.expr import compile_expr
from repro.core.behavioral import BehavioralCell
from repro.experiments.registry import run_experiment
from repro.service import BitwiseService
from repro.spice import (
    PWL,
    Capacitor,
    Circuit,
    Resistor,
    TransientSolver,
    VoltageSource,
)
from repro.workloads import bitmap_index, set_ops

sys.path.insert(0, str(Path(__file__).resolve().parent))
from bench_cam import MIN_ROWS_PER_S, cam_scale  # noqa: E402
from bench_durability import recovery_time, wal_overhead  # noqa: E402
from bench_serving import serving_latency  # noqa: E402

#: wall-clock seconds of the seed implementation (commit 253f800,
#: measured on the same container class CI uses), kept as the fixed
#: "before" reference each run is compared against.  Entries introduced
#: after the seed use their introduction-time measurement as baseline.
SEED_BASELINE_S = {
    "variation": 5.22,
    "fig3f": 2.90,
    "rc_transient": 0.0393,
    "behavioral_level_sweep": 0.0358,
    # introduced with the compiler/service PR; baseline = first measure
    "service_batch": 0.0083,
    # introduced with the columnar executor PR (reference-backend
    # measure of the same 16Mi-bit mixed batch); baseline = the
    # engine-replay path the vectorized executor replaces
    "service_scale": 0.2364,
    # introduced with the program-executor PR: 16Mi-lane BNN inference
    # as a 252-statement program; baseline = the interpreted per-shard
    # engine replay of the same program (backend="reference")
    "workload_scale": 0.573,
    # introduced with the async serving PR: closed-loop mixed
    # query/mutation load from 6 concurrent TCP clients (240 requests)
    # through the batching scheduler; baseline = introduction measure
    "serving_latency": 0.0654,
    # introduced with the component-registry PR: the default 12-point
    # design-space sweep (closed-form plan_stats re-costing + Pareto
    # extraction); baseline = introduction measure
    "explore_sweep": 0.0275,
    # introduced with the durability PR: 64 mutations through the
    # write-ahead log with sync="batch" (one fsync per barrier);
    # baseline = introduction measure.  Cold recovery of the 16Mi-bit
    # store rides along as a nested (ungated) record.
    "durability": 0.032,
    # introduced with the CAM search PR: four exact/ternary searches
    # over a 16Mi-row, 16-bit key field through service.match
    # (vectorized AND-of-literals + closed-form read-path energy);
    # baseline = introduction measure.  Also gated by a hard
    # MIN_ROWS_PER_S throughput floor.
    "cam_scale": 0.0139,
}

#: allowed relative slowdown vs the committed baseline (CI gate)
REGRESSION_TOLERANCE = 0.25

#: absolute grace added on top of the relative tolerance — sub-50 ms
#: timings routinely jitter more than 25% across shared CI runners, and
#: a wall-clock gate must not go red on scheduler noise
REGRESSION_GRACE_S = 0.05

#: queries whose compiled-vs-naive native primitive counts are recorded
PRIMITIVE_QUERIES = {
    "fig6_bitmap": "(c0 & c1 & ~c2) | (c3 & c4 & c5)",
    "cse_3term": "(c0 & c1 & ~c2) | (c0 & c1 & c3) | (c4 & c5)",
}


def _time(fn, *, repeat: int = 1) -> float:
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _rc_transient():
    ckt = Circuit("rc")
    ckt.add(VoltageSource("vin", "in", "0", PWL([(0, 0.0), (1e-9, 1.0)])))
    ckt.add(Resistor("r1", "in", "out", 1e3))
    ckt.add(Capacitor("c1", "out", "0", 1e-9))
    result = TransientSolver(ckt).run(1e-6, 1e-9)
    assert len(result) > 500
    return result


def _service_batch():
    """A 1 Mi-bit, 4-shard service answering a five-query batch."""
    rng = np.random.default_rng(0)
    n_bits = 1 << 20
    with BitwiseService("feram-2tnc", n_bits=n_bits, n_shards=4) as svc:
        for name in ("a", "b", "c", "d"):
            svc.create_column(
                name, (rng.random(n_bits) < 0.35).astype(np.uint8))
        queries = ["a & ~b", "(a & b & ~c) | (c & d)", "a ^ b",
                   "maj(a, b, c) | ~d", "(a & b & ~c) | (a & b & d)"]

        def run():
            results = svc.execute(queries, use_cache=False)
            assert all(result.count is not None for result in results)

        run()  # warm the plan cache; the timing measures execution
        return _time(run, repeat=3)


#: service_scale geometry: a 16 Mi-bit table (≥16M bits per column)
SCALE_BITS = 1 << 24
SCALE_SHARDS = 8


def _scale_queries() -> list[str]:
    """Mixed workload batch: bitmap-index predicates + set algebra."""
    return (bitmap_index.service_queries()
            + set_ops.service_queries("c0", "c1"))


def _service_scale(*, backend: str = "vector", fuse: bool = True,
                   workers: int | None = None,
                   repeat: int = 3) -> dict:
    """Large-scale serving throughput: mixed queries over 16Mi bits.

    Returns the best batch wall-clock plus derived throughput
    (table-rows answered per second across the batch) and the mean
    attributed in-memory energy per query.  ``fuse``/``workers``
    select the vector executor tier for variant records.
    """
    rng = np.random.default_rng(1)
    queries = _scale_queries()
    with BitwiseService("feram-2tnc", n_bits=SCALE_BITS,
                        n_shards=SCALE_SHARDS, backend=backend,
                        fuse=fuse, workers=workers) as svc:
        if workers is not None and workers > 1:
            # Worker variants measure the process tier itself: drop
            # the work threshold so every query scatters.
            svc._parallel_min_work = 0
        for k in range(bitmap_index.N_COLUMNS):
            svc.create_column(
                f"c{k}",
                (rng.random(SCALE_BITS) < 0.4).astype(np.uint8))

        energy: list[float] = []

        def run():
            results = svc.execute(queries, use_cache=False)
            assert all(result.count is not None for result in results)
            energy[:] = [result.energy_j for result in results]

        run()  # warm plans / programs / probed cost events
        seconds = _time(run, repeat=repeat)
    return {
        "seconds": seconds,
        "rows_per_s": SCALE_BITS * len(queries) / seconds,
        "queries": len(queries),
        "energy_per_query_nj": 1e9 * sum(energy) / len(energy),
    }


#: workload_scale geometry: BNN inference over 16 Mi lanes (16
#: features, 4 neurons -> a 252-statement popcount/threshold program)
WORKLOAD_SCALE_LANES = 1 << 24
WORKLOAD_SCALE_SHARDS = 8


def _workload_scale(*, backend: str = "vector", fuse: bool = True,
                    workers: int | None = None,
                    repeat: int = 3) -> dict:
    """Program-executor throughput: 16Mi-lane BNN on the service.

    The whole dense layer runs as one multi-statement program
    (XNOR + popcount adder trees + thresholds); returns the best
    program wall-clock plus lanes/s and the attributed in-memory
    energy per lane.
    """
    from repro.workloads.bnn import BnnInference
    from repro.workloads.programs import generate_inputs

    workload = BnnInference(WORKLOAD_SCALE_LANES * 16 // 8)
    program = workload.as_program(seed=1)
    assert program.n_lanes == WORKLOAD_SCALE_LANES
    inputs = generate_inputs(program, seed=1)
    with BitwiseService("feram-2tnc", n_bits=program.n_lanes,
                        n_shards=WORKLOAD_SCALE_SHARDS,
                        backend=backend, fuse=fuse,
                        workers=workers) as svc:
        for name, bits in inputs.items():
            svc.create_column(name, bits)
        last = {}

        def run():
            last["result"] = svc.run_program(program.program)

        run()  # warm: program compile + cost-event probe
        seconds = _time(run, repeat=repeat)
        energy_j = last["result"].energy_j
    return {
        "seconds": seconds,
        "lanes": program.n_lanes,
        "statements": len(program.program),
        "rows_per_s": program.n_lanes / seconds,
        "energy_per_lane_nj": energy_j * 1e9 / program.n_lanes,
    }


def _explore_sweep(*, repeat: int = 5) -> dict:
    """Design-space sweep throughput: the default grid re-costed in
    closed form (the warm-up probes the workload suite once; the
    timing measures per-point spec assembly + ``plan_stats`` expansion
    + Pareto extraction across all points)."""
    from repro.explore import default_sweep_geometries, run_explore

    geometries = default_sweep_geometries()
    last = {}

    def run():
        last["payload"] = run_explore(geometries)

    run()  # warm: compile + probe the workload suite
    seconds = _time(run, repeat=repeat)
    payload = last["payload"]
    return {"seconds": seconds,
            "points": len(payload["points"]),
            "pareto": payload["pareto"]}


def primitive_counts() -> dict:
    """Compiled-vs-naive native primitive counts per row."""
    record = {}
    for label, query in PRIMITIVE_QUERIES.items():
        feram = compile_expr(query, inverting=True)
        dram = compile_expr(query, inverting=False)
        record[label] = {
            "query": query,
            "feram_acp_per_row": {"naive": feram.naive_primitives,
                                  "compiled": feram.primitives},
            "dram_aap_per_row": {"naive": dram.naive_primitives,
                                 "compiled": dram.primitives},
        }
    return record


def run_smoke() -> dict:
    timings = {}
    # Warm imports/caches once so timings measure the hot paths.
    _rc_transient()
    BehavioralCell(n_caps=3).level_sweep()

    report = run_experiment("variation")
    assert report.passed, "variation experiment regressed"
    timings["variation"] = _time(lambda: run_experiment("variation"),
                                 repeat=3)

    report = run_experiment("fig3f")
    assert report.passed, "fig3f experiment regressed"
    timings["fig3f"] = _time(lambda: run_experiment("fig3f"), repeat=3)

    timings["rc_transient"] = _time(_rc_transient, repeat=5)
    timings["behavioral_level_sweep"] = _time(
        lambda: BehavioralCell(n_caps=3).level_sweep(), repeat=5)
    timings["service_batch"] = _service_batch()
    scale = _service_scale(repeat=5)
    timings["service_scale"] = scale["seconds"]
    # Executor-tier variants: same batch with the fuser off and across
    # process-worker counts (nested records; not part of the gate).
    scale_unfused = _service_scale(fuse=False, repeat=1)
    cores = len(os.sched_getaffinity(0))
    scale_procs = {n: _service_scale(workers=n, repeat=1)
                   for n in (1, 2, 4)}
    if cores >= 4:
        # The serving-scale acceptance gate: four process workers must
        # at least halve the single-process batch time.  Only
        # meaningful where the container actually exposes the cores.
        assert scale_procs[4]["seconds"] * 2.0 <= \
            scale_procs[1]["seconds"], (
                f"service_scale w4 {scale_procs[4]['seconds']:.4f}s "
                f"is not >=2x faster than w1 "
                f"{scale_procs[1]['seconds']:.4f}s on {cores} cores")
    workload = _workload_scale(repeat=5)
    timings["workload_scale"] = workload["seconds"]
    workload_unfused = _workload_scale(fuse=False, repeat=1)
    serving = min((serving_latency() for _ in range(3)),
                  key=lambda record: record["seconds"])
    timings["serving_latency"] = serving["seconds"]
    serving_binary = serving_latency(wire="binary")
    serving_procs = {n: serving_latency(workers=n) for n in (1, 2, 4)}
    serving_replica = serving_latency(replicas=2)
    if cores >= 4:
        # More workers must never cost throughput on a real multicore.
        assert serving_procs[1]["qps"] <= serving_procs[2]["qps"] <= \
            serving_procs[4]["qps"], (
                "serving_latency qps not monotone across workers: "
                + ", ".join(f"w{n}={serving_procs[n]['qps']:.0f}"
                            for n in (1, 2, 4)))
    # Best-of-3 like the plain run, so overhead_vs_plain compares
    # like with like (the closed loop jitters ~15% run to run).
    serving_durable = min((serving_latency(durable=True)
                           for _ in range(3)),
                          key=lambda record: record["seconds"])
    explore = _explore_sweep(repeat=5)
    timings["explore_sweep"] = explore["seconds"]
    # Best-of-3: the WAL path's fsyncs jitter more than pure-CPU
    # benches on shared runners.
    durability = min((wal_overhead() for _ in range(3)),
                     key=lambda record: record["seconds"])
    timings["durability"] = durability["seconds"]
    recovery = recovery_time()
    cam = cam_scale(repeat=3)
    timings["cam_scale"] = cam["seconds"]
    assert cam["rows_per_s"] >= MIN_ROWS_PER_S, (
        f"cam_scale throughput {cam['rows_per_s']:.3g} row-matches/s "
        f"fell below the {MIN_ROWS_PER_S:.0e} floor")

    entries = {}
    for name, seconds in timings.items():
        seed = SEED_BASELINE_S[name]
        entries[name] = {
            "seed_s": seed,
            "measured_s": round(seconds, 4),
            "speedup_vs_seed": round(seed / seconds, 2),
        }
    entries["service_scale"].update({
        "rows_per_s": round(scale["rows_per_s"]),
        "queries": scale["queries"],
        "energy_per_query_nj": round(scale["energy_per_query_nj"], 1),
        "variants": {
            "unfused_s": round(scale_unfused["seconds"], 4),
            "fuse_speedup": round(
                scale_unfused["seconds"] / scale["seconds"], 2),
            # Multi-process shard workers over the shared-memory
            # store (w1 = same coordinator, serial execution).
            "process_workers": {
                "cores_visible": cores,
                **{f"w{n}_s": round(record["seconds"], 4)
                   for n, record in scale_procs.items()},
                "scaling_w2": round(scale_procs[1]["seconds"]
                                    / scale_procs[2]["seconds"], 2),
                "scaling_w4": round(scale_procs[1]["seconds"]
                                    / scale_procs[4]["seconds"], 2),
            },
        },
    })
    entries["workload_scale"].update({
        "lanes": workload["lanes"],
        "statements": workload["statements"],
        "rows_per_s": round(workload["rows_per_s"]),
        "energy_per_lane_nj": round(workload["energy_per_lane_nj"], 4),
        "variants": {
            "unfused_s": round(workload_unfused["seconds"], 4),
            "fuse_speedup": round(
                workload_unfused["seconds"] / workload["seconds"], 2),
        },
    })
    entries["serving_latency"].update({
        "clients": serving["clients"],
        "requests": serving["requests"],
        "mutation_share": serving["mutation_share"],
        "p50_ms": round(serving["p50_ms"], 3),
        "p99_ms": round(serving["p99_ms"], 3),
        "qps": round(serving["qps"]),
        "encode_ms_per_request": round(
            serving["encode_ms_per_request"], 4),
        "batches": serving["batches"],
        "cache_hits": serving["cache_hits"],
        "mutations": serving["mutations"],
        "variants": {
            "binary_wire": {
                "seconds": round(serving_binary["seconds"], 4),
                "p50_ms": round(serving_binary["p50_ms"], 3),
                "p99_ms": round(serving_binary["p99_ms"], 3),
                "qps": round(serving_binary["qps"]),
                "encode_ms_per_request": round(
                    serving_binary["encode_ms_per_request"], 4),
            },
            # Same closed loop with the write-ahead log fsyncing every
            # mutation barrier (sync="batch") — the durability tax on
            # the serving path.
            "durable_wal": {
                "seconds": round(serving_durable["seconds"], 4),
                "p50_ms": round(serving_durable["p50_ms"], 3),
                "p99_ms": round(serving_durable["p99_ms"], 3),
                "qps": round(serving_durable["qps"]),
                "overhead_vs_plain": round(
                    serving_durable["seconds"] / serving["seconds"], 3),
            },
            # Same closed loop through the multi-process shard-worker
            # tier (shared-memory store, scatter/gather coordinator).
            "multiprocess": {
                "cores_visible": cores,
                **{f"w{n}": {
                    "seconds": round(record["seconds"], 4),
                    "qps": round(record["qps"]),
                    "p50_ms": round(record["p50_ms"], 3),
                } for n, record in serving_procs.items()},
            },
            # Closed loop with two async read replicas; queries route
            # to them under the generation-fence staleness contract.
            "replicas": {
                "n": serving_replica["replicas"],
                "seconds": round(serving_replica["seconds"], 4),
                "qps": round(serving_replica["qps"]),
                "p50_ms": round(serving_replica["p50_ms"], 3),
                "replica_reads": serving_replica["replica_reads"],
            },
        },
    })
    entries["durability"].update({
        "mutations": durability["mutations"],
        "wal_ms_per_mutation": round(
            durability["wal_ms_per_mutation"], 4),
        "plain_ms_per_mutation": round(
            durability["plain_ms_per_mutation"], 4),
        "overhead_x": round(durability["overhead_x"], 2),
        "wal_bytes": durability["wal_bytes"],
        # Cold-restart latency for the 16Mi-bit store: snapshot load
        # plus WAL-tail replay (nested record; not part of the gate —
        # disk-bound and too jittery for a 25% wall-clock gate).
        "recovery": {
            "seconds": round(recovery["seconds"], 4),
            "n_bits": recovery["n_bits"],
            "columns": recovery["columns"],
            "wal_records_replayed": recovery["wal_records_replayed"],
            "mbits_per_s": round(recovery["mbits_per_s"], 1),
        },
    })
    entries["cam_scale"].update({
        "searches": cam["searches"],
        "key_width": cam["key_width"],
        "rows_per_s": round(cam["rows_per_s"]),
        "energy_per_search_nj": round(cam["energy_per_search_nj"], 1),
        "floor_rows_per_s": MIN_ROWS_PER_S,
        # Raw packed-word kernel rate (no service/plan overhead)
        "kernel_rows_per_s": cam["kernel"]["rows_per_s"],
    })
    entries["explore_sweep"].update({
        "points": explore["points"],
        "pareto": [
            {"technology": point["technology"],
             "f_nm": point["f_nm"],
             "n_caps": point["n_caps"],
             "energy_pj_per_bit": round(
                 point["energy_pj_per_bit"], 3),
             "area_nm2_per_bit": round(
                 point["area_nm2_per_bit"], 1)}
            for point in explore["pareto"]],
    })
    return {
        "suite": "substrate",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "benchmarks": entries,
        "primitive_counts": primitive_counts(),
    }


def check_regression(payload: dict, baseline_path: Path) -> list[str]:
    """Compare a fresh run against the committed record.

    Timings may drift up to ``REGRESSION_TOLERANCE``; primitive counts
    are deterministic and must not regress at all.
    """
    baseline = json.loads(baseline_path.read_text())
    failures = []
    for name, entry in baseline.get("benchmarks", {}).items():
        measured = payload["benchmarks"].get(name)
        if measured is None:
            failures.append(f"benchmark {name!r} disappeared")
            continue
        limit = entry["measured_s"] * (1.0 + REGRESSION_TOLERANCE) \
            + REGRESSION_GRACE_S
        if measured["measured_s"] > limit:
            failures.append(
                f"{name}: {measured['measured_s']:.4f}s vs baseline "
                f"{entry['measured_s']:.4f}s (> {limit:.4f}s allowed)")
    for label, entry in baseline.get("primitive_counts", {}).items():
        measured = payload["primitive_counts"].get(label)
        if measured is None:
            failures.append(f"primitive record {label!r} disappeared")
            continue
        for tech_key in ("feram_acp_per_row", "dram_aap_per_row"):
            before = entry[tech_key]["compiled"]
            after = measured[tech_key]["compiled"]
            if after > before:
                failures.append(
                    f"{label}/{tech_key}: compiled primitives "
                    f"regressed {before} -> {after}")
    return failures


def print_summary(payload: dict) -> None:
    """Markdown baseline-vs-measured trajectory table (CI job summary)."""
    print("## Perf trajectory (`BENCH_substrate.json`)")
    print()
    print("| benchmark | seed (s) | measured (s) | speedup vs seed |")
    print("| --- | ---: | ---: | ---: |")
    for name, entry in payload.get("benchmarks", {}).items():
        print(f"| {name} | {entry['seed_s']:.4f} "
              f"| {entry['measured_s']:.4f} "
              f"| {entry['speedup_vs_seed']:.2f}x |")
    scale = payload.get("benchmarks", {}).get("service_scale", {})
    if "rows_per_s" in scale:
        print()
        print(f"`service_scale`: {scale['rows_per_s'] / 1e9:.2f} G "
              f"table-rows/s over {scale['queries']} mixed queries, "
              f"{scale['energy_per_query_nj'] / 1e6:.2f} mJ "
              f"attributed per query.")
    variants = scale.get("variants", {})
    if "fuse_speedup" in variants:
        print()
        print(f"Fused vs unfused (`service_scale`): "
              f"{variants['unfused_s']:.4f}s unfused -> "
              f"{scale['measured_s']:.4f}s fused "
              f"({variants['fuse_speedup']:.2f}x).")
    procs = variants.get("process_workers", {})
    if "w4_s" in procs:
        print()
        print(f"Process-worker scaling (`service_scale`, "
              f"{procs['cores_visible']} cores visible): "
              f"w1 {procs['w1_s']:.4f}s -> w2 {procs['w2_s']:.4f}s "
              f"({procs['scaling_w2']:.2f}x) -> "
              f"w4 {procs['w4_s']:.4f}s "
              f"({procs['scaling_w4']:.2f}x); efficiency "
              f"{procs['scaling_w4'] / 4:.0%} at 4 workers.")
    workload = payload.get("benchmarks", {}).get("workload_scale", {})
    if "rows_per_s" in workload:
        print()
        print(f"`workload_scale`: {workload['rows_per_s'] / 1e6:.0f} M "
              f"BNN lanes/s ({workload['lanes'] >> 20} Mi lanes, "
              f"{workload['statements']}-statement program), "
              f"{workload['energy_per_lane_nj']:.3f} nJ attributed "
              f"per lane; speedup is vs the interpreted engine-replay "
              f"backend on the same program.")
    serving = payload.get("benchmarks", {}).get("serving_latency", {})
    if "qps" in serving:
        print()
        print(f"`serving_latency`: {serving['qps']} req/s from "
              f"{serving['clients']} closed-loop clients "
              f"({serving['mutation_share']:.0%} mutations), "
              f"p50 {serving['p50_ms']:.2f} ms / "
              f"p99 {serving['p99_ms']:.2f} ms; "
              f"{serving['cache_hits']} cache hits survived "
              f"{serving['mutations']} in-place column mutations "
              f"(dependency-aware invalidation).")
    binary = serving.get("variants", {}).get("binary_wire", {})
    if "qps" in binary:
        print()
        print(f"Binary wire (`serving_latency` variant): "
              f"{binary['qps']} req/s, p50 {binary['p50_ms']:.2f} ms, "
              f"client encode {binary['encode_ms_per_request']:.4f} "
              f"ms/req vs {serving['encode_ms_per_request']:.4f} "
              f"ms/req over JSON.")
    multiproc = serving.get("variants", {}).get("multiprocess", {})
    if "w4" in multiproc:
        print()
        print(f"Multi-process serving (`serving_latency` variants, "
              f"{multiproc['cores_visible']} cores visible): "
              + " -> ".join(
                  f"w{n} {multiproc[f'w{n}']['qps']} req/s "
                  f"(p50 {multiproc[f'w{n}']['p50_ms']:.2f} ms)"
                  for n in (1, 2, 4)) + ".")
    replicas = serving.get("variants", {}).get("replicas", {})
    if "qps" in replicas:
        print()
        print(f"Read replicas (`serving_latency` variant, "
              f"n={replicas['n']}): {replicas['qps']} req/s, "
              f"p50 {replicas['p50_ms']:.2f} ms, "
              f"{replicas['replica_reads']} queries served from "
              f"replicas under the generation-fence staleness "
              f"contract.")
    durable = serving.get("variants", {}).get("durable_wal", {})
    if "qps" in durable:
        print()
        print(f"WAL-enabled serving (`serving_latency` variant): "
              f"{durable['qps']} req/s, p50 {durable['p50_ms']:.2f} ms "
              f"({durable['overhead_vs_plain']:.2f}x the plain run "
              f"with one fsync per mutation barrier).")
    durability = payload.get("benchmarks", {}).get("durability", {})
    if "wal_ms_per_mutation" in durability:
        recovery = durability.get("recovery", {})
        print()
        print(f"`durability`: WAL write path "
              f"{durability['wal_ms_per_mutation']:.3f} ms/mutation "
              f"(plain {durability['plain_ms_per_mutation']:.3f} ms, "
              f"{durability['overhead_x']:.1f}x); cold recovery of "
              f"the {recovery.get('n_bits', 0) >> 20} Mi-bit store "
              f"in {recovery.get('seconds', 0.0):.2f} s "
              f"({recovery.get('wal_records_replayed', 0)} WAL "
              f"records replayed).")
    cam = payload.get("benchmarks", {}).get("cam_scale", {})
    if "rows_per_s" in cam:
        print()
        print(f"`cam_scale`: {cam['rows_per_s'] / 1e9:.2f} G "
              f"row-matches/s across {cam['searches']} exact/ternary "
              f"searches of a {cam['key_width']}-bit key field "
              f"(floor {cam['floor_rows_per_s']:.0e}), "
              f"{cam['energy_per_search_nj'] / 1e3:.1f} uJ attributed "
              f"per search; raw kernel "
              f"{cam['kernel_rows_per_s'] / 1e9:.2f} G rows/s.")
    explore = payload.get("benchmarks", {}).get("explore_sweep", {})
    if explore.get("pareto"):
        print()
        print(f"`explore_sweep`: {explore['points']}-point "
              f"design-space sweep in "
              f"{explore['measured_s'] * 1e3:.1f} ms; "
              f"energy/area Pareto front:")
        print()
        print("| technology | f (nm) | caps | pJ/bit | nm2/bit |")
        print("| --- | ---: | ---: | ---: | ---: |")
        for point in explore["pareto"]:
            print(f"| {point['technology']} | {point['f_nm']:.0f} "
                  f"| {point['n_caps']} "
                  f"| {point['energy_pj_per_bit']:.3f} "
                  f"| {point['area_nm2_per_bit']:.1f} |")
    counts = payload.get("primitive_counts", {})
    if counts:
        print()
        print("| query | FeRAM naive | FeRAM compiled "
              "| DRAM naive | DRAM compiled |")
        print("| --- | ---: | ---: | ---: | ---: |")
        for label, entry in counts.items():
            feram = entry["feram_acp_per_row"]
            dram = entry["dram_aap_per_row"]
            print(f"| {label} | {feram['naive']} | {feram['compiled']} "
                  f"| {dram['naive']} | {dram['compiled']} |")


def main(argv: list[str]) -> int:
    args = [a for a in argv[1:]]
    if "--summary-from" in args:
        index = args.index("--summary-from")
        if index + 1 >= len(args):
            print("usage: perf_smoke.py --summary-from RECORD.json")
            return 2
        print_summary(json.loads(Path(args[index + 1]).read_text()))
        return 0
    baseline_path = None
    if "--check" in args:
        index = args.index("--check")
        if index + 1 >= len(args):
            print("usage: perf_smoke.py [output.json] "
                  "--check BASELINE.json")
            return 2
        baseline_path = Path(args[index + 1])
        del args[index:index + 2]
    out_path = Path(args[0]) if args else \
        Path(__file__).resolve().parent.parent / "BENCH_substrate.json"
    payload = run_smoke()
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload["benchmarks"], indent=2))
    print(json.dumps(payload["primitive_counts"], indent=2))
    print(f"wrote {out_path}")
    if baseline_path is not None:
        failures = check_regression(payload, baseline_path)
        if failures:
            print("PERF REGRESSION GATE FAILED:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print(f"perf gate ok (within {REGRESSION_TOLERANCE:.0%} of "
              f"{baseline_path})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
