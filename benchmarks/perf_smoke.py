"""Perf smoke: timed hot paths, recorded to BENCH_substrate.json.

Runs the three benchmarks the vectorization work targets — the
``variation`` Monte-Carlo experiment, the ``fig3f`` SPICE TBA sweep and
the RC transient solve — and writes wall-clock timings (with the frozen
seed baselines for trajectory) to ``BENCH_substrate.json`` at the repo
root.  CI runs this after the test suite so every PR leaves a recorded
perf data point.

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py [output.json]
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path

from repro.core.behavioral import BehavioralCell
from repro.experiments.registry import run_experiment
from repro.spice import (
    PWL,
    Capacitor,
    Circuit,
    Resistor,
    TransientSolver,
    VoltageSource,
)

#: wall-clock seconds of the seed implementation (commit 253f800,
#: measured on the same container class CI uses), kept as the fixed
#: "before" reference each run is compared against.
SEED_BASELINE_S = {
    "variation": 5.22,
    "fig3f": 2.90,
    "rc_transient": 0.0393,
    "behavioral_level_sweep": 0.0358,
}


def _time(fn, *, repeat: int = 1) -> float:
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _rc_transient():
    ckt = Circuit("rc")
    ckt.add(VoltageSource("vin", "in", "0", PWL([(0, 0.0), (1e-9, 1.0)])))
    ckt.add(Resistor("r1", "in", "out", 1e3))
    ckt.add(Capacitor("c1", "out", "0", 1e-9))
    result = TransientSolver(ckt).run(1e-6, 1e-9)
    assert len(result) > 500
    return result


def run_smoke() -> dict:
    timings = {}
    # Warm imports/caches once so timings measure the hot paths.
    _rc_transient()
    BehavioralCell(n_caps=3).level_sweep()

    report = run_experiment("variation")
    assert report.passed, "variation experiment regressed"
    timings["variation"] = _time(lambda: run_experiment("variation"),
                                 repeat=3)

    report = run_experiment("fig3f")
    assert report.passed, "fig3f experiment regressed"
    timings["fig3f"] = _time(lambda: run_experiment("fig3f"), repeat=3)

    timings["rc_transient"] = _time(_rc_transient, repeat=5)
    timings["behavioral_level_sweep"] = _time(
        lambda: BehavioralCell(n_caps=3).level_sweep(), repeat=5)

    entries = {}
    for name, seconds in timings.items():
        seed = SEED_BASELINE_S[name]
        entries[name] = {
            "seed_s": seed,
            "measured_s": round(seconds, 4),
            "speedup_vs_seed": round(seed / seconds, 2),
        }
    return {
        "suite": "substrate",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "benchmarks": entries,
    }


def main(argv: list[str]) -> int:
    out_path = Path(argv[1]) if len(argv) > 1 else \
        Path(__file__).resolve().parent.parent / "BENCH_substrate.json"
    payload = run_smoke()
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload["benchmarks"], indent=2))
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
