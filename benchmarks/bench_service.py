"""Query-service and expression-compiler benchmarks.

Tracks the tentpole claims of the compiler/service layer:

* the compiled Fig. 6 bitmap predicate costs fewer native primitives
  than the naive op chain (6 vs 7 ACPs/row on FeRAM);
* common-subexpression reuse widens the gap on multi-term queries;
* the sharded service sustains batched query throughput with a working
  result cache;
* the columnar vector backend answers the same batches as the
  reference engine replay, bit-exactly, from whole-matrix numpy
  kernels (the `service_batch`/`service_scale` speedups recorded in
  ``BENCH_substrate.json``).
"""

import numpy as np

from repro.arch.expr import compile_expr, native_primitives, naive_run, parse
from repro.arch.primitives import make_engine
from repro.service import BitwiseService

BITMAP_QUERY = "(c0 & c1 & ~c2) | (c3 & c4 & c5)"
CSE_QUERY = "(c0 & c1 & ~c2) | (c0 & c1 & c3) | (c4 & c5)"


def test_bitmap_query_compiled_beats_naive(benchmark):
    """The acceptance number: compiled < naive on the FeRAM engine."""
    plan = benchmark(compile_expr, BITMAP_QUERY, inverting=True)
    assert plan.naive_primitives == 7
    assert plan.primitives == 6
    benchmark.extra_info["bitmap_acp_per_row"] = {
        "naive": plan.naive_primitives, "compiled": plan.primitives}


def test_cse_query_compiled_beats_naive_both_techs(benchmark):
    def compile_both():
        return {inverting: compile_expr(CSE_QUERY, inverting=inverting)
                for inverting in (True, False)}

    plans = benchmark(compile_both)
    for inverting, plan in plans.items():
        assert plan.primitives < plan.naive_primitives, inverting
    benchmark.extra_info["cse_primitives_per_row"] = {
        "feram": {"naive": plans[True].naive_primitives,
                  "compiled": plans[True].primitives},
        "dram": {"naive": plans[False].naive_primitives,
                 "compiled": plans[False].primitives},
    }


def test_compiled_counts_hold_at_row_scale(benchmark):
    """Counting-mode run at 64 rows: per-row counts scale exactly."""
    def measure(run_query):
        # Fresh engine per measurement: a prior run's value-preserving
        # flag re-encodings would otherwise skew the next one's count.
        engine = make_engine("feram-2tnc", functional=False)
        n_bits = engine.spec.row_bits * 64
        columns = {}
        first = None
        for k in range(6):
            columns[f"c{k}"] = engine.allocate(n_bits, group_with=first)
            first = first or columns[f"c{k}"]
        run_query(engine, columns)
        return native_primitives(engine.stats)

    def run():
        plan = compile_expr(BITMAP_QUERY, inverting=True)
        return (measure(plan.run),
                measure(lambda eng, cols:
                        naive_run(parse(BITMAP_QUERY), eng, cols)))

    compiled, naive = benchmark(run)
    assert compiled == 6 * 64
    assert naive == 7 * 64


def test_service_batch_throughput(benchmark):
    rng = np.random.default_rng(0)
    n_bits = 1 << 18
    service = BitwiseService("feram-2tnc", n_bits=n_bits, n_shards=4)
    for name in ("a", "b", "c", "d"):
        service.create_column(
            name, (rng.random(n_bits) < 0.35).astype(np.uint8))
    queries = ["a & ~b", "(a & b & ~c) | (c & d)", "a ^ b ^ c",
               "maj(a, b, c) | ~d", "sel(a, b, c) & d"]

    try:
        results = benchmark(service.execute, queries, use_cache=False)
        assert all(result.count is not None for result in results)
        # Spot-check one result against numpy.
        a = service.column_bits("a")
        b = service.column_bits("b")
        assert results[0].count == int((a & (1 - b)).sum())
    finally:
        service.close()


def test_vector_backend_batch_throughput(benchmark):
    """The columnar executor on the perf-smoke batch shape."""
    rng = np.random.default_rng(0)
    n_bits = 1 << 18
    service = BitwiseService("feram-2tnc", n_bits=n_bits, n_shards=4,
                             backend="vector")
    for name in ("a", "b", "c", "d"):
        service.create_column(
            name, (rng.random(n_bits) < 0.35).astype(np.uint8))
    queries = ["a & ~b", "(a & b & ~c) | (c & d)", "a ^ b ^ c",
               "maj(a, b, c) | ~d", "sel(a, b, c) & d"]
    service.execute(queries, use_cache=False)  # warm plans/programs

    try:
        results = benchmark(service.execute, queries, use_cache=False)
        assert all(result.count is not None for result in results)
        a = service.column_bits("a")
        b = service.column_bits("b")
        assert results[0].count == int((a & (1 - b)).sum())
    finally:
        service.close()


def test_vector_backend_matches_reference_batch(benchmark):
    """Equivalence bench: both backends answer one batch; the vector
    results must match the replay bit-for-bit and cycle-for-cycle."""
    n_bits = 1 << 16
    queries = ["a & ~b", "(a & b & ~c) | (c & d)", "a ^ b ^ c"]

    def both():
        outputs = {}
        for backend in ("reference", "vector"):
            svc = BitwiseService("feram-2tnc", n_bits=n_bits,
                                 n_shards=4, backend=backend)
            rng_local = np.random.default_rng(2)
            for name in ("a", "b", "c", "d"):
                svc.create_column(
                    name,
                    (rng_local.random(n_bits) < 0.4).astype(np.uint8))
            try:
                outputs[backend] = [
                    svc.query(query, use_cache=False)
                    for query in queries
                ]
            finally:
                svc.close()
        return outputs

    outputs = benchmark(both)
    for exp, act in zip(outputs["reference"], outputs["vector"]):
        assert np.array_equal(exp.bits, act.bits), exp.query
        assert exp.cycles == act.cycles, exp.query


def test_service_cache_serves_repeats(benchmark):
    rng = np.random.default_rng(1)
    n_bits = 1 << 16
    service = BitwiseService("feram-2tnc", n_bits=n_bits, n_shards=2)
    for name in ("a", "b"):
        service.create_column(
            name, (rng.random(n_bits) < 0.5).astype(np.uint8))
    service.query("a & b")  # warm

    def repeat():
        return service.query("b & a")  # canonical equivalent

    try:
        result = benchmark(repeat)
        assert result.cache_hit
    finally:
        service.close()
