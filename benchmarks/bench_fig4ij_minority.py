"""Fig. 4(i,j) benchmark: measured MINORITY on the virtual test chip."""

from benchmarks.conftest import attach_report
from repro.experiments.fig4_minority import run_fig4ij


def test_fig4ij_measured_minority(benchmark):
    report = benchmark.pedantic(run_fig4ij, rounds=2, iterations=1)
    attach_report(benchmark, report)
