"""Fig. 2 benchmark: destructive 1T-1C read vs QNRO 2T-nC read."""

from benchmarks.conftest import attach_report
from repro.experiments.fig2_sensing import run_fig2


def test_fig2_sensing_comparison(benchmark):
    report = benchmark.pedantic(run_fig2, rounds=1, iterations=1)
    attach_report(benchmark, report)
