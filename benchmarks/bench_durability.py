"""Durability-layer benchmarks: WAL overhead and cold recovery time.

Two measurements back the ``durability`` entry in
``BENCH_substrate.json``:

* :func:`wal_overhead` — the same mutation stream applied to a plain
  service and to one with a write-ahead log attached
  (``sync="batch"``: one fsync per mutation barrier).  The per-
  mutation delta is the price of crash safety on the write path.
* :func:`recovery_time` — cold start from a data directory holding a
  16Mi-bit store: load the packed snapshot, replay the WAL tail, and
  serve a query.  This is the restart-latency budget an operator
  plans around.
"""

from __future__ import annotations

import tempfile
import time

import numpy as np

from repro.service import BitwiseService, DurabilityManager, recover_service

N_BITS = 1 << 16
N_MUTATIONS = 64

RECOVERY_N_BITS = 1 << 24      # 16Mi bits per column
RECOVERY_COLUMNS = 4
RECOVERY_WAL_RECORDS = 32


def _make_service(n_bits: int, n_shards: int = 4) -> BitwiseService:
    rng = np.random.default_rng(11)
    service = BitwiseService("feram-2tnc", n_bits=n_bits,
                             n_shards=n_shards)
    for name in ("a", "b"):
        service.create_column(
            name, (rng.random(n_bits) < 0.5).astype(np.uint8))
    return service


def _mutation_stream(n_bits: int, count: int):
    """Deterministic mix of full updates and slice writes."""
    rng = np.random.default_rng(23)
    ops = []
    for step in range(count):
        name = ("a", "b")[step % 2]
        if step % 3 == 0:
            ops.append(("update", name,
                        (rng.random(n_bits) < 0.5).astype(np.uint8)))
        else:
            offset = int(rng.integers(0, n_bits - 512))
            ops.append(("write", name, offset,
                        (rng.random(512) < 0.5).astype(np.uint8)))
    return ops


def _apply(service: BitwiseService, ops) -> float:
    start = time.perf_counter()
    for op in ops:
        if op[0] == "update":
            service.update_column(op[1], op[2])
        else:
            service.write_slice(op[1], op[2], op[3])
    return time.perf_counter() - start


def wal_overhead(*, n_bits: int = N_BITS,
                 n_mutations: int = N_MUTATIONS) -> dict:
    """Per-mutation cost of the write-ahead log (``sync="batch"``)."""
    ops = _mutation_stream(n_bits, n_mutations)

    plain = _make_service(n_bits)
    try:
        plain_s = _apply(plain, ops)
    finally:
        plain.close()

    durable = _make_service(n_bits)
    with tempfile.TemporaryDirectory(prefix="repro-walbench-") as tmp:
        manager = DurabilityManager(tmp, snapshot_every=None,
                                    sync="batch")
        manager.open(manager.load_base()[0])
        durable.attach_durability(manager)
        try:
            wal_s = _apply(durable, ops)
            wal_bytes = manager.stats()["wal_bytes"]
        finally:
            durable.close()

    return {
        "seconds": wal_s,
        "n_bits": n_bits,
        "mutations": n_mutations,
        "plain_s": plain_s,
        "wal_ms_per_mutation": wal_s * 1e3 / n_mutations,
        "plain_ms_per_mutation": plain_s * 1e3 / n_mutations,
        "overhead_x": wal_s / plain_s if plain_s > 0 else float("inf"),
        "wal_bytes": wal_bytes,
    }


def recovery_time(*, n_bits: int = RECOVERY_N_BITS,
                  n_columns: int = RECOVERY_COLUMNS,
                  wal_records: int = RECOVERY_WAL_RECORDS) -> dict:
    """Cold restart from snapshot + WAL tail for a 16Mi-bit store."""
    rng = np.random.default_rng(31)
    with tempfile.TemporaryDirectory(prefix="repro-recbench-") as tmp:
        service = BitwiseService("feram-2tnc", n_bits=n_bits,
                                 n_shards=8)
        manager = DurabilityManager(tmp, snapshot_every=None,
                                    sync="none")
        manager.open(manager.load_base()[0])
        service.attach_durability(manager)
        try:
            for index in range(n_columns):
                service.create_column(
                    f"c{index}",
                    (rng.random(n_bits) < 0.5).astype(np.uint8))
            service.checkpoint()
            # A realistic WAL tail on top of the snapshot: slice
            # writes that recovery must replay record by record.
            for step in range(wal_records):
                offset = int(rng.integers(0, n_bits - 4096))
                service.write_slice(
                    f"c{step % n_columns}", offset,
                    (rng.random(4096) < 0.5).astype(np.uint8))
            want = service.query("c0 & c1").count
        finally:
            service.close()

        start = time.perf_counter()
        recovered = recover_service(tmp, sync="none")
        elapsed = time.perf_counter() - start
        try:
            assert recovered.query("c0 & c1").count == want
            info = recovered.durability.last_recovery
        finally:
            recovered.close()

    return {
        "seconds": elapsed,
        "n_bits": n_bits,
        "columns": n_columns,
        "wal_records_replayed": info["records_replayed"],
        "mbits_per_s": n_bits * n_columns / 1e6 / elapsed,
    }


def test_wal_overhead_stays_bounded(benchmark):
    """The WAL write path costs real fsyncs but stays within an order
    of magnitude of the plain mutation path, and every barrier lands
    in the log."""
    record = benchmark(wal_overhead)
    assert record["mutations"] == N_MUTATIONS
    assert record["wal_bytes"] > 0
    assert record["wal_ms_per_mutation"] > 0
    # Durable writes cost more than plain ones, but not absurdly so.
    assert record["overhead_x"] < 50
    benchmark.extra_info["wal_overhead"] = {
        key: round(value, 4) if isinstance(value, float) else value
        for key, value in record.items()}


def test_recovery_replays_snapshot_and_wal(benchmark):
    """Cold recovery of a 16Mi-bit, 4-column store replays the full
    WAL tail and answers queries identically to the pre-crash
    service."""
    record = benchmark(recovery_time)
    assert record["n_bits"] == RECOVERY_N_BITS
    # 32 mutation records plus the charges record the verification
    # query appended before the restart.
    assert record["wal_records_replayed"] >= RECOVERY_WAL_RECORDS
    assert record["mbits_per_s"] > 0
    benchmark.extra_info["recovery_time"] = {
        key: round(value, 4) if isinstance(value, float) else value
        for key, value in record.items()}
