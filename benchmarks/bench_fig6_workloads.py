"""Fig. 6 benchmark: eight workloads, DRAM vs 2T-nC FeRAM, 1 GB.

Regenerates the paper's headline table (≈2.5× energy, ≈2× performance)
and times the counting-mode architecture simulation itself.
"""

import pytest

from benchmarks.conftest import attach_report
from repro.experiments.fig6_workloads import run_fig6
from repro.workloads.runner import run_comparison, make_workloads

GIB = 1 << 30


def test_fig6_full_table(benchmark):
    report = benchmark.pedantic(run_fig6, args=(GIB,), rounds=2,
                                iterations=1)
    attach_report(benchmark, report)
    table = report.extras["table"]
    benchmark.extra_info["table"] = table.format()


@pytest.mark.parametrize("workload", make_workloads(GIB),
                         ids=lambda wl: wl.name)
def test_fig6_per_workload(benchmark, workload):
    comparison = benchmark.pedantic(run_comparison, args=(workload,),
                                    rounds=2, iterations=1)
    benchmark.extra_info["energy_ratio"] = comparison.energy_ratio
    benchmark.extra_info["cycle_ratio"] = comparison.cycle_ratio
    assert comparison.energy_ratio > 1.5
    assert comparison.cycle_ratio > 1.3
