"""Fig. 4(e) benchmark: P-V loop family over 300-390 K."""

from benchmarks.conftest import attach_report
from repro.experiments.fig4_device import run_fig4e


def test_fig4e_pv_loop_family(benchmark):
    report = benchmark.pedantic(run_fig4e, rounds=2, iterations=1)
    attach_report(benchmark, report)
