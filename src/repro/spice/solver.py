"""Newton-Raphson transient engine for :class:`~repro.spice.circuit.Circuit`.

The solver advances time with a fixed base step, assembling the MNA system
from component stamps at every Newton iteration.  Capacitive elements use
backward-Euler companions (L-stable: the right choice for the stiff,
switch-driven waveforms of memory-cell protocols).  If an individual step
fails to converge it is retried with a halved step size, up to
``max_step_halvings`` times; component state is only mutated on ``commit``,
so retries need no rollback.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.errors import CircuitError, ConvergenceError
from repro.spice.analysis import TransientResult
from repro.spice.circuit import Circuit

__all__ = ["TransientSolver", "SolverOptions"]


class SolverOptions:
    """Tuning knobs for the transient solve.

    Attributes
    ----------
    abstol:
        Newton convergence threshold on the max-norm update (volts/amps).
    reltol:
        Relative component of the convergence threshold.
    max_newton_iters:
        Iteration budget per step before the step is rejected.
    max_step_halvings:
        How many times a rejected step may halve ``dt`` before giving up.
    damping:
        Max per-iteration change applied to any unknown (volts); limits
        Newton overshoot through exponential device characteristics.
    gmin:
        Conductance from every node to ground, keeping matrices regular
        when nodes float (e.g. the internal storage node with T_W off).
    """

    def __init__(self, *, abstol: float = 1e-6, reltol: float = 1e-4,
                 max_newton_iters: int = 80, max_step_halvings: int = 10,
                 damping: float = 1.0, gmin: float = 1e-12) -> None:
        if abstol <= 0 or reltol < 0:
            raise CircuitError("abstol must be > 0 and reltol >= 0")
        if max_newton_iters < 2 or max_step_halvings < 0:
            raise CircuitError("invalid iteration limits")
        self.abstol = abstol
        self.reltol = reltol
        self.max_newton_iters = max_newton_iters
        self.max_step_halvings = max_step_halvings
        self.damping = damping
        self.gmin = gmin


class TransientSolver:
    """Runs transient analyses on a frozen circuit."""

    def __init__(self, circuit: Circuit,
                 options: SolverOptions | None = None) -> None:
        self.circuit = circuit.freeze()
        self.options = options or SolverOptions()

    # ------------------------------------------------------------------
    def run(self, t_stop: float, dt: float, *,
            t_start: float = 0.0,
            initial_conditions: dict[str, float] | None = None,
            record_every: int = 1,
            callback: Callable[[float, np.ndarray], None] | None = None,
            ) -> TransientResult:
        """Integrate from ``t_start`` to ``t_stop`` with base step ``dt``.

        Parameters
        ----------
        initial_conditions:
            Optional mapping of node name -> initial voltage.  Unlisted
            nodes start at 0 V.
        record_every:
            Keep every k-th accepted step in the result (the final step is
            always recorded).
        callback:
            Invoked as ``callback(t, x)`` after each accepted step.
        """
        if t_stop <= t_start:
            raise CircuitError("t_stop must exceed t_start")
        if dt <= 0:
            raise CircuitError("dt must be positive")
        if record_every < 1:
            raise CircuitError("record_every must be >= 1")
        ckt = self.circuit
        n = ckt.n_unknowns
        x = np.zeros(n)
        if initial_conditions:
            for node, voltage in initial_conditions.items():
                idx = ckt.node_id(node)
                if idx >= 0:
                    x[idx] = voltage

        times: list[float] = [t_start]
        states: list[np.ndarray] = [x.copy()]
        t = t_start
        step_index = 0
        base_dt = dt
        current_dt = dt
        components = list(ckt.components())

        while t < t_stop - 1e-21:
            current_dt = min(current_dt, t_stop - t)
            x_new = self._attempt_step(components, x, t, current_dt)
            halvings = 0
            while x_new is None:
                halvings += 1
                if halvings > self.options.max_step_halvings:
                    raise ConvergenceError(
                        f"transient failed to converge at t={t:.3e}s even "
                        f"after {halvings - 1} step halvings",
                        time=t, iterations=self.options.max_newton_iters)
                current_dt *= 0.5
                x_new = self._attempt_step(components, x, t, current_dt)
            t += current_dt
            for component in components:
                component.commit(x_new)
            x = x_new
            step_index += 1
            if step_index % record_every == 0 or t >= t_stop - 1e-21:
                times.append(t)
                states.append(x.copy())
            if callback is not None:
                callback(t, x)
            # Recover the step size gently after a halving.
            if current_dt < base_dt:
                current_dt = min(base_dt, current_dt * 2.0)

        return TransientResult(ckt, np.asarray(times),
                               np.vstack(states))

    # ------------------------------------------------------------------
    def _attempt_step(self, components: Sequence, x_prev: np.ndarray,
                      t: float, dt: float) -> np.ndarray | None:
        """One backward-Euler step via Newton; ``None`` if not converged."""
        opts = self.options
        ckt = self.circuit
        n = ckt.n_unknowns
        t_next = t + dt
        for component in components:
            component.begin_step(t_next, dt)
        x = x_prev.copy()
        from repro.spice.components import StampContext  # cycle-free import

        for _ in range(opts.max_newton_iters):
            a = np.zeros((n, n))
            z = np.zeros(n)
            ctx = StampContext(a, z, x, t_next, dt)
            for component in components:
                component.stamp(ctx)
            # gmin to ground on every node row.
            idx = np.arange(ckt.n_nodes)
            a[idx, idx] += opts.gmin
            try:
                x_next = np.linalg.solve(a, z)
            except np.linalg.LinAlgError:
                return None
            delta = x_next - x
            max_delta = float(np.max(np.abs(delta))) if n else 0.0
            if max_delta > opts.damping:
                delta *= opts.damping / max_delta
                x = x + delta
                continue
            x = x_next
            tol = opts.abstol + opts.reltol * float(np.max(np.abs(x)))
            if max_delta < tol:
                return x
        return None
