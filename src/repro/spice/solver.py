"""Newton-Raphson transient engine for :class:`~repro.spice.circuit.Circuit`.

The solver advances time with a fixed base step.  Capacitive elements use
backward-Euler companions (L-stable: the right choice for the stiff,
switch-driven waveforms of memory-cell protocols).  If an individual step
fails to converge it is retried with a halved step size, up to
``max_step_halvings`` times; component state is only mutated on ``commit``,
so retries need no rollback.

Assembly is incremental: components are partitioned at construction time
into a *linear* block (resistors, capacitors, independent sources — matrix
entries depend only on ``dt``, right-hand sides only on ``(t, dt)`` and
committed state) and a *nonlinear* block (MOSFETs, ferroelectric
capacitors, switches).  The linear matrix is stamped once per ``dt`` into
a cached base matrix and the linear RHS once per step; each Newton
iteration then copies the bases into preallocated ``A``/``z`` buffers and
stamps only the nonlinear components.  Circuits with no nonlinear
components skip the Newton loop entirely: the base matrix is
LU-factorised once per ``dt`` and every step is a single back-substitution.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg as scipy_linalg

from repro.errors import CircuitError, ConvergenceError
from repro.spice.analysis import TransientResult
from repro.spice.circuit import Circuit
from repro.spice.components import StampContext

__all__ = ["TransientSolver", "SolverOptions"]


class SolverOptions:
    """Tuning knobs for the transient solve.

    Attributes
    ----------
    abstol:
        Newton convergence threshold on the max-norm update (volts/amps).
    reltol:
        Relative component of the convergence threshold.
    max_newton_iters:
        Iteration budget per step before the step is rejected.
    max_step_halvings:
        How many times a rejected step may halve ``dt`` before giving up.
    damping:
        Max per-iteration change applied to any unknown (volts); limits
        Newton overshoot through exponential device characteristics.
    gmin:
        Conductance from every node to ground, keeping matrices regular
        when nodes float (e.g. the internal storage node with T_W off).
    """

    def __init__(self, *, abstol: float = 1e-6, reltol: float = 1e-4,
                 max_newton_iters: int = 80, max_step_halvings: int = 10,
                 damping: float = 1.0, gmin: float = 1e-12) -> None:
        if abstol <= 0 or reltol < 0:
            raise CircuitError("abstol must be > 0 and reltol >= 0")
        if max_newton_iters < 2 or max_step_halvings < 0:
            raise CircuitError("invalid iteration limits")
        self.abstol = abstol
        self.reltol = reltol
        self.max_newton_iters = max_newton_iters
        self.max_step_halvings = max_step_halvings
        self.damping = damping
        self.gmin = gmin


class TransientSolver:
    """Runs transient analyses on a frozen circuit."""

    def __init__(self, circuit: Circuit,
                 options: SolverOptions | None = None) -> None:
        self.circuit = circuit.freeze()
        self.options = options or SolverOptions()
        components = list(self.circuit.components())
        self._components = components
        self._linear = [c for c in components if c.linear]
        nonlinear = [c for c in components if not c.linear]
        # Same-type nonlinear components with matching group keys stamp
        # and commit through one batched device evaluation.
        grouped: dict[tuple, list] = {}
        plain = []
        for component in nonlinear:
            key = component.group_key()
            if key is None:
                plain.append(component)
            else:
                grouped.setdefault((type(component), key),
                                   []).append(component)
        self._groups = []
        for members in grouped.values():
            if len(members) > 1:
                self._groups.append(members)
            else:
                plain.extend(members)
        self._nonlinear = nonlinear
        self._nonlinear_plain = plain
        n = self.circuit.n_unknowns
        # Preallocated assembly buffers, reused across every Newton
        # iteration of every step.
        self._a = np.empty((n, n))
        self._z = np.empty(n)
        self._a_base = np.zeros((n, n))
        self._z_base = np.zeros(n)
        self._base_dt: float | None = None
        self._lu = None

    # ------------------------------------------------------------------
    def run(self, t_stop: float, dt: float, *,
            t_start: float = 0.0,
            initial_conditions: dict[str, float] | None = None,
            record_every: int = 1,
            callback=None,
            ) -> TransientResult:
        """Integrate from ``t_start`` to ``t_stop`` with base step ``dt``.

        Parameters
        ----------
        initial_conditions:
            Optional mapping of node name -> initial voltage.  Unlisted
            nodes start at 0 V.
        record_every:
            Keep every k-th accepted step in the result (the final step is
            always recorded).
        callback:
            Invoked as ``callback(t, x)`` after each accepted step.
        """
        if t_stop <= t_start:
            raise CircuitError("t_stop must exceed t_start")
        if dt <= 0:
            raise CircuitError("dt must be positive")
        if record_every < 1:
            raise CircuitError("record_every must be >= 1")
        ckt = self.circuit
        n = ckt.n_unknowns
        x = np.zeros(n)
        if initial_conditions:
            for node, voltage in initial_conditions.items():
                idx = ckt.node_id(node)
                if idx >= 0:
                    x[idx] = voltage

        times: list[float] = [t_start]
        states: list[np.ndarray] = [x.copy()]
        t = t_start
        step_index = 0
        base_dt = dt
        current_dt = dt

        while t < t_stop - 1e-21:
            current_dt = min(current_dt, t_stop - t)
            x_new = self._attempt_step(x, t, current_dt)
            halvings = 0
            while x_new is None:
                halvings += 1
                if halvings > self.options.max_step_halvings:
                    raise ConvergenceError(
                        f"transient failed to converge at t={t:.3e}s even "
                        f"after {halvings - 1} step halvings",
                        time=t, iterations=self.options.max_newton_iters)
                current_dt *= 0.5
                x_new = self._attempt_step(x, t, current_dt)
            t += current_dt
            for component in self._linear:
                component.commit(x_new)
            for component in self._nonlinear_plain:
                component.commit(x_new)
            for members in self._groups:
                type(members[0]).commit_group(x_new, members)
            x = x_new
            step_index += 1
            if step_index % record_every == 0 or t >= t_stop - 1e-21:
                times.append(t)
                states.append(x.copy())
            if callback is not None:
                callback(t, x)
            # Recover the step size gently after a halving.
            if current_dt < base_dt:
                current_dt = min(base_dt, current_dt * 2.0)

        return TransientResult(ckt, np.asarray(times),
                               np.vstack(states))

    # ------------------------------------------------------------------
    def _rebuild_base_matrix(self, x: np.ndarray, t_next: float,
                             dt: float) -> None:
        """Stamp the static-linear matrix block for a new step size."""
        opts = self.options
        ckt = self.circuit
        self._a_base[:] = 0.0
        ctx = StampContext(self._a_base, self._z, x, t_next, dt)
        for component in self._linear:
            component.stamp_matrix(ctx)
        # gmin to ground on every node row.
        idx = np.arange(ckt.n_nodes)
        self._a_base[idx, idx] += opts.gmin
        self._base_dt = dt
        self._lu = None

    def _attempt_step(self, x_prev: np.ndarray, t: float,
                      dt: float) -> np.ndarray | None:
        """One backward-Euler step via Newton; ``None`` if not converged."""
        opts = self.options
        n = self.circuit.n_unknowns
        t_next = t + dt
        for component in self._components:
            component.begin_step(t_next, dt)
        if dt != self._base_dt:
            self._rebuild_base_matrix(x_prev, t_next, dt)
        # Linear RHS once per step: independent of the Newton iterate.
        self._z_base[:] = 0.0
        ctx = StampContext(self._a_base, self._z_base, x_prev, t_next, dt)
        for component in self._linear:
            component.stamp_rhs(ctx)

        if not self._nonlinear:
            # Fully linear circuit: prefactorize once per dt, then each
            # step is one triangular solve — no Newton iteration at all.
            if self._lu is None:
                try:
                    self._lu = scipy_linalg.lu_factor(self._a_base,
                                                      check_finite=False)
                except (scipy_linalg.LinAlgError, ValueError):
                    return None
            x = scipy_linalg.lu_solve(self._lu, self._z_base,
                                      check_finite=False)
            if not np.all(np.isfinite(x)):
                return None
            return x

        x = x_prev.copy()
        a = self._a
        z = self._z
        for _ in range(opts.max_newton_iters):
            np.copyto(a, self._a_base)
            np.copyto(z, self._z_base)
            ctx = StampContext(a, z, x, t_next, dt)
            for component in self._nonlinear_plain:
                component.stamp(ctx)
            for members in self._groups:
                type(members[0]).stamp_group(ctx, members)
            try:
                x_next = np.linalg.solve(a, z)
            except np.linalg.LinAlgError:
                return None
            delta = x_next - x
            max_delta = float(np.max(np.abs(delta))) if n else 0.0
            if max_delta > opts.damping:
                delta *= opts.damping / max_delta
                x = x + delta
                continue
            x = x_next
            tol = opts.abstol + opts.reltol * float(np.max(np.abs(x)))
            if max_delta < tol:
                return x
        return None
