"""Circuit components and the stamping interface used by the MNA solver.

The solver assembles, at every Newton iteration, the modified-nodal-analysis
system ``A @ x = z`` where ``x`` stacks node voltages followed by branch
currents of voltage-defined elements.  Components contribute to the system
through :meth:`Component.stamp`, which receives a :class:`StampContext`.

State-holding components (capacitors, ferroelectric capacitors) follow a
three-phase protocol per time step:

1. :meth:`Component.begin_step` — observe the step's ``(t, dt)``;
2. :meth:`Component.stamp` — called once per Newton iteration with the
   current iterate;
3. :meth:`Component.commit` — called once when the step is accepted; only
   here may internal state change.

Because state changes only in ``commit``, a rejected/retried step (smaller
``dt``) needs no rollback machinery.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.errors import CircuitError
from repro.spice.waveform import Waveform, as_waveform

__all__ = [
    "StampContext",
    "Component",
    "Resistor",
    "Capacitor",
    "VoltageSource",
    "CurrentSource",
    "VoltageControlledSwitch",
]

GROUND_NAMES = frozenset({"0", "gnd", "GND", "ground"})


class StampContext:
    """View of the in-progress MNA assembly handed to components.

    Attributes
    ----------
    a:
        Dense ``(n, n)`` system matrix to accumulate into.
    z:
        Length-``n`` right-hand side to accumulate into.
    x:
        Current Newton iterate (node voltages then branch currents).
    t:
        End-of-step time in seconds.
    dt:
        Step size in seconds.
    """

    def __init__(self, a: np.ndarray, z: np.ndarray, x: np.ndarray,
                 t: float, dt: float) -> None:
        self.a = a
        self.z = z
        self.x = x
        self.t = t
        self.dt = dt

    def v(self, index: int) -> float:
        """Voltage of node ``index`` in the current iterate (ground = 0 V)."""
        if index < 0:
            return 0.0
        return float(self.x[index])

    def add_conductance(self, i: int, j: int, g: float) -> None:
        """Stamp a two-terminal conductance ``g`` between node indices."""
        a = self.a
        if i >= 0:
            a[i, i] += g
        if j >= 0:
            a[j, j] += g
        if i >= 0 and j >= 0:
            a[i, j] -= g
            a[j, i] -= g

    def add_current(self, i: int, value: float) -> None:
        """Inject ``value`` amperes into node ``i`` (no-op for ground)."""
        if i >= 0:
            self.z[i] += value

    def add_entry(self, i: int, j: int, value: float) -> None:
        """Accumulate a raw matrix entry (skipping ground rows/columns)."""
        if i >= 0 and j >= 0:
            self.a[i, j] += value


class Component:
    """Base class for all circuit elements.

    Subclasses set :attr:`nodes` (terminal node *names*) in ``__init__``;
    the circuit resolves them to indices (ground → ``-1``) at freeze time
    and writes them into :attr:`node_index`.

    Components advertise their MNA behaviour through :attr:`linear`:
    linear components promise that their matrix stamp depends only on the
    step size ``dt`` (never on the Newton iterate or on ``t``) and that
    their right-hand-side stamp depends only on ``(t, dt)`` and committed
    state.  The solver exploits this by stamping them through
    :meth:`stamp_matrix` / :meth:`stamp_rhs` once per accepted matrix /
    once per step instead of once per Newton iteration — and by skipping
    the Newton loop entirely for circuits with no nonlinear components.
    """

    #: number of extra MNA branch unknowns this component needs
    branch_count = 0

    #: True when the matrix stamp depends only on dt and the rhs stamp
    #: only on (t, dt) and committed state; such components implement
    #: stamp_matrix/stamp_rhs and are hoisted out of the Newton loop.
    linear = False

    def __init__(self, name: str, nodes: tuple[str, ...]) -> None:
        if not name:
            raise CircuitError("component name must be non-empty")
        self.name = name
        self.nodes = tuple(nodes)
        self.node_index: tuple[int, ...] = ()
        self.branch_index: tuple[int, ...] = ()

    def begin_step(self, t: float, dt: float) -> None:
        """Observe the start of a new time step (default: nothing)."""

    def stamp(self, ctx: StampContext) -> None:
        raise NotImplementedError

    def stamp_matrix(self, ctx: StampContext) -> None:
        """Matrix-only stamp (linear components; depends on dt at most)."""
        raise NotImplementedError

    def stamp_rhs(self, ctx: StampContext) -> None:
        """RHS-only stamp (linear components; default: no contribution)."""

    def commit(self, x: np.ndarray) -> None:
        """Accept the converged solution ``x`` for this step."""

    # ------------------------------------------------------------------
    # batched stamping (optional)
    # ------------------------------------------------------------------
    def group_key(self):
        """Hashable batching key, or ``None`` to always stamp alone.

        Components of the same type returning equal keys are stamped (and
        committed) together through :meth:`stamp_group` /
        :meth:`commit_group`, letting device models with vectorizable
        evaluations amortize one array call across all instances in a
        netlist instead of paying per-component numpy overhead.
        """
        return None

    @staticmethod
    def stamp_group(ctx: StampContext, components: list["Component"],
                    ) -> None:
        """Stamp several same-key components in one batched evaluation."""
        raise NotImplementedError

    @staticmethod
    def commit_group(x: np.ndarray, components: list["Component"]) -> None:
        """Commit several same-key components in one batched evaluation."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, nodes={self.nodes})"


class Resistor(Component):
    """Linear resistor between two nodes."""

    linear = True

    def __init__(self, name: str, node_p: str, node_n: str,
                 resistance: float) -> None:
        super().__init__(name, (node_p, node_n))
        if resistance <= 0:
            raise CircuitError(f"resistor {name!r}: resistance must be > 0")
        self.resistance = float(resistance)

    def stamp(self, ctx: StampContext) -> None:
        self.stamp_matrix(ctx)

    def stamp_matrix(self, ctx: StampContext) -> None:
        i, j = self.node_index
        ctx.add_conductance(i, j, 1.0 / self.resistance)

    def current(self, x: np.ndarray) -> float:
        """Current flowing from ``node_p`` to ``node_n`` for solution ``x``."""
        i, j = self.node_index
        vi = 0.0 if i < 0 else float(x[i])
        vj = 0.0 if j < 0 else float(x[j])
        return (vi - vj) / self.resistance


class Capacitor(Component):
    """Linear capacitor integrated with a backward-Euler companion model."""

    linear = True

    def __init__(self, name: str, node_p: str, node_n: str,
                 capacitance: float, *, ic: float = 0.0) -> None:
        super().__init__(name, (node_p, node_n))
        if capacitance <= 0:
            raise CircuitError(f"capacitor {name!r}: capacitance must be > 0")
        self.capacitance = float(capacitance)
        self.v_prev = float(ic)
        self._dt = 0.0

    def begin_step(self, t: float, dt: float) -> None:
        self._dt = dt

    def stamp(self, ctx: StampContext) -> None:
        # Backward Euler: i = C/dt * (v(t) - v_prev)  ==> conductance C/dt
        # in parallel with a history current source.
        self.stamp_matrix(ctx)
        self.stamp_rhs(ctx)

    def stamp_matrix(self, ctx: StampContext) -> None:
        i, j = self.node_index
        ctx.add_conductance(i, j, self.capacitance / ctx.dt)

    def stamp_rhs(self, ctx: StampContext) -> None:
        i, j = self.node_index
        ieq = self.capacitance / ctx.dt * self.v_prev
        ctx.add_current(i, ieq)
        ctx.add_current(j, -ieq)

    def commit(self, x: np.ndarray) -> None:
        i, j = self.node_index
        vi = 0.0 if i < 0 else float(x[i])
        vj = 0.0 if j < 0 else float(x[j])
        self.v_prev = vi - vj

    def charge(self) -> float:
        """Stored charge (coulombs) at the last committed step."""
        return self.capacitance * self.v_prev


class VoltageSource(Component):
    """Independent voltage source; also serves as an ammeter.

    The MNA branch current is defined flowing from ``node_p`` through the
    source to ``node_n`` (positive current leaves the + terminal *into the
    external circuit* when negative — standard SPICE convention: ``i(V)``
    is the current entering the + terminal).
    """

    branch_count = 1
    linear = True

    def __init__(self, name: str, node_p: str, node_n: str,
                 value: "Waveform | float") -> None:
        super().__init__(name, (node_p, node_n))
        self.waveform = as_waveform(value)

    def stamp(self, ctx: StampContext) -> None:
        self.stamp_matrix(ctx)
        self.stamp_rhs(ctx)

    def stamp_matrix(self, ctx: StampContext) -> None:
        i, j = self.node_index
        (br,) = self.branch_index
        if i >= 0:
            ctx.a[i, br] += 1.0
            ctx.a[br, i] += 1.0
        if j >= 0:
            ctx.a[j, br] -= 1.0
            ctx.a[br, j] -= 1.0

    def stamp_rhs(self, ctx: StampContext) -> None:
        (br,) = self.branch_index
        ctx.z[br] += self.waveform(ctx.t)

    def current(self, x: np.ndarray) -> float:
        """Branch current (amperes) entering the + terminal."""
        (br,) = self.branch_index
        return float(x[br])


class CurrentSource(Component):
    """Independent current source driving current from ``node_p`` to
    ``node_n`` through the source (i.e. out of ``p``'s node, into ``n``'s)."""

    linear = True

    def __init__(self, name: str, node_p: str, node_n: str,
                 value: "Waveform | float") -> None:
        super().__init__(name, (node_p, node_n))
        self.waveform = as_waveform(value)

    def stamp(self, ctx: StampContext) -> None:
        self.stamp_rhs(ctx)

    def stamp_matrix(self, ctx: StampContext) -> None:
        """Current sources contribute no matrix entries."""

    def stamp_rhs(self, ctx: StampContext) -> None:
        i, j = self.node_index
        value = self.waveform(ctx.t)
        ctx.add_current(i, -value)
        ctx.add_current(j, value)


class VoltageControlledSwitch(Component):
    """Smooth voltage-controlled switch.

    Conductance interpolates log-linearly between ``r_off`` and ``r_on`` as
    the control voltage ``v(ctrl_p) - v(ctrl_n)`` crosses ``v_threshold``
    over a transition window ``v_window``.  The control dependence is
    handled quasi-Newton style (evaluated at the current iterate without
    Jacobian cross terms), which converges quickly because control nodes
    are driven by stiff sources in all our netlists.
    """

    def __init__(self, name: str, node_p: str, node_n: str,
                 ctrl_p: str, ctrl_n: str = "0", *,
                 v_threshold: float = 0.5, v_window: float = 0.05,
                 r_on: float = 100.0, r_off: float = 1e12) -> None:
        super().__init__(name, (node_p, node_n, ctrl_p, ctrl_n))
        if r_on <= 0 or r_off <= r_on:
            raise CircuitError(
                f"switch {name!r}: need 0 < r_on < r_off "
                f"(got r_on={r_on:g}, r_off={r_off:g})")
        self.v_threshold = float(v_threshold)
        self.v_window = float(v_window)
        self.g_on = 1.0 / float(r_on)
        self.g_off = 1.0 / float(r_off)

    def conductance(self, v_ctrl: float) -> float:
        """Smoothly interpolated conductance for a control voltage."""
        arg = (v_ctrl - self.v_threshold) / self.v_window
        # Logistic blend in log-conductance for a well-behaved sweep.
        sig = 1.0 / (1.0 + np.exp(-np.clip(arg, -60.0, 60.0)))
        log_g = (1.0 - sig) * np.log(self.g_off) + sig * np.log(self.g_on)
        return float(np.exp(log_g))

    def stamp(self, ctx: StampContext) -> None:
        i, j, cp, cn = self.node_index
        v_ctrl = ctx.v(cp) - ctx.v(cn)
        ctx.add_conductance(i, j, self.conductance(v_ctrl))


def is_ground(node: str) -> bool:
    """True if ``node`` names the ground net."""
    return node in GROUND_NAMES


CallbackT = Callable[[float, np.ndarray], None]
