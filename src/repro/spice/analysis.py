"""Containers and measurement helpers for transient results."""

from __future__ import annotations

import numpy as np

from repro.errors import CircuitError

__all__ = ["TransientResult"]


class TransientResult:
    """Time series produced by :class:`~repro.spice.solver.TransientSolver`.

    Provides voltage/current probes by name plus simple measurement
    utilities (sampling, windowed averages, crossing detection) used by the
    cell-operation code and the experiment drivers.
    """

    def __init__(self, circuit, times: np.ndarray, states: np.ndarray) -> None:
        self._circuit = circuit
        self.times = np.asarray(times, dtype=float)
        self._states = np.asarray(states, dtype=float)
        if self._states.shape != (self.times.size, circuit.n_unknowns):
            raise CircuitError("result shape mismatch")

    # ------------------------------------------------------------------
    # probes
    # ------------------------------------------------------------------
    def v(self, node: str) -> np.ndarray:
        """Voltage trace of ``node`` (zeros for ground)."""
        idx = self._circuit.node_id(node)
        if idx < 0:
            return np.zeros_like(self.times)
        return self._states[:, idx]

    def i(self, source_name: str) -> np.ndarray:
        """Branch-current trace of a voltage source (SPICE convention:
        current entering the + terminal)."""
        component = self._circuit.component(source_name)
        if not component.branch_index:
            raise CircuitError(
                f"component {source_name!r} has no branch current; "
                "probe currents through a 0 V voltage source")
        (br,) = component.branch_index
        return self._states[:, br]

    def state_at(self, t: float) -> np.ndarray:
        """Full unknown vector linearly interpolated at time ``t``."""
        t = float(np.clip(t, self.times[0], self.times[-1]))
        out = np.empty(self._states.shape[1])
        for col in range(self._states.shape[1]):
            out[col] = np.interp(t, self.times, self._states[:, col])
        return out

    # ------------------------------------------------------------------
    # measurements
    # ------------------------------------------------------------------
    def value_at(self, trace: np.ndarray, t: float) -> float:
        """Linearly interpolate an arbitrary trace at time ``t``."""
        return float(np.interp(t, self.times, np.asarray(trace)))

    def v_at(self, node: str, t: float) -> float:
        return self.value_at(self.v(node), t)

    def i_at(self, source_name: str, t: float) -> float:
        return self.value_at(self.i(source_name), t)

    def window(self, t0: float, t1: float) -> np.ndarray:
        """Boolean mask selecting samples with ``t0 <= t <= t1``."""
        if t1 < t0:
            raise CircuitError("window end precedes start")
        return (self.times >= t0) & (self.times <= t1)

    def mean_in_window(self, trace: np.ndarray, t0: float, t1: float) -> float:
        """Time-weighted average of a trace over ``[t0, t1]``."""
        mask = self.window(t0, t1)
        if not np.any(mask):
            raise CircuitError(f"no samples in window [{t0:g}, {t1:g}]")
        tw = self.times[mask]
        yw = np.asarray(trace)[mask]
        if tw.size == 1:
            return float(yw[0])
        return float(np.trapezoid(yw, tw) / (tw[-1] - tw[0]))

    def max_in_window(self, trace: np.ndarray, t0: float, t1: float) -> float:
        mask = self.window(t0, t1)
        if not np.any(mask):
            raise CircuitError(f"no samples in window [{t0:g}, {t1:g}]")
        return float(np.max(np.asarray(trace)[mask]))

    def integrate(self, trace: np.ndarray, t0: float | None = None,
                  t1: float | None = None) -> float:
        """Trapezoidal integral of a trace over the (sub)interval."""
        t0 = self.times[0] if t0 is None else t0
        t1 = self.times[-1] if t1 is None else t1
        mask = self.window(t0, t1)
        tw = self.times[mask]
        if tw.size < 2:
            return 0.0
        return float(np.trapezoid(np.asarray(trace)[mask], tw))

    def first_crossing(self, trace: np.ndarray, level: float,
                       *, rising: bool = True) -> float | None:
        """Time of the first crossing of ``level`` (None if never)."""
        y = np.asarray(trace)
        if rising:
            hits = np.nonzero((y[:-1] < level) & (y[1:] >= level))[0]
        else:
            hits = np.nonzero((y[:-1] > level) & (y[1:] <= level))[0]
        if hits.size == 0:
            return None
        k = int(hits[0])
        y0, y1 = y[k], y[k + 1]
        t0, t1 = self.times[k], self.times[k + 1]
        if y1 == y0:
            return float(t0)
        return float(t0 + (level - y0) * (t1 - t0) / (y1 - y0))

    def __len__(self) -> int:
        return int(self.times.size)
