"""Netlist container for the MNA transient solver."""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import CircuitError
from repro.spice.components import Component, is_ground

__all__ = ["Circuit"]


class Circuit:
    """A named collection of components with a node registry.

    Nodes are referenced by name and created implicitly the first time a
    component uses them.  The names in :data:`~repro.spice.components.GROUND_NAMES`
    (``"0"``, ``"gnd"``, ...) all resolve to the ground reference, which has
    index ``-1`` and is excluded from the unknown vector.

    >>> from repro.spice import Circuit, Resistor, VoltageSource
    >>> ckt = Circuit("divider")
    >>> _ = ckt.add(VoltageSource("vin", "in", "0", 1.0))
    >>> _ = ckt.add(Resistor("r1", "in", "mid", 1e3))
    >>> _ = ckt.add(Resistor("r2", "mid", "0", 1e3))
    >>> ckt.freeze().n_nodes
    2
    """

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self._components: dict[str, Component] = {}
        self._node_order: list[str] = []
        self._node_index: dict[str, int] = {}
        self._frozen = False
        self.n_nodes = 0
        self.n_branches = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add(self, component: Component) -> Component:
        """Add ``component`` to the netlist and return it.

        Raises :class:`~repro.errors.CircuitError` on duplicate names or if
        the circuit is already frozen.
        """
        if self._frozen:
            raise CircuitError(
                f"circuit {self.name!r} is frozen; cannot add "
                f"{component.name!r}")
        if component.name in self._components:
            raise CircuitError(
                f"duplicate component name {component.name!r} in circuit "
                f"{self.name!r}")
        self._components[component.name] = component
        for node in component.nodes:
            if not is_ground(node) and node not in self._node_index:
                self._node_index[node] = len(self._node_order)
                self._node_order.append(node)
        return component

    def freeze(self) -> "Circuit":
        """Resolve node/branch indices; the netlist becomes immutable."""
        if self._frozen:
            return self
        self.n_nodes = len(self._node_order)
        branch_cursor = self.n_nodes
        for component in self._components.values():
            component.node_index = tuple(
                -1 if is_ground(node) else self._node_index[node]
                for node in component.nodes)
            if component.branch_count:
                component.branch_index = tuple(
                    range(branch_cursor,
                          branch_cursor + component.branch_count))
                branch_cursor += component.branch_count
        self.n_branches = branch_cursor - self.n_nodes
        self._frozen = True
        return self

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def frozen(self) -> bool:
        return self._frozen

    @property
    def n_unknowns(self) -> int:
        if not self._frozen:
            raise CircuitError("freeze() the circuit before solving")
        return self.n_nodes + self.n_branches

    @property
    def node_names(self) -> list[str]:
        return list(self._node_order)

    def node_id(self, name: str) -> int:
        """Index of node ``name`` in the unknown vector (ground → ``-1``)."""
        if is_ground(name):
            return -1
        try:
            return self._node_index[name]
        except KeyError:
            raise CircuitError(
                f"unknown node {name!r} in circuit {self.name!r}") from None

    def component(self, name: str) -> Component:
        try:
            return self._components[name]
        except KeyError:
            raise CircuitError(
                f"unknown component {name!r} in circuit {self.name!r}"
            ) from None

    def components(self) -> Iterator[Component]:
        return iter(self._components.values())

    def __contains__(self, name: str) -> bool:
        return name in self._components

    def __len__(self) -> int:
        return len(self._components)

    def __repr__(self) -> str:
        return (f"Circuit({self.name!r}, components={len(self)}, "
                f"nodes={len(self._node_order)})")
