"""Lightweight SPICE-class circuit substrate (MNA transient solver).

This package substitutes for the Cadence Spectre simulations in the paper:
a modified-nodal-analysis formulation with Newton-Raphson iteration and
backward-Euler integration, sufficient for the ~10-node 2T-nC cell
netlists whose transient behaviour the paper's circuit claims rest on.
"""

from repro.spice.analysis import TransientResult
from repro.spice.circuit import Circuit
from repro.spice.components import (
    Capacitor,
    Component,
    CurrentSource,
    Resistor,
    StampContext,
    VoltageControlledSwitch,
    VoltageSource,
)
from repro.spice.mosfet import (
    FAB_NMOS,
    PTM45_NMOS,
    PTM45_PMOS,
    Mosfet,
    MosfetParams,
    subthreshold_swing_mv_per_dec,
)
from repro.spice.solver import SolverOptions, TransientSolver
from repro.spice.waveform import (
    DC,
    PWL,
    Delayed,
    Pulse,
    Scaled,
    Sinusoid,
    Sum,
    as_waveform,
)

__all__ = [
    "Circuit",
    "Component",
    "StampContext",
    "Resistor",
    "Capacitor",
    "VoltageSource",
    "CurrentSource",
    "VoltageControlledSwitch",
    "Mosfet",
    "MosfetParams",
    "PTM45_NMOS",
    "PTM45_PMOS",
    "FAB_NMOS",
    "subthreshold_swing_mv_per_dec",
    "TransientSolver",
    "SolverOptions",
    "TransientResult",
    "DC",
    "PWL",
    "Pulse",
    "Sinusoid",
    "Sum",
    "Scaled",
    "Delayed",
    "as_waveform",
]
