"""Analytic MOSFET model (EKV-style) with PTM-45nm-like parameter sets.

The paper simulates the 2T-nC cell with ASU 45 nm PTM transistors in
Spectre.  For this reproduction we use a single-expression EKV-style model
that is smooth from deep subthreshold through saturation, which is the
behaviour the cell actually exercises: ``T_W`` as an on/off switch and
``T_R`` as a subthreshold-to-on transconductor read out at the RSL.

Drain current (source-referenced, symmetric in drain/source):

    F(x)  = ln(1 + exp(x/2))^2
    I_D   = I_spec * [F((VGS - VT)/(n*UT)) - F((VGS - VT - n*VDS)/(n*UT))]
            * (1 + lambda * VDS)
    I_spec = 2 * n * (KP * W / L) * UT^2

which reduces to ``KP/(2n) * W/L * (VGS-VT)^2`` in saturation and to an
exponential with subthreshold swing ``n * UT * ln(10)`` below threshold.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from repro.errors import DeviceError
from repro.spice.components import Component, StampContext

__all__ = [
    "MosfetParams",
    "Mosfet",
    "PTM45_NMOS",
    "PTM45_PMOS",
    "FAB_NMOS",
    "subthreshold_swing_mv_per_dec",
]

BOLTZMANN_EV = 8.617333262e-5  # eV/K


def thermal_voltage(temperature_k: float) -> float:
    """kT/q in volts."""
    return BOLTZMANN_EV * temperature_k


@dataclass(frozen=True)
class MosfetParams:
    """Technology/device parameters for the EKV-style model.

    Attributes
    ----------
    polarity:
        ``+1`` for NMOS, ``-1`` for PMOS.
    vt:
        Threshold voltage magnitude in volts.
    kp:
        Transconductance parameter ``mu * Cox`` in A/V^2.
    n:
        Subthreshold slope factor (SS = n * UT * ln 10).
    lam:
        Channel-length modulation in 1/V.
    w, l:
        Device width and length in metres.
    i_off_floor:
        Leakage floor in amperes added to |I_D| (gate-independent junction/
        GIDL leakage); sets the measurable on/off ratio.
    temperature_k:
        Device temperature in kelvin.
    """

    polarity: int
    vt: float
    kp: float
    n: float
    lam: float
    w: float
    l: float
    i_off_floor: float = 0.0
    temperature_k: float = 300.0

    def __post_init__(self) -> None:
        if self.polarity not in (+1, -1):
            raise DeviceError("polarity must be +1 (NMOS) or -1 (PMOS)")
        if self.vt <= 0 or self.kp <= 0 or self.n < 1.0:
            raise DeviceError("vt, kp must be > 0 and n >= 1")
        if self.w <= 0 or self.l <= 0:
            raise DeviceError("w and l must be positive")

    @property
    def ut(self) -> float:
        return thermal_voltage(self.temperature_k)

    @property
    def i_spec(self) -> float:
        """EKV specific current ``2 n beta UT^2``."""
        return 2.0 * self.n * self.kp * (self.w / self.l) * self.ut ** 2

    def scaled(self, **overrides: float) -> "MosfetParams":
        """Copy with the given fields replaced."""
        return replace(self, **overrides)


def subthreshold_swing_mv_per_dec(params: MosfetParams) -> float:
    """Theoretical subthreshold swing of the model in mV/decade."""
    return params.n * params.ut * math.log(10.0) * 1e3


#: ASU 45 nm PTM high-performance NMOS, reduced to the EKV parameters that
#: matter for the cell: |VT| ~ 0.47 V, SS ~ 95 mV/dec, strong-inversion
#: current of a few hundred uA/um at 1 V overdrive.
PTM45_NMOS = MosfetParams(polarity=+1, vt=0.466, kp=420e-6, n=1.60,
                          lam=0.12, w=90e-9, l=45e-9, i_off_floor=2e-13)

#: ASU 45 nm PTM high-performance PMOS counterpart.
PTM45_PMOS = MosfetParams(polarity=-1, vt=0.412, kp=210e-6, n=1.65,
                          lam=0.15, w=135e-9, l=45e-9, i_off_floor=2e-13)

#: The fabricated long-channel test transistor of Fig. 4(d): SS ~= 110
#: mV/dec, on/off ~= 1e7 at VD = 0.1 V over the -1..3 V gate sweep.
FAB_NMOS = MosfetParams(polarity=+1, vt=0.95, kp=200e-6, n=1.853,
                        lam=0.02, w=10e-6, l=2e-6, i_off_floor=1.95e-11,
                        temperature_k=300.0)


def _f_ekv_array(x: np.ndarray) -> np.ndarray:
    """Vectorized EKV interpolation function ``F(x) = ln(1+e^{x/2})^2``."""
    half = 0.5 * np.asarray(x, dtype=float)
    # Same overflow guard as the scalar path: F ~ (x/2)^2 asymptotically.
    ln_term = np.where(half > 40.0, half,
                       np.log1p(np.exp(np.minimum(half, 40.0))))
    return ln_term * ln_term


def _f_ekv(x: float) -> tuple[float, float]:
    """EKV interpolation function ``F(x) = ln(1+e^{x/2})^2`` and dF/dx."""
    half = 0.5 * x
    if half > 40.0:  # avoid overflow; asymptotically F ~ (x/2)^2
        ln_term = half
        sig = 1.0
    else:
        ln_term = math.log1p(math.exp(half))
        sig = 1.0 / (1.0 + math.exp(-half))
    return ln_term * ln_term, ln_term * sig


class Mosfet(Component):
    """Three-terminal MOSFET (drain, gate, source); bulk tied to source.

    The gate is ideal (no DC current).  Gate capacitance is *not* included
    implicitly — cell builders add explicit :class:`~repro.spice.components.Capacitor`
    elements so that the storage-node capacitance is visible and testable.
    """

    def __init__(self, name: str, drain: str, gate: str, source: str,
                 params: MosfetParams) -> None:
        super().__init__(name, (drain, gate, source))
        self.params = params

    # ------------------------------------------------------------------
    # device equations
    # ------------------------------------------------------------------
    def ids(self, vgs: float, vds: float) -> float:
        """Drain current for terminal voltages (NMOS convention).

        For PMOS the caller should pass terminal voltages as-is; polarity
        handling mirrors the device internally.
        """
        current, _, _ = self._ids_and_derivs(vgs, vds)
        return current

    def ids_array(self, vgs: np.ndarray | float,
                  vds: np.ndarray | float) -> np.ndarray:
        """Vectorized drain current for arrays of terminal voltages.

        Same device equations as :meth:`ids` (polarity, drain/source
        symmetry, leakage floor) evaluated elementwise over broadcast
        ``vgs`` / ``vds`` — the batched sense-level path of the
        behavioural cell model.
        """
        p = self.params
        pol = p.polarity
        vgs_n = pol * np.asarray(vgs, dtype=float)
        vds_n = pol * np.asarray(vds, dtype=float)
        swap = vds_n < 0.0
        # Swapped terminals: I_ds(vgs, vds) = -I_core(vgs - vds, -vds).
        vg_eff = np.where(swap, vgs_n - vds_n, vgs_n)
        vd_eff = np.abs(vds_n)
        nut = p.n * p.ut
        ff = _f_ekv_array((vg_eff - p.vt) / nut)
        fr = _f_ekv_array((vg_eff - p.vt - p.n * vd_eff) / nut)
        i_core = p.i_spec * (ff - fr) * (1.0 + p.lam * vd_eff)
        i = np.where(swap, -i_core, i_core)
        i = i + (p.i_off_floor / self._FLOOR_VDS_REF) * vds_n
        return pol * i

    def _ids_core(self, vgs: float, vds: float) -> tuple[float, float, float]:
        """I_D and partials for vds >= 0, polarity-normalised voltages."""
        p = self.params
        nut = p.n * p.ut
        xf = (vgs - p.vt) / nut
        xr = (vgs - p.vt - p.n * vds) / nut
        ff, dff = _f_ekv(xf)
        fr, dfr = _f_ekv(xr)
        clm = 1.0 + p.lam * vds
        ispec = p.i_spec
        i0 = ispec * (ff - fr)
        current = i0 * clm
        di_dvgs = ispec * (dff - dfr) / nut * clm
        di_dvds = ispec * (dfr * p.n / nut) * clm + i0 * p.lam
        return current, di_dvgs, di_dvds

    #: reference |VDS| at which ``i_off_floor`` is the measured off current
    _FLOOR_VDS_REF = 0.1

    def _ids_and_derivs(self, vgs: float,
                        vds: float) -> tuple[float, float, float]:
        """I_D (drain->source positive) and partials w.r.t. vgs, vds.

        Handles polarity and drain/source symmetry (vds < 0).  The leakage
        floor is modelled as a linear drain-source conductance sized so the
        off current equals ``i_off_floor`` at |VDS| = 0.1 V, keeping the
        device equations smooth for Newton iteration.
        """
        pol = self.params.polarity
        vgs_n = pol * vgs
        vds_n = pol * vds
        if vds_n >= 0.0:
            i, dig, did = self._ids_core(vgs_n, vds_n)
        else:
            # Swap source and drain: vgd = vgs - vds becomes the gate drive.
            i_sw, dig_sw, did_sw = self._ids_core(vgs_n - vds_n, -vds_n)
            # I_ds(vgs, vds) = -I_core(vgs - vds, -vds); chain rule back:
            #   d/dvgs = -dI/du,  d/dvds = dI/du + dI/dw.
            i = -i_sw
            dig = -dig_sw
            did = dig_sw + did_sw
        g_floor = self.params.i_off_floor / self._FLOOR_VDS_REF
        i += g_floor * vds_n
        did += g_floor
        # Back to physical polarity: i_phys = pol * i_n, and both partials
        # pick up pol twice (once from i, once from the voltage mapping),
        # which cancels.
        return pol * i, dig, did

    def drain_current(self, x) -> float:
        """Drain->source current at a committed solution vector."""
        d, g, s = self.node_index
        vd = 0.0 if d < 0 else float(x[d])
        vg = 0.0 if g < 0 else float(x[g])
        vs = 0.0 if s < 0 else float(x[s])
        current, _, _ = self._ids_and_derivs(vg - vs, vd - vs)
        return current

    # ------------------------------------------------------------------
    # MNA stamp
    # ------------------------------------------------------------------
    def stamp(self, ctx: StampContext) -> None:
        d, g, s = self.node_index
        vd = ctx.v(d)
        vg = ctx.v(g)
        vs = ctx.v(s)
        ids, gm, gds = self._ids_and_derivs(vg - vs, vd - vs)
        gmin = 1e-12  # numerical floor keeps the Jacobian non-singular
        gds = gds + gmin
        # Linearised current into drain:
        #   i_d(v) ~= ids + gm*(dvgs) + gds*(dvds)
        # Matrix rows: current leaves drain node, enters source node.
        ieq = ids - gm * (vg - vs) - gds * (vd - vs)
        # Conductance stamps.
        if d >= 0:
            ctx.a[d, d] += gds
            if g >= 0:
                ctx.a[d, g] += gm
            if s >= 0:
                ctx.a[d, s] -= gm + gds
            ctx.z[d] -= ieq
        if s >= 0:
            ctx.a[s, s] += gm + gds
            if g >= 0:
                ctx.a[s, g] -= gm
            if d >= 0:
                ctx.a[s, d] -= gds
            ctx.z[s] += ieq
