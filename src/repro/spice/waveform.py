"""Stimulus waveforms for independent sources.

A waveform is any callable ``f(t) -> float`` mapping time in seconds to a
value (volts or amperes).  The classes here provide the SPICE-familiar
shapes (DC, PWL, PULSE, SIN) plus composition helpers used by the cell
protocol builders in :mod:`repro.core.waveforms`.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from collections.abc import Iterable, Sequence

from repro.errors import CircuitError

__all__ = [
    "DC",
    "PWL",
    "Pulse",
    "Sinusoid",
    "Sum",
    "Scaled",
    "Delayed",
    "as_waveform",
]


class Waveform:
    """Base class for time-dependent source values."""

    def __call__(self, t: float) -> float:
        raise NotImplementedError

    def __add__(self, other: "Waveform | float") -> "Sum":
        return Sum([self, as_waveform(other)])

    def __mul__(self, k: float) -> "Scaled":
        return Scaled(self, float(k))

    __rmul__ = __mul__


class DC(Waveform):
    """Constant value."""

    def __init__(self, value: float) -> None:
        self.value = float(value)

    def __call__(self, t: float) -> float:
        return self.value

    def __repr__(self) -> str:
        return f"DC({self.value:g})"


class PWL(Waveform):
    """Piece-wise-linear waveform from ``(time, value)`` breakpoints.

    Times must be non-decreasing.  Before the first breakpoint the first
    value holds; after the last breakpoint the last value holds.

    >>> w = PWL([(0, 0.0), (1e-9, 1.5), (5e-9, 1.5), (6e-9, 0.0)])
    >>> w(0.5e-9)
    0.75
    """

    def __init__(self, points: Iterable[tuple[float, float]]) -> None:
        pts = [(float(t), float(v)) for t, v in points]
        if not pts:
            raise CircuitError("PWL requires at least one breakpoint")
        for (t0, _), (t1, _) in zip(pts, pts[1:]):
            if t1 < t0:
                raise CircuitError(
                    f"PWL breakpoints must be non-decreasing in time "
                    f"(got {t0:g} then {t1:g})")
        self.points = pts
        # Precomputed columns: __call__ is evaluated once per transient
        # step, so segment lookup is a bisection, not a linear scan.
        self._times = [t for t, _ in pts]
        self._values = [v for _, v in pts]

    def __call__(self, t: float) -> float:
        times = self._times
        values = self._values
        if t <= times[0]:
            return values[0]
        if t >= times[-1]:
            return values[-1]
        # First segment [times[k-1], times[k]] containing t; at an exact
        # (possibly repeated) breakpoint this yields the segment-end
        # value, matching the historical first-match linear scan.
        k = bisect_left(times, t)
        t0, t1 = times[k - 1], times[k]
        v1 = values[k]
        if t1 == t:
            return v1
        v0 = values[k - 1]
        frac = (t - t0) / (t1 - t0)
        return v0 + frac * (v1 - v0)

    def breakpoint_times(self) -> list[float]:
        """Times where the slope may change (used for solver step clamping)."""
        return [t for t, _ in self.points]

    def __repr__(self) -> str:
        return f"PWL({self.points!r})"


class Pulse(Waveform):
    """SPICE-style periodic trapezoidal pulse.

    Parameters mirror the SPICE ``PULSE`` source: initial value, pulsed
    value, delay, rise time, fall time, pulse width, and period.  A zero
    ``period`` gives a single (non-repeating) pulse.
    """

    def __init__(self, v_initial: float, v_pulse: float, *, delay: float = 0.0,
                 rise: float = 1e-12, fall: float = 1e-12,
                 width: float = 1e-9, period: float = 0.0) -> None:
        if rise <= 0 or fall <= 0:
            raise CircuitError("Pulse rise/fall times must be positive")
        if width < 0:
            raise CircuitError("Pulse width must be non-negative")
        shape = rise + width + fall
        if period < 0:
            raise CircuitError(
                "Pulse period must be non-negative (0 = single pulse)")
        if period != 0.0 and period < shape * (1.0 - 1e-9):
            # SPICE semantics: the period must fit the whole trapezoid;
            # a shorter one would silently truncate the pulse through
            # the fmod wrap below.  (Relative slack absorbs float
            # accumulation for period == rise+width+fall.)
            raise CircuitError(
                f"Pulse period {period:g}s is shorter than "
                f"rise+width+fall = {shape:g}s")
        self.v_initial = float(v_initial)
        self.v_pulse = float(v_pulse)
        self.delay = float(delay)
        self.rise = float(rise)
        self.fall = float(fall)
        self.width = float(width)
        self.period = float(period)

    def __call__(self, t: float) -> float:
        t = t - self.delay
        if t < 0:
            return self.v_initial
        if self.period > 0:
            t = math.fmod(t, self.period)
        if t < self.rise:
            frac = t / self.rise
            return self.v_initial + frac * (self.v_pulse - self.v_initial)
        t -= self.rise
        if t < self.width:
            return self.v_pulse
        t -= self.width
        if t < self.fall:
            frac = t / self.fall
            return self.v_pulse + frac * (self.v_initial - self.v_pulse)
        return self.v_initial


class Sinusoid(Waveform):
    """``offset + amplitude * sin(2*pi*freq*(t-delay))`` (zero before delay)."""

    def __init__(self, offset: float, amplitude: float, freq: float,
                 *, delay: float = 0.0) -> None:
        if freq <= 0:
            raise CircuitError("Sinusoid frequency must be positive")
        self.offset = float(offset)
        self.amplitude = float(amplitude)
        self.freq = float(freq)
        self.delay = float(delay)

    def __call__(self, t: float) -> float:
        if t < self.delay:
            return self.offset
        return self.offset + self.amplitude * math.sin(
            2.0 * math.pi * self.freq * (t - self.delay))


class Sum(Waveform):
    """Point-wise sum of waveforms."""

    def __init__(self, parts: Sequence[Waveform]) -> None:
        self.parts = list(parts)

    def __call__(self, t: float) -> float:
        return sum(p(t) for p in self.parts)


class Scaled(Waveform):
    """Waveform multiplied by a constant."""

    def __init__(self, inner: Waveform, k: float) -> None:
        self.inner = inner
        self.k = float(k)

    def __call__(self, t: float) -> float:
        return self.k * self.inner(t)


class Delayed(Waveform):
    """Waveform shifted later in time by ``delay`` seconds."""

    def __init__(self, inner: Waveform, delay: float) -> None:
        self.inner = inner
        self.delay = float(delay)

    def __call__(self, t: float) -> float:
        return self.inner(t - self.delay)


def as_waveform(value: "Waveform | float | int") -> Waveform:
    """Coerce a plain number into a :class:`DC` waveform."""
    if isinstance(value, Waveform):
        return value
    if isinstance(value, (int, float)):
        return DC(float(value))
    raise CircuitError(f"cannot interpret {value!r} as a waveform")
