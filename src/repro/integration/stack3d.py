"""Vertical 2T-nC string geometry and die capacity (paper §V, Fig. 5).

The vertical cell stacks, bottom to top: the read transistor ``T_R``,
``n`` ferroelectric capacitors in the BEOL, and the write transistor
``T_W`` — an ``n + 2``-layer string whose footprint is a single
130 × 130 nm² column.  A die tiled with such strings (plus 50 %
peripheral overhead) at the paper's Fig. 7 dimensions holds ≈ 2 GB,
matching the "5-layer 2 GB vertical 2T-nC FeRAM die" of the thermal
study.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ArchitectureError
from repro.integration.area import (
    PERIPHERY_OVERHEAD,
    VERTICAL_FOOTPRINT_NM,
    vertical_cell_area_nm2,
)

__all__ = ["VerticalString", "StackedDie", "FIG7_DIE"]


@dataclass(frozen=True)
class VerticalString:
    """One vertical 2T-nC column."""

    n_caps: int = 3
    footprint_nm: float = VERTICAL_FOOTPRINT_NM

    def __post_init__(self) -> None:
        if self.n_caps < 1:
            raise ArchitectureError("string needs at least one capacitor")

    @property
    def n_layers(self) -> int:
        """Device layers: T_R + n capacitors + T_W."""
        return self.n_caps + 2

    @property
    def footprint_nm2(self) -> float:
        return vertical_cell_area_nm2(footprint_nm=self.footprint_nm)

    @property
    def bits(self) -> int:
        return self.n_caps

    def layer_names(self) -> list[str]:
        return (["T_R"] + [f"C{k + 1}" for k in range(self.n_caps)]
                + ["T_W"])


@dataclass(frozen=True)
class StackedDie:
    """A memory die tiled with vertical 2T-nC strings."""

    width_mm: float
    height_mm: float
    string: VerticalString = VerticalString()
    periphery_overhead: float = PERIPHERY_OVERHEAD

    def __post_init__(self) -> None:
        if self.width_mm <= 0 or self.height_mm <= 0:
            raise ArchitectureError("die dimensions must be positive")
        if self.periphery_overhead < 0:
            raise ArchitectureError("periphery overhead must be >= 0")

    @property
    def area_mm2(self) -> float:
        return self.width_mm * self.height_mm

    @property
    def cell_pitch_area_nm2(self) -> float:
        """Footprint per string including peripheral overhead."""
        return self.string.footprint_nm2 * (1.0 + self.periphery_overhead)

    @property
    def n_strings(self) -> int:
        nm2_per_mm2 = 1e12
        return int(self.area_mm2 * nm2_per_mm2 / self.cell_pitch_area_nm2)

    @property
    def capacity_bits(self) -> int:
        return self.n_strings * self.string.bits

    @property
    def capacity_gb(self) -> float:
        """Capacity in gigabytes (2^30 bytes)."""
        return self.capacity_bits / 8 / (1 << 30)

    def bits_per_mm2(self) -> float:
        return self.capacity_bits / self.area_mm2


#: The Fig. 7 thermal-study die: 14.2 mm × 10.65 mm, n = 3 (5 layers),
#: which this model puts at ≈ 2.2 GB — the paper's "2 GB" die.
FIG7_DIE = StackedDie(width_mm=14.2, height_mm=10.65)
