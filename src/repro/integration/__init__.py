"""3D integration models: planar vs vertical 2T-nC area (30 F²/cap at
F = 28 nm vs the 130 × 130 nm² vertical string, 4.18× reduction), die
capacity of stacked strings, and storage/compute density comparisons.
"""

from repro.integration.area import (
    PERIPHERY_OVERHEAD,
    PLANAR_F2_PER_CAP,
    TECH_F_NM,
    VERTICAL_FOOTPRINT_NM,
    CellAreaReport,
    area_report,
    planar_cell_area_f2,
    planar_cell_area_nm2,
    vertical_cell_area_nm2,
    vertical_reduction_factor,
)
from repro.integration.density import DensityComparison, density_comparison
from repro.integration.stack3d import FIG7_DIE, StackedDie, VerticalString

__all__ = [
    "TECH_F_NM",
    "PLANAR_F2_PER_CAP",
    "VERTICAL_FOOTPRINT_NM",
    "PERIPHERY_OVERHEAD",
    "planar_cell_area_f2",
    "planar_cell_area_nm2",
    "vertical_cell_area_nm2",
    "vertical_reduction_factor",
    "CellAreaReport",
    "area_report",
    "VerticalString",
    "StackedDie",
    "FIG7_DIE",
    "DensityComparison",
    "density_comparison",
]
