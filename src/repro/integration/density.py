"""Storage and compute density comparisons (paper §V claims).

Quantifies what the vertical stack buys: bits/mm² and row-parallel
MINORITY operations per activation per mm², planar vs vertical, with
optional multi-deck stacking ("further enhanced by stacking multiple
such layers vertically").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ArchitectureError
from repro.integration.area import (
    PERIPHERY_OVERHEAD,
    TECH_F_NM,
    planar_cell_area_nm2,
    vertical_cell_area_nm2,
)

__all__ = ["DensityComparison", "density_comparison"]

NM2_PER_MM2 = 1e12


@dataclass(frozen=True)
class DensityComparison:
    """Planar vs vertical density figures for a 2T-nC configuration."""

    n_caps: int
    n_decks: int
    planar_bits_per_mm2: float
    vertical_bits_per_mm2: float
    planar_lim_cells_per_mm2: float
    vertical_lim_cells_per_mm2: float

    @property
    def storage_gain(self) -> float:
        """Vertical-over-planar storage density factor."""
        return self.vertical_bits_per_mm2 / self.planar_bits_per_mm2

    @property
    def compute_gain(self) -> float:
        """Vertical-over-planar LiM (MINORITY-capable cell) density."""
        return (self.vertical_lim_cells_per_mm2
                / self.planar_lim_cells_per_mm2)


def density_comparison(n_caps: int = 3, *, n_decks: int = 1,
                       f_nm: float = TECH_F_NM,
                       periphery_overhead: float = PERIPHERY_OVERHEAD,
                       ) -> DensityComparison:
    """Compute §V density figures.

    ``n_decks`` stacks multiple vertical arrays (each deck multiplies
    vertical density; planar cannot stack).
    """
    if n_decks < 1:
        raise ArchitectureError("need at least one deck")
    overhead = 1.0 + periphery_overhead
    planar_cell = planar_cell_area_nm2(n_caps, f_nm=f_nm) * overhead
    vertical_cell = vertical_cell_area_nm2() * overhead
    planar_cells_mm2 = NM2_PER_MM2 / planar_cell
    vertical_cells_mm2 = NM2_PER_MM2 / vertical_cell * n_decks
    return DensityComparison(
        n_caps=n_caps,
        n_decks=n_decks,
        planar_bits_per_mm2=planar_cells_mm2 * n_caps,
        vertical_bits_per_mm2=vertical_cells_mm2 * n_caps,
        planar_lim_cells_per_mm2=planar_cells_mm2,
        vertical_lim_cells_per_mm2=vertical_cells_mm2,
    )
