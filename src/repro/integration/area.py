"""Planar vs vertical-3D area model (paper §V).

Anchors from the paper:

* 2T-1C FeRAM at the 28 nm node occupies ≈ 30 F² with each FE capacitor
  accounting for 1 F² (citing the 28 nm embedded-FeRAM path study);
* extending to 2T-3C planar costs ≈ 90 F²;
* the vertically stacked 2T-3C string achieves a ≈ 130 × 130 nm²
  footprint, a 4.18× reduction;
* peripheral circuitry adds ≈ 50 % area overhead (used by §VII).

The anchor constants live in the component estimator registry
(:mod:`repro.arch.components.geometry`) — re-exported here for the 3D
integration stack — so every area number has exactly one source of
truth shared with the per-component area estimators.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.components.geometry import (
    PERIPHERY_OVERHEAD,
    PLANAR_F2_PER_CAP,
    TECH_F_NM,
    VERTICAL_FOOTPRINT_NM,
)
from repro.errors import ArchitectureError

__all__ = [
    "TECH_F_NM",
    "PLANAR_F2_PER_CAP",
    "VERTICAL_FOOTPRINT_NM",
    "PERIPHERY_OVERHEAD",
    "planar_cell_area_f2",
    "planar_cell_area_nm2",
    "vertical_cell_area_nm2",
    "vertical_reduction_factor",
    "CellAreaReport",
    "area_report",
]

def planar_cell_area_f2(n_caps: int) -> float:
    """Planar 2T-nC cell area in F² (the paper's 30 F² → 90 F² scaling)."""
    if n_caps < 1:
        raise ArchitectureError("cell needs at least one capacitor")
    return PLANAR_F2_PER_CAP * n_caps


def planar_cell_area_nm2(n_caps: int, *, f_nm: float = TECH_F_NM) -> float:
    """Planar 2T-nC cell area in nm²."""
    if f_nm <= 0:
        raise ArchitectureError("feature size must be positive")
    return planar_cell_area_f2(n_caps) * f_nm * f_nm


def vertical_cell_area_nm2(*, footprint_nm: float = VERTICAL_FOOTPRINT_NM,
                           ) -> float:
    """Vertical 2T-nC string footprint in nm² (capacitors stack in the
    BEOL between T_R and T_W, costing no lateral area)."""
    if footprint_nm <= 0:
        raise ArchitectureError("footprint must be positive")
    return footprint_nm * footprint_nm


def vertical_reduction_factor(n_caps: int = 3, *,
                              f_nm: float = TECH_F_NM,
                              footprint_nm: float = VERTICAL_FOOTPRINT_NM,
                              ) -> float:
    """Planar/vertical footprint ratio — the paper's 4.18× for 2T-3C."""
    return (planar_cell_area_nm2(n_caps, f_nm=f_nm)
            / vertical_cell_area_nm2(footprint_nm=footprint_nm))


@dataclass(frozen=True)
class CellAreaReport:
    """Summary of the §V area comparison for one cell configuration."""

    n_caps: int
    planar_f2: float
    planar_nm2: float
    vertical_nm2: float
    reduction: float
    bits_per_cell: int

    @property
    def planar_nm2_per_bit(self) -> float:
        return self.planar_nm2 / self.bits_per_cell

    @property
    def vertical_nm2_per_bit(self) -> float:
        return self.vertical_nm2 / self.bits_per_cell


def area_report(n_caps: int = 3, *, f_nm: float = TECH_F_NM,
                footprint_nm: float = VERTICAL_FOOTPRINT_NM,
                ) -> CellAreaReport:
    """Build the paper's §V comparison for a 2T-nC cell."""
    return CellAreaReport(
        n_caps=n_caps,
        planar_f2=planar_cell_area_f2(n_caps),
        planar_nm2=planar_cell_area_nm2(n_caps, f_nm=f_nm),
        vertical_nm2=vertical_cell_area_nm2(footprint_nm=footprint_nm),
        reduction=vertical_reduction_factor(n_caps, f_nm=f_nm,
                                            footprint_nm=footprint_nm),
        bits_per_cell=n_caps,
    )
