"""Multi-domain hysteron bank: the stateful core of the FeCap model.

The polycrystalline film is discretised into ``n_domains`` hysterons.
Domain ``k`` carries a coercive voltage ``vc_k`` drawn from the material's
Gaussian distribution (deterministic quantile sampling by default, random
sampling for device-to-device variation studies), a weight ``w_k`` and a
normalized polarization ``s_k ∈ [-1, 1]``.

Under an applied voltage each domain relaxes toward the field's sign with
the Merz-law time constant of :mod:`repro.ferro.dynamics`.  Because the
time constant is astronomically long for strong domains at read voltages
yet short for the weak tail, the same mechanics produce:

* square-ish saturation loops (Fig. 4(e));
* decades-wide pulse switching kinetics (Fig. 4(g,h));
* *quasi*-nondestructive readout — a read pulse flips only a small part
  of the weak tail, and only when the stored state opposes the read
  field (the ΔQ0 ≫ ΔQ1 asymmetry behind the paper's QNRO sensing);
* accumulative read disturb across repeated reads.
"""

from __future__ import annotations

import numpy as np
from scipy import special

from repro.errors import DeviceError
from repro.ferro.dynamics import switched_fraction, switching_time
from repro.ferro.materials import FerroMaterial

__all__ = ["DomainBank"]


def _gaussian_quantiles(n: int) -> np.ndarray:
    """Midpoint quantiles of the standard normal for n equal-mass bins."""
    probs = (np.arange(n) + 0.5) / n
    return special.ndtri(probs)


class DomainBank:
    """State of one ferroelectric capacitor's domain population.

    Parameters
    ----------
    material:
        Device parameters.
    temperature_k:
        Operating temperature; scales coercive/activation voltages and
        the saturation polarization via the material's linear laws.
    rng:
        If given, coercive voltages are sampled randomly (device-to-device
        variation); otherwise deterministic quantile sampling is used.
    vc_shift:
        Additive shift (volts) applied to every coercive voltage; models
        imprint or deliberate skew in variation studies.
    """

    def __init__(self, material: FerroMaterial, *,
                 temperature_k: float | None = None,
                 rng: np.random.Generator | None = None,
                 vc_shift: float = 0.0) -> None:
        self.material = material
        self.temperature_k = float(temperature_k if temperature_k is not None
                                   else material.t_ref)
        n = material.n_domains
        vc_mean = material.vc_at(self.temperature_k)
        # Sigma scales proportionally with the mean under temperature.
        sigma = material.vc_sigma * vc_mean / material.vc_mean
        if rng is None:
            z = _gaussian_quantiles(n)
        else:
            z = rng.standard_normal(n)
        vc = vc_mean + sigma * z + vc_shift
        self.vc = np.maximum(vc, 0.02)
        self.va = material.activation_scale * self.vc
        self.weights = np.full(n, 1.0 / n)
        self.s = np.zeros(n)
        self._ps = material.ps_at(self.temperature_k)

    # ------------------------------------------------------------------
    # state access
    # ------------------------------------------------------------------
    @property
    def ps(self) -> float:
        """Saturation polarization at the bank's temperature, C/m²."""
        return self._ps

    def polarization(self, s: np.ndarray | None = None) -> float:
        """Ferroelectric polarization (C/m²) of the given/current state."""
        state = self.s if s is None else s
        return float(self._ps * np.dot(self.weights, state))

    def set_uniform(self, s_value: float) -> None:
        """Pole every domain to ``s_value`` (must lie in [-1, 1])."""
        if not -1.0 <= s_value <= 1.0:
            raise DeviceError("domain state must lie in [-1, 1]")
        self.s = np.full(self.material.n_domains, float(s_value))

    def snapshot(self) -> np.ndarray:
        """Copy of the per-domain state (for save/restore)."""
        return self.s.copy()

    def restore(self, snapshot: np.ndarray) -> None:
        if snapshot.shape != self.s.shape:
            raise DeviceError("snapshot shape mismatch")
        self.s = snapshot.copy()

    # ------------------------------------------------------------------
    # dynamics
    # ------------------------------------------------------------------
    def evolved_state(self, voltage: float, dt: float,
                      s: np.ndarray | None = None) -> np.ndarray:
        """State after holding ``voltage`` for ``dt`` (pure: no mutation)."""
        state = self.s if s is None else s
        if dt <= 0.0 or abs(voltage) < 1e-9:
            return state.copy()
        target = 1.0 if voltage > 0 else -1.0
        tau = switching_time(voltage, self.va, self.material.tau0,
                             self.material.merz_n)
        frac = switched_fraction(dt, tau)
        return state + (target - state) * frac

    def apply_voltage(self, voltage: float, dt: float) -> float:
        """Hold ``voltage`` for ``dt`` seconds; returns the new P (C/m²)."""
        self.s = self.evolved_state(voltage, dt)
        return self.polarization()

    def apply_waveform(self, times: np.ndarray, voltages: np.ndarray,
                       ) -> np.ndarray:
        """Apply a sampled waveform; returns P at every sample.

        ``times`` must be increasing; the voltage over ``[t_i, t_{i+1}]``
        is taken as the midpoint of the two endpoint values.
        """
        times = np.asarray(times, dtype=float)
        voltages = np.asarray(voltages, dtype=float)
        if times.shape != voltages.shape or times.ndim != 1:
            raise DeviceError("times and voltages must be equal-length 1-D")
        p_out = np.empty_like(times)
        p_out[0] = self.polarization()
        for k in range(1, times.size):
            dt = times[k] - times[k - 1]
            if dt < 0:
                raise DeviceError("times must be non-decreasing")
            v_mid = 0.5 * (voltages[k] + voltages[k - 1])
            p_out[k] = self.apply_voltage(v_mid, dt)
        return p_out

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    def total_charge_density(self, voltage: float,
                             s: np.ndarray | None = None) -> float:
        """Total surface charge density Q/A (C/m²) at ``voltage``.

        Sum of the hysteretic domain polarization, the reversible
        (non-hysteretic) component and the linear dielectric response.
        """
        m = self.material
        p_fe = self.polarization(s)
        p_rev = m.chi_nl * np.tanh(voltage / m.v_nl)
        q_lin = m.linear_capacitance * voltage / m.area
        return float(p_fe + p_rev + q_lin)

    def charge(self, voltage: float, s: np.ndarray | None = None) -> float:
        """Total device charge in coulombs at ``voltage``."""
        return self.total_charge_density(voltage, s) * self.material.area

    def remanent_polarization(self) -> float:
        """Current P at zero volts (the hysteretic part only), C/m²."""
        return self.polarization()

    def quasi_static_loop(self, v_amplitude: float, *, n_points: int = 401,
                          period: float = 1e-3, cycles: int = 2,
                          ) -> tuple[np.ndarray, np.ndarray]:
        """Trace a polarization-voltage loop with a triangular sweep.

        Returns ``(voltages, charge_densities)`` of the final cycle, the
        quantity plotted in the paper's Fig. 4(e) (QFE vs V).  ``period``
        is the triangle period in seconds (1 ms ≈ quasi-static for both
        material presets).
        """
        if v_amplitude <= 0 or n_points < 16 or cycles < 1:
            raise DeviceError("invalid loop parameters")
        quarter = n_points // 4
        up = np.linspace(0.0, v_amplitude, quarter, endpoint=False)
        down = np.linspace(v_amplitude, -v_amplitude, 2 * quarter,
                           endpoint=False)
        back = np.linspace(-v_amplitude, 0.0, quarter, endpoint=False)
        one_cycle = np.concatenate([up, down, back])
        voltages = np.tile(one_cycle, cycles)
        times = np.arange(voltages.size) * (period / one_cycle.size)
        self.apply_waveform(times[: -one_cycle.size + 1],
                            voltages[: -one_cycle.size + 1])
        # Final cycle traced point-by-point for the returned loop.
        v_last = voltages[-one_cycle.size:]
        t_last = times[-one_cycle.size:]
        q = np.empty_like(v_last)
        prev_t = t_last[0]
        prev_v = v_last[0]
        q[0] = self.total_charge_density(prev_v)
        for k in range(1, v_last.size):
            dt = t_last[k] - prev_t
            self.apply_voltage(0.5 * (v_last[k] + prev_v), dt)
            q[k] = self.total_charge_density(v_last[k])
            prev_t, prev_v = t_last[k], v_last[k]
        return v_last, q
