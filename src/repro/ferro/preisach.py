"""Multi-domain hysteron bank: the stateful core of the FeCap model.

The polycrystalline film is discretised into ``n_domains`` hysterons.
Domain ``k`` carries a coercive voltage ``vc_k`` drawn from the material's
Gaussian distribution (deterministic quantile sampling by default, random
sampling for device-to-device variation studies), a weight ``w_k`` and a
normalized polarization ``s_k ∈ [-1, 1]``.

Under an applied voltage each domain relaxes toward the field's sign with
the Merz-law time constant of :mod:`repro.ferro.dynamics`.  Because the
time constant is astronomically long for strong domains at read voltages
yet short for the weak tail, the same mechanics produce:

* square-ish saturation loops (Fig. 4(e));
* decades-wide pulse switching kinetics (Fig. 4(g,h));
* *quasi*-nondestructive readout — a read pulse flips only a small part
  of the weak tail, and only when the stored state opposes the read
  field (the ΔQ0 ≫ ΔQ1 asymmetry behind the paper's QNRO sensing);
* accumulative read disturb across repeated reads.

Two granularities share the same kernels:

* :class:`DomainEnsemble` holds ``(n_cells, n_domains)`` state arrays and
  advances/evaluates every cell in single numpy calls — the batched
  substrate behind Monte-Carlo variation studies and array-scale sweeps;
* :class:`DomainBank` is the single-cell view (a one-cell ensemble) used
  by circuit components and device-level experiments.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
from scipy import special

from repro.errors import DeviceError
from repro.ferro.dynamics import evolve_states
from repro.ferro.materials import FerroMaterial

__all__ = ["DomainBank", "DomainEnsemble", "charge_density"]


def _gaussian_quantiles(n: int) -> np.ndarray:
    """Midpoint quantiles of the standard normal for n equal-mass bins."""
    probs = (np.arange(n) + 0.5) / n
    return special.ndtri(probs)


def charge_density(material: FerroMaterial, ps: float,
                   weights: np.ndarray, s: np.ndarray,
                   voltage: np.ndarray | float) -> np.ndarray:
    """Total surface charge density Q/A (C/m²): the one charge model.

    Sum of the hysteretic domain polarization (``ps`` is the
    temperature-scaled saturation value), the reversible
    (non-hysteretic) component and the linear dielectric response.
    ``weights``/``s`` carry hysterons along the last axis; ``voltage``
    broadcasts against the remaining axes.  Every charge evaluation in
    the repository — scalar bank, batched ensemble, SPICE companion
    model, behavioural charge balance — goes through this formula.
    """
    p_fe = ps * np.sum(weights * s, axis=-1)
    p_rev = material.chi_nl * np.tanh(voltage / material.v_nl)
    q_lin = material.linear_capacitance * voltage / material.area
    return p_fe + p_rev + q_lin


class DomainEnsemble:
    """Domain populations of ``n_cells`` ferroelectric capacitors at once.

    All per-domain arrays have shape ``(n_cells, n_domains)``; the dynamics
    and charge evaluations accept state arrays with arbitrary extra leading
    batch axes (``(..., n_cells, n_domains)``) and voltages broadcastable
    to the batch shape, so a caller can probe many trial voltages or
    protocol branches of the whole ensemble in one vectorized call.

    Parameters
    ----------
    material:
        Device parameters (shared by every cell).
    n_cells:
        Number of independent capacitor instances.
    temperature_k:
        Operating temperature; scales coercive/activation voltages and
        the saturation polarization via the material's linear laws.
    rng:
        If given, coercive voltages are sampled randomly per cell
        (device-to-device variation); otherwise every cell uses the
        deterministic quantile sampling.
    vc_shift:
        Additive shift (volts) applied to every coercive voltage.
    """

    def __init__(self, material: FerroMaterial, n_cells: int = 1, *,
                 temperature_k: float | None = None,
                 rng: np.random.Generator | None = None,
                 vc_shift: float = 0.0) -> None:
        if n_cells < 1:
            raise DeviceError("ensemble needs at least one cell")
        self.material = material
        self.n_cells = int(n_cells)
        self.temperature_k = float(temperature_k if temperature_k is not None
                                   else material.t_ref)
        n = material.n_domains
        vc_mean = material.vc_at(self.temperature_k)
        # Sigma scales proportionally with the mean under temperature.
        sigma = material.vc_sigma * vc_mean / material.vc_mean
        if rng is None:
            z = np.broadcast_to(_gaussian_quantiles(n), (n_cells, n))
        else:
            z = rng.standard_normal((n_cells, n))
        vc = vc_mean + sigma * z + vc_shift
        self.vc = np.maximum(vc, 0.02)
        self.va = material.activation_scale * self.vc
        self.weights = np.full((n_cells, n), 1.0 / n)
        self.s = np.zeros((n_cells, n))
        self._ps = material.ps_at(self.temperature_k)

    @classmethod
    def from_banks(cls, banks: Sequence["DomainBank"]) -> "DomainEnsemble":
        """Stack single-cell banks into one ensemble (states are copied)."""
        if not banks:
            raise DeviceError("from_banks needs at least one bank")
        first = banks[0]
        for bank in banks[1:]:
            if (bank.material != first.material
                    or bank.temperature_k != first.temperature_k):
                raise DeviceError(
                    "ensemble banks must share material and temperature")
        ens = cls.__new__(cls)
        ens.material = first.material
        ens.n_cells = len(banks)
        ens.temperature_k = first.temperature_k
        ens.vc = np.stack([bank.vc for bank in banks])
        ens.va = np.stack([bank.va for bank in banks])
        ens.weights = np.stack([bank.weights for bank in banks])
        ens.s = np.stack([bank.s for bank in banks])
        ens._ps = first.ps
        return ens

    # ------------------------------------------------------------------
    # state access
    # ------------------------------------------------------------------
    @property
    def ps(self) -> float:
        """Saturation polarization at the ensemble's temperature, C/m²."""
        return self._ps

    def polarization(self, s: np.ndarray | None = None) -> np.ndarray:
        """Per-cell ferroelectric polarization (C/m²), shape ``(...,
        n_cells)``."""
        state = self.s if s is None else s
        return self._ps * np.sum(self.weights * state, axis=-1)

    def set_uniform(self, s_value: np.ndarray | float) -> None:
        """Pole every domain of every cell (values must lie in [-1, 1]).

        ``s_value`` may be a scalar or a per-cell array of shape
        ``(n_cells,)``.
        """
        values = np.asarray(s_value, dtype=float)
        if np.any(np.abs(values) > 1.0):
            raise DeviceError("domain state must lie in [-1, 1]")
        self.s = np.broadcast_to(
            values[..., None] if values.ndim else values,
            self.s.shape).copy()

    def snapshot(self) -> np.ndarray:
        """Copy of the per-cell, per-domain state (for save/restore)."""
        return self.s.copy()

    def restore(self, snapshot: np.ndarray) -> None:
        if snapshot.shape != self.s.shape:
            raise DeviceError("snapshot shape mismatch")
        self.s = snapshot.copy()

    # ------------------------------------------------------------------
    # dynamics
    # ------------------------------------------------------------------
    def evolved_state(self, voltage: np.ndarray | float, dt: float,
                      s: np.ndarray | None = None) -> np.ndarray:
        """States after holding per-cell ``voltage`` for ``dt`` (pure).

        ``voltage`` broadcasts against the batch axes of ``s`` (its last
        axis is the cell axis); the result gains the broadcast shape.
        """
        state = self.s if s is None else s
        m = self.material
        return evolve_states(state, voltage, dt, self.va, m.tau0, m.merz_n)

    def apply_voltage(self, voltage: np.ndarray | float,
                      dt: float) -> np.ndarray:
        """Hold per-cell ``voltage`` for ``dt``; returns the new P array."""
        self.s = self.evolved_state(voltage, dt)
        return self.polarization()

    def apply_waveform(self, times: np.ndarray, voltages: np.ndarray,
                       ) -> np.ndarray:
        """Apply a sampled waveform to every cell; P at every sample.

        ``times`` must be increasing 1-D; ``voltages`` is either the same
        shape (shared waveform) or ``(n_samples, n_cells)``.  Returns
        polarizations of shape ``(n_samples, n_cells)``.
        """
        times = np.asarray(times, dtype=float)
        voltages = np.asarray(voltages, dtype=float)
        if times.ndim != 1 or voltages.shape[0] != times.size:
            raise DeviceError("times and voltages must align on axis 0")
        if voltages.ndim == 1:
            voltages = np.broadcast_to(voltages[:, None],
                                       (times.size, self.n_cells))
        p_out = np.empty((times.size, self.n_cells))
        p_out[0] = self.polarization()
        for k in range(1, times.size):
            dt = times[k] - times[k - 1]
            if dt < 0:
                raise DeviceError("times must be non-decreasing")
            v_mid = 0.5 * (voltages[k] + voltages[k - 1])
            p_out[k] = self.apply_voltage(v_mid, dt)
        return p_out

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    def total_charge_density(self, voltage: np.ndarray | float,
                             s: np.ndarray | None = None) -> np.ndarray:
        """Per-cell surface charge density Q/A (C/m²) at ``voltage``."""
        return charge_density(self.material, self._ps, self.weights,
                              self.s if s is None else s,
                              np.asarray(voltage, dtype=float))

    def charge(self, voltage: np.ndarray | float,
               s: np.ndarray | None = None) -> np.ndarray:
        """Per-cell device charge in coulombs at ``voltage``."""
        return self.total_charge_density(voltage, s) * self.material.area

    def evolved_charge(self, voltage: np.ndarray | float, dt: float,
                       s: np.ndarray | None = None) -> np.ndarray:
        """Charge (C) at ``voltage`` after evolving over ``dt`` (pure).

        The one-call combination circuit components and charge-balance
        solvers need per trial voltage: evolve, then evaluate Q.
        """
        evolved = self.evolved_state(voltage, dt, s)
        return self.charge(voltage, evolved)


class DomainBank:
    """State of one ferroelectric capacitor's domain population.

    A thin single-cell view over :class:`DomainEnsemble`: all arrays are
    the ensemble's row 0, so the scalar API (and its numerics) are
    exactly the batched kernels evaluated at batch size one.

    Parameters
    ----------
    material:
        Device parameters.
    temperature_k:
        Operating temperature; scales coercive/activation voltages and
        the saturation polarization via the material's linear laws.
    rng:
        If given, coercive voltages are sampled randomly (device-to-device
        variation); otherwise deterministic quantile sampling is used.
    vc_shift:
        Additive shift (volts) applied to every coercive voltage; models
        imprint or deliberate skew in variation studies.
    """

    def __init__(self, material: FerroMaterial, *,
                 temperature_k: float | None = None,
                 rng: np.random.Generator | None = None,
                 vc_shift: float = 0.0) -> None:
        self._ensemble = DomainEnsemble(material, 1,
                                        temperature_k=temperature_k,
                                        rng=rng, vc_shift=vc_shift)

    # ------------------------------------------------------------------
    # ensemble views
    # ------------------------------------------------------------------
    @property
    def material(self) -> FerroMaterial:
        return self._ensemble.material

    @property
    def temperature_k(self) -> float:
        return self._ensemble.temperature_k

    @property
    def vc(self) -> np.ndarray:
        return self._ensemble.vc[0]

    @property
    def va(self) -> np.ndarray:
        return self._ensemble.va[0]

    @property
    def weights(self) -> np.ndarray:
        return self._ensemble.weights[0]

    @property
    def s(self) -> np.ndarray:
        return self._ensemble.s[0]

    @s.setter
    def s(self, value: np.ndarray) -> None:
        self._ensemble.s[0] = value

    def as_ensemble(self) -> DomainEnsemble:
        """The backing one-cell ensemble (state is shared, not copied)."""
        return self._ensemble

    # ------------------------------------------------------------------
    # state access
    # ------------------------------------------------------------------
    @property
    def ps(self) -> float:
        """Saturation polarization at the bank's temperature, C/m²."""
        return self._ensemble.ps

    def polarization(self, s: np.ndarray | None = None) -> float:
        """Ferroelectric polarization (C/m²) of the given/current state."""
        state = self.s if s is None else s
        return float(self._ensemble.ps * np.dot(self.weights, state))

    def set_uniform(self, s_value: float) -> None:
        """Pole every domain to ``s_value`` (must lie in [-1, 1])."""
        if not -1.0 <= s_value <= 1.0:
            raise DeviceError("domain state must lie in [-1, 1]")
        self._ensemble.s[0] = float(s_value)

    def snapshot(self) -> np.ndarray:
        """Copy of the per-domain state (for save/restore)."""
        return self.s.copy()

    def restore(self, snapshot: np.ndarray) -> None:
        if snapshot.shape != self.s.shape:
            raise DeviceError("snapshot shape mismatch")
        self.s = snapshot

    # ------------------------------------------------------------------
    # dynamics
    # ------------------------------------------------------------------
    def evolved_state(self, voltage: float, dt: float,
                      s: np.ndarray | None = None) -> np.ndarray:
        """State after holding ``voltage`` for ``dt`` (pure: no mutation)."""
        state = self.s if s is None else s
        if dt <= 0.0 or abs(voltage) < 1e-9:
            return state.copy()
        m = self.material
        return evolve_states(state, voltage, dt, self.va, m.tau0, m.merz_n)

    def apply_voltage(self, voltage: float, dt: float) -> float:
        """Hold ``voltage`` for ``dt`` seconds; returns the new P (C/m²)."""
        self.s = self.evolved_state(voltage, dt)
        return self.polarization()

    def apply_waveform(self, times: np.ndarray, voltages: np.ndarray,
                       ) -> np.ndarray:
        """Apply a sampled waveform; returns P at every sample.

        ``times`` must be increasing; the voltage over ``[t_i, t_{i+1}]``
        is taken as the midpoint of the two endpoint values.
        """
        times = np.asarray(times, dtype=float)
        voltages = np.asarray(voltages, dtype=float)
        if times.shape != voltages.shape or times.ndim != 1:
            raise DeviceError("times and voltages must be equal-length 1-D")
        p_out = np.empty_like(times)
        p_out[0] = self.polarization()
        for k in range(1, times.size):
            dt = times[k] - times[k - 1]
            if dt < 0:
                raise DeviceError("times must be non-decreasing")
            v_mid = 0.5 * (voltages[k] + voltages[k - 1])
            p_out[k] = self.apply_voltage(v_mid, dt)
        return p_out

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    def total_charge_density(self, voltage: float,
                             s: np.ndarray | None = None) -> float:
        """Total surface charge density Q/A (C/m²) at ``voltage``."""
        return float(charge_density(self.material, self.ps, self.weights,
                                    self.s if s is None else s, voltage))

    def charge(self, voltage: float, s: np.ndarray | None = None) -> float:
        """Total device charge in coulombs at ``voltage``."""
        return self.total_charge_density(voltage, s) * self.material.area

    def evolved_charges(self, voltages, dt: float) -> np.ndarray:
        """Device charge (C) at each trial voltage after evolving ``dt``.

        One vectorized call replaces a loop of ``evolved_state`` +
        ``charge`` pairs — the Newton hot path of
        :class:`~repro.ferro.fecap.FeCapacitor` evaluates all of its
        numeric-derivative trial points here at once.
        """
        v = np.asarray(voltages, dtype=float)
        m = self.material
        if dt <= 0.0:
            s = np.broadcast_to(self.s, v.shape + self.s.shape)
        else:
            s = evolve_states(self.s, v, dt, self.va, m.tau0, m.merz_n)
        return charge_density(m, self._ensemble.ps, self.weights, s,
                              v) * m.area

    def remanent_polarization(self) -> float:
        """Current P at zero volts (the hysteretic part only), C/m²."""
        return self.polarization()

    def quasi_static_loop(self, v_amplitude: float, *, n_points: int = 401,
                          period: float = 1e-3, cycles: int = 2,
                          ) -> tuple[np.ndarray, np.ndarray]:
        """Trace a polarization-voltage loop with a triangular sweep.

        Returns ``(voltages, charge_densities)`` of the final cycle, the
        quantity plotted in the paper's Fig. 4(e) (QFE vs V).  ``period``
        is the triangle period in seconds (1 ms ≈ quasi-static for both
        material presets).
        """
        if v_amplitude <= 0 or n_points < 16 or cycles < 1:
            raise DeviceError("invalid loop parameters")
        quarter = n_points // 4
        up = np.linspace(0.0, v_amplitude, quarter, endpoint=False)
        down = np.linspace(v_amplitude, -v_amplitude, 2 * quarter,
                           endpoint=False)
        back = np.linspace(-v_amplitude, 0.0, quarter, endpoint=False)
        one_cycle = np.concatenate([up, down, back])
        voltages = np.tile(one_cycle, cycles)
        times = np.arange(voltages.size) * (period / one_cycle.size)
        self.apply_waveform(times[: -one_cycle.size + 1],
                            voltages[: -one_cycle.size + 1])
        # Final cycle traced point-by-point for the returned loop.
        v_last = voltages[-one_cycle.size:]
        t_last = times[-one_cycle.size:]
        q = np.empty_like(v_last)
        prev_t = t_last[0]
        prev_v = v_last[0]
        q[0] = self.total_charge_density(prev_v)
        for k in range(1, v_last.size):
            dt = t_last[k] - prev_t
            self.apply_voltage(0.5 * (v_last[k] + prev_v), dt)
            q[k] = self.total_charge_density(v_last[k])
            prev_t, prev_v = t_last[k], v_last[k]
        return v_last, q
