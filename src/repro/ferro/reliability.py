"""Endurance, read-disturb and retention models.

The paper's reliability claims this module reproduces:

* Fig. 4(f): the fabricated MFM withstands ≥ 1e6 bipolar ±3 V / 10 µs
  cycles with stable Pr (slight wake-up early, no fatigue through 1e6).
* §II: QNRO "allows multiple reads before P_FE changes due to
  accumulative switching disturb, minimizing write-backs and enhancing
  endurance (> 1e6 cycles)".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import DeviceError
from repro.ferro.materials import FerroMaterial
from repro.ferro.preisach import DomainBank

__all__ = [
    "EnduranceModel",
    "endurance_sweep",
    "ReadDisturbTracker",
    "reads_until_disturb",
    "retention_factor",
]


@dataclass(frozen=True)
class EnduranceModel:
    """Cycling-dependent remanent-polarization factor.

    ``factor(n)`` multiplies the pristine Pr:  a wake-up term saturating
    after ``n_wakeup`` cycles, a logarithmic fatigue term past
    ``n_fatigue``, and hard breakdown at ``n_breakdown``.

    Defaults are tuned so the device is stable (within a few percent of
    its woken-up Pr) through 1e6 cycles — the paper's Fig. 4(f) claim —
    with fatigue onset beyond that.
    """

    wakeup_amplitude: float = 0.08
    n_wakeup: float = 200.0
    fatigue_rate: float = 0.06
    n_fatigue: float = 3e6
    n_breakdown: float = 1e9

    def factor(self, n_cycles: float) -> float:
        """Pr(n) / Pr(0) after ``n_cycles`` bipolar cycles."""
        if n_cycles < 0:
            raise DeviceError("cycle count must be non-negative")
        wake = 1.0 + self.wakeup_amplitude * (
            1.0 - math.exp(-n_cycles / self.n_wakeup))
        if n_cycles >= self.n_breakdown:
            return 0.0
        fatigue = 1.0
        if n_cycles > self.n_fatigue:
            fatigue = max(0.0, 1.0 - self.fatigue_rate
                          * math.log10(n_cycles / self.n_fatigue))
        return wake * fatigue

    def stable_through(self, n_cycles: float, *, tolerance: float = 0.1,
                       ) -> bool:
        """True if Pr stays within ``tolerance`` of the woken-up value."""
        woken = 1.0 + self.wakeup_amplitude
        lo = (1.0 - tolerance) * woken
        for n in np.logspace(0, math.log10(max(n_cycles, 1.0)), 40):
            if self.factor(float(n)) < lo:
                return False
        return True


def endurance_sweep(material: FerroMaterial, *,
                    model: EnduranceModel | None = None,
                    cycles: np.ndarray | None = None,
                    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pr+ / Pr- versus cycle count (the paper's Fig. 4(f) data).

    Returns ``(cycles, pr_plus, pr_minus)`` with polarization in C/m².
    """
    model = model or EnduranceModel()
    if cycles is None:
        cycles = np.logspace(0, 6, 25)
    pr0 = material.ps
    factors = np.array([model.factor(float(n)) for n in cycles])
    return np.asarray(cycles, dtype=float), pr0 * factors, -pr0 * factors


class ReadDisturbTracker:
    """Accumulates QNRO read disturb on a stored-'0' capacitor.

    Each read applies ``v_read`` for ``t_read`` to a bank that stores the
    opposing state; the weak-domain tail progressively flips, eroding the
    stored polarization.  ``margin_remaining`` reports how much of the
    original |P| is left; a write resets the accumulation — exactly the
    write-back economics the paper describes.
    """

    def __init__(self, material: FerroMaterial, *, v_read: float,
                 t_read: float, temperature_k: float | None = None) -> None:
        if t_read <= 0:
            raise DeviceError("t_read must be positive")
        self.v_read = float(v_read)
        self.t_read = float(t_read)
        self.bank = DomainBank(material, temperature_k=temperature_k)
        self.write(0 if v_read > 0 else 1)

    def write(self, bit: int) -> None:
        """(Re)write the stored bit, resetting disturb accumulation."""
        if bit not in (0, 1):
            raise DeviceError("bit must be 0 or 1")
        self.bank.set_uniform(1.0 if bit else -1.0)
        self._p_written = self.bank.polarization()
        self.reads = 0

    def read(self, n: int = 1) -> float:
        """Apply ``n`` QNRO read pulses; returns current P (C/m²)."""
        if n < 1:
            raise DeviceError("n must be >= 1")
        for _ in range(n):
            self.bank.apply_voltage(self.v_read, self.t_read)
        self.reads += n
        return self.bank.polarization()

    def margin_remaining(self) -> float:
        """|P_now| / |P_written| (1.0 = pristine, 0 = fully disturbed)."""
        p_written = abs(self._p_written)
        if p_written < 1e-12:
            return 0.0
        # Disturb moves P toward the read polarity; measure the surviving
        # fraction of the originally-written magnitude along its own sign.
        sign = math.copysign(1.0, self._p_written)
        return max(0.0, sign * self.bank.polarization() / p_written)


def reads_until_disturb(material: FerroMaterial, *, v_read: float,
                        t_read: float, margin: float = 0.5,
                        max_reads: int = 100000) -> int:
    """Number of QNRO reads before the stored-'0' margin drops below
    ``margin`` (paper: "multiple reads before P_FE changes").

    Returns ``max_reads`` if the margin survives the whole budget.
    """
    if not 0.0 < margin < 1.0:
        raise DeviceError("margin must be in (0, 1)")
    tracker = ReadDisturbTracker(material, v_read=v_read, t_read=t_read)
    # Exponential probing + local refinement keeps this O(log N) bank work.
    count = 0
    step = 1
    while count < max_reads:
        tracker.read(step)
        count += step
        if tracker.margin_remaining() < margin:
            return count
        step = min(step * 2, max_reads - count) or 1
    return max_reads


def retention_factor(material: FerroMaterial, *, time_s: float,
                     temperature_k: float = 300.0,
                     e_activation_ev: float = 1.1,
                     t0: float = 1e-2) -> float:
    """Fraction of Pr retained after ``time_s`` at ``temperature_k``.

    Thermally-activated stretched-exponential depolarization; with the
    default barrier the model retains > 95 % for 10 years at 358 K,
    consistent with the non-volatility claims for HZO FeRAM.
    """
    if time_s < 0:
        raise DeviceError("time must be non-negative")
    kb_ev = 8.617333262e-5
    # Depolarization time constant with Arrhenius temperature acceleration.
    tau = t0 * math.exp(e_activation_ev / (kb_ev * temperature_k))
    return math.exp(-((time_s / tau) ** 0.25))
