"""Ferroelectric capacitor material/device parameter sets.

Two calibrations mirror the paper's two device sources:

* :data:`NVDRAM_CAL` — the low-voltage MFM model used for the Spectre cell
  simulations, "calibrated to Micron's NVDRAM cell" (paper §III).  Writes
  complete within tens of ns at 1.5 V; QNRO reads at ~0.5-0.6 V disturb
  only the weak tail of the domain distribution.
* :data:`FAB_HZO` — the fabricated 10 nm HZO MFM capacitor of §IV:
  Pr ≈ 22.3 µC/cm², ±3 V operation, full switching in < 300 ns at 3 V,
  endurance ≥ 1e6 cycles.

All polarization densities are stored in C/m² (1 µC/cm² = 0.01 C/m²).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import DeviceError

__all__ = [
    "FerroMaterial",
    "NVDRAM_CAL",
    "FAB_HZO",
    "UC_PER_CM2",
]

#: Conversion factor: multiply a value in C/m² by this to get µC/cm².
UC_PER_CM2 = 1e2

EPS0 = 8.8541878128e-12  # F/m


@dataclass(frozen=True)
class FerroMaterial:
    """Parameters of a polycrystalline MFM ferroelectric capacitor.

    Attributes
    ----------
    name:
        Identifier used in reports.
    ps:
        Switchable (domain) polarization at saturation, C/m².  The
        remanent polarization of a fully-poled device equals ``ps``.
    vc_mean, vc_sigma:
        Mean / standard deviation of the per-domain coercive voltage
        distribution, volts (device-level, not field, so thickness is
        folded in).
    tau0:
        Attempt time of the Merz/NLS switching law, seconds.
    merz_n:
        Exponent of the Merz law ``tau = tau0 * exp((va / |V|)**merz_n)``.
    activation_scale:
        Per-domain activation voltage ``va_k = activation_scale * vc_k``.
    chi_nl:
        Amplitude of the reversible (non-hysteretic) polarization
        component ``chi_nl * tanh(V / v_nl)``, C/m².  Accounts for the
        slanted shoulders of measured loops.
    v_nl:
        Voltage scale of the reversible component, volts.
    eps_r:
        Linear relative permittivity of the film (background dielectric).
    thickness:
        Film thickness in metres.
    area:
        Capacitor area in m².
    alpha_vc:
        Linear temperature coefficient of the coercive voltage, 1/K
        (Vc decreases with T; paper Fig. 4(e)).
    alpha_ps:
        Linear temperature coefficient of ``ps``, 1/K (small: Pr is
        nearly constant over 300-390 K in Fig. 4(e)).
    t_ref:
        Reference temperature (K) at which the above are quoted.
    t_curie:
        Temperature (K) beyond which ferroelectricity is considered lost;
        used by the thermal-viability check of §VII.
    n_domains:
        Number of hysterons used to discretise the domain distribution.
    """

    name: str
    ps: float
    vc_mean: float
    vc_sigma: float
    tau0: float
    merz_n: float
    activation_scale: float
    chi_nl: float
    v_nl: float
    eps_r: float
    thickness: float
    area: float
    alpha_vc: float = 2.2e-3
    alpha_ps: float = 2.0e-4
    t_ref: float = 300.0
    t_curie: float = 700.0
    n_domains: int = 48

    def __post_init__(self) -> None:
        if self.ps <= 0 or self.vc_mean <= 0 or self.vc_sigma <= 0:
            raise DeviceError(f"{self.name}: ps, vc_mean, vc_sigma must be > 0")
        if self.tau0 <= 0 or self.merz_n <= 0 or self.activation_scale <= 0:
            raise DeviceError(f"{self.name}: invalid switching-law parameters")
        if self.thickness <= 0 or self.area <= 0 or self.eps_r <= 0:
            raise DeviceError(f"{self.name}: invalid geometry")
        if self.n_domains < 2:
            raise DeviceError(f"{self.name}: need at least 2 domains")

    # ------------------------------------------------------------------
    @property
    def linear_capacitance(self) -> float:
        """Background (dielectric) capacitance in farads."""
        return EPS0 * self.eps_r * self.area / self.thickness

    @property
    def full_switching_charge(self) -> float:
        """Charge released by a complete polarization reversal, coulombs."""
        return 2.0 * self.ps * self.area

    def vc_at(self, temperature_k: float) -> float:
        """Mean coercive voltage at ``temperature_k`` (clamped ≥ 5% of ref)."""
        factor = 1.0 - self.alpha_vc * (temperature_k - self.t_ref)
        return self.vc_mean * max(factor, 0.05)

    def ps_at(self, temperature_k: float) -> float:
        """Saturation (≈ remanent) polarization at ``temperature_k``."""
        factor = 1.0 - self.alpha_ps * (temperature_k - self.t_ref)
        return self.ps * max(factor, 0.0)

    def scaled(self, **overrides) -> "FerroMaterial":
        """Copy with the given fields replaced."""
        return replace(self, **overrides)


#: Low-voltage calibration used by the paper's Spectre cell simulations
#: (Micron NVDRAM-class MFM): 1.5 V writes in tens of ns, QNRO reads near
#: 0.5-0.6 V disturb only the weak-domain tail.
NVDRAM_CAL = FerroMaterial(
    name="nvdram-cal",
    ps=0.30,                 # 30 µC/cm²
    vc_mean=0.60,
    vc_sigma=0.20,
    tau0=2e-9,
    merz_n=2.2,
    activation_scale=3.0,
    chi_nl=0.03,             # 3 µC/cm² reversible part
    v_nl=2.0,
    eps_r=30.0,
    thickness=8e-9,
    area=1.5e-14,            # 0.015 µm²
)

#: The fabricated 10 nm HZO capacitor of §IV (probe-station scale area).
FAB_HZO = FerroMaterial(
    name="fab-hzo",
    ps=0.223,                # Pr = 22.3 µC/cm² (Fig. 4(e))
    vc_mean=1.05,
    vc_sigma=0.26,
    tau0=1.3e-8,
    merz_n=2.5,
    activation_scale=3.2,
    chi_nl=0.08,             # 8 µC/cm²: gives QFE(±3 V) ≈ ±38 µC/cm²
    v_nl=1.6,
    eps_r=30.0,
    thickness=10e-9,
    area=1e-10,              # 10 µm × 10 µm test capacitor
)
