"""Nucleation-limited switching (NLS) dynamics for ferroelectric domains.

Each domain switches toward the field direction with a voltage-dependent
characteristic time following the Merz law

    tau(V) = tau0 * exp((va / |V|) ** merz_n)

where ``va`` is the domain's activation voltage.  Integrated over a time
step the switched fraction follows first-order (KAI with beta = 1)
kinetics, ``1 - exp(-dt / tau)``.  Aggregated over a distribution of
activation voltages this reproduces the stretched, decades-wide switching
transients of polycrystalline HZO (paper Fig. 4(g,h) and the reference
Monte-Carlo model it cites).
"""

from __future__ import annotations

import numpy as np

from repro.errors import DeviceError
from repro.ferro.materials import FerroMaterial

__all__ = [
    "switching_time",
    "switched_fraction",
    "evolve_states",
    "pulse_switched_polarization",
    "minimum_full_switch_pulse",
]

#: |V| below this is treated as "no field": tau = +inf.
_V_FLOOR = 1e-6
#: Cap on the Merz exponent argument to avoid overflow.
_EXP_CAP = 600.0


def switching_time(voltage: np.ndarray | float, va: np.ndarray | float,
                   tau0: float, merz_n: float) -> np.ndarray:
    """Merz-law switching time (seconds); +inf where |V| ~ 0.

    Accepts scalars or arrays (broadcast).
    """
    v = np.abs(np.asarray(voltage, dtype=float))
    va = np.asarray(va, dtype=float)
    out = np.full(np.broadcast_shapes(v.shape, va.shape), np.inf)
    active = v > _V_FLOOR
    if np.any(active):
        arg = np.minimum((va / np.where(active, v, 1.0)) ** merz_n, _EXP_CAP)
        tau = tau0 * np.exp(arg)
        out = np.where(active, tau, np.inf)
    return out


def switched_fraction(dt: float, tau: np.ndarray | float) -> np.ndarray:
    """Fraction of remaining unswitched polarization that flips in ``dt``.

    First-order kinetics: ``1 - exp(-dt/tau)``, computed stably.
    """
    if dt < 0:
        raise DeviceError("dt must be non-negative")
    tau = np.asarray(tau, dtype=float)
    with np.errstate(divide="ignore"):
        ratio = np.where(np.isinf(tau), 0.0, dt / np.maximum(tau, 1e-300))
    return -np.expm1(-ratio)


def evolve_states(state: np.ndarray, voltage: np.ndarray | float, dt: float,
                  va: np.ndarray, tau0: float, merz_n: float) -> np.ndarray:
    """Fused NLS update: domain states after holding ``voltage`` for ``dt``.

    ``state`` and ``va`` carry the hysterons along the last axis
    (``(..., n_domains)``); ``voltage`` broadcasts against the leading
    axes, so one call advances an arbitrary batch of cells — or one cell
    at several trial voltages — in single numpy operations.  Pure: a
    fresh array is returned.

    Identical numerics to composing :func:`switching_time` and
    :func:`switched_fraction`, with the intermediate temporaries and
    per-call validation stripped out of the hot path.
    """
    state = np.asarray(state, dtype=float)
    v = np.asarray(voltage, dtype=float)[..., None]
    if dt < 0:
        raise DeviceError("dt must be non-negative")
    if dt == 0.0:
        shape = np.broadcast_shapes(state.shape, v.shape[:-1] + (1,))
        return np.broadcast_to(state, shape).copy()
    target = np.where(v > 0.0, 1.0, -1.0)
    vabs = np.abs(v)
    active = vabs > _V_FLOOR
    vsafe = np.where(active, vabs, 1.0)
    # In-place chain (the per-domain array is the only full-size buffer):
    # frac = active * -expm1(-(dt/tau0) * exp(-min((va/v)^n, CAP))).
    work = va / vsafe
    np.power(work, merz_n, out=work)
    np.minimum(work, _EXP_CAP, out=work)
    np.negative(work, out=work)
    np.exp(work, out=work)
    np.multiply(work, -(dt / tau0), out=work)
    np.expm1(work, out=work)
    np.negative(work, out=work)
    np.multiply(work, active, out=work)
    out = target - state
    np.multiply(out, work, out=out)
    np.add(out, state, out=out)
    return out


def pulse_switched_polarization(material: FerroMaterial, amplitude: float,
                                width: float, *,
                                temperature_k: float | None = None) -> float:
    """ΔP (C/m²) switched by a single pulse from full opposite saturation.

    This is the quantity plotted in the paper's Fig. 4(g,h): the device is
    reset to one polarity, then a pulse of the given ``amplitude`` (volts)
    and ``width`` (seconds) is applied; the switched polarization can reach
    ``2 * ps``.

    A quantile-sampled domain population (deterministic) is used, matching
    :class:`~repro.ferro.preisach.DomainBank` defaults.
    """
    from repro.ferro.preisach import DomainBank  # local: avoid import cycle

    bank = DomainBank(material, temperature_k=temperature_k or material.t_ref)
    sign = 1.0 if amplitude >= 0 else -1.0
    bank.set_uniform(-sign)  # fully poled against the pulse
    p_before = bank.polarization()
    bank.apply_voltage(amplitude, width)
    p_after = bank.polarization()
    return abs(p_after - p_before)


def minimum_full_switch_pulse(material: FerroMaterial, amplitude: float,
                              *, fraction: float = 0.9,
                              widths: np.ndarray | None = None) -> float:
    """Shortest pulse width that switches ≥ ``fraction`` of 2*ps.

    Scans a log-spaced width grid (1 ns .. 10 ms by default) and returns
    the first width achieving the target, or ``inf`` if none does.
    """
    if not 0.0 < fraction < 1.0:
        raise DeviceError("fraction must be in (0, 1)")
    if widths is None:
        widths = np.logspace(-9, -2, 60)
    target = fraction * 2.0 * material.ps
    for width in np.asarray(widths, dtype=float):
        if pulse_switched_polarization(material, amplitude, width) >= target:
            return float(width)
    return float("inf")
