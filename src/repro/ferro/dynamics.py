"""Nucleation-limited switching (NLS) dynamics for ferroelectric domains.

Each domain switches toward the field direction with a voltage-dependent
characteristic time following the Merz law

    tau(V) = tau0 * exp((va / |V|) ** merz_n)

where ``va`` is the domain's activation voltage.  Integrated over a time
step the switched fraction follows first-order (KAI with beta = 1)
kinetics, ``1 - exp(-dt / tau)``.  Aggregated over a distribution of
activation voltages this reproduces the stretched, decades-wide switching
transients of polycrystalline HZO (paper Fig. 4(g,h) and the reference
Monte-Carlo model it cites).
"""

from __future__ import annotations

import numpy as np

from repro.errors import DeviceError
from repro.ferro.materials import FerroMaterial

__all__ = [
    "switching_time",
    "switched_fraction",
    "pulse_switched_polarization",
    "minimum_full_switch_pulse",
]

#: |V| below this is treated as "no field": tau = +inf.
_V_FLOOR = 1e-6
#: Cap on the Merz exponent argument to avoid overflow.
_EXP_CAP = 600.0


def switching_time(voltage: np.ndarray | float, va: np.ndarray | float,
                   tau0: float, merz_n: float) -> np.ndarray:
    """Merz-law switching time (seconds); +inf where |V| ~ 0.

    Accepts scalars or arrays (broadcast).
    """
    v = np.abs(np.asarray(voltage, dtype=float))
    va = np.asarray(va, dtype=float)
    out = np.full(np.broadcast_shapes(v.shape, va.shape), np.inf)
    active = v > _V_FLOOR
    if np.any(active):
        arg = np.minimum((va / np.where(active, v, 1.0)) ** merz_n, _EXP_CAP)
        tau = tau0 * np.exp(arg)
        out = np.where(active, tau, np.inf)
    return out


def switched_fraction(dt: float, tau: np.ndarray | float) -> np.ndarray:
    """Fraction of remaining unswitched polarization that flips in ``dt``.

    First-order kinetics: ``1 - exp(-dt/tau)``, computed stably.
    """
    if dt < 0:
        raise DeviceError("dt must be non-negative")
    tau = np.asarray(tau, dtype=float)
    with np.errstate(divide="ignore"):
        ratio = np.where(np.isinf(tau), 0.0, dt / np.maximum(tau, 1e-300))
    return -np.expm1(-ratio)


def pulse_switched_polarization(material: FerroMaterial, amplitude: float,
                                width: float, *,
                                temperature_k: float | None = None) -> float:
    """ΔP (C/m²) switched by a single pulse from full opposite saturation.

    This is the quantity plotted in the paper's Fig. 4(g,h): the device is
    reset to one polarity, then a pulse of the given ``amplitude`` (volts)
    and ``width`` (seconds) is applied; the switched polarization can reach
    ``2 * ps``.

    A quantile-sampled domain population (deterministic) is used, matching
    :class:`~repro.ferro.preisach.DomainBank` defaults.
    """
    from repro.ferro.preisach import DomainBank  # local: avoid import cycle

    bank = DomainBank(material, temperature_k=temperature_k or material.t_ref)
    sign = 1.0 if amplitude >= 0 else -1.0
    bank.set_uniform(-sign)  # fully poled against the pulse
    p_before = bank.polarization()
    bank.apply_voltage(amplitude, width)
    p_after = bank.polarization()
    return abs(p_after - p_before)


def minimum_full_switch_pulse(material: FerroMaterial, amplitude: float,
                              *, fraction: float = 0.9,
                              widths: np.ndarray | None = None) -> float:
    """Shortest pulse width that switches ≥ ``fraction`` of 2*ps.

    Scans a log-spaced width grid (1 ns .. 10 ms by default) and returns
    the first width achieving the target, or ``inf`` if none does.
    """
    if not 0.0 < fraction < 1.0:
        raise DeviceError("fraction must be in (0, 1)")
    if widths is None:
        widths = np.logspace(-9, -2, 60)
    target = fraction * 2.0 * material.ps
    for width in np.asarray(widths, dtype=float):
        if pulse_switched_polarization(material, amplitude, width) >= target:
            return float(width)
    return float("inf")
