"""Temperature dependence of the ferroelectric response.

Reproduces the paper's Fig. 4(e) behaviour — coercive voltage decreases
with temperature while remanent polarization stays nearly constant over
300-390 K — and provides the §VII thermal-viability check ("operating
temperatures preserve the ferroelectric properties ... and stable
remanent polarization").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DeviceError
from repro.ferro.materials import FerroMaterial
from repro.ferro.preisach import DomainBank

__all__ = [
    "pv_loop_at_temperature",
    "loop_metrics",
    "temperature_family",
    "StabilityReport",
    "check_thermal_stability",
]


def pv_loop_at_temperature(material: FerroMaterial, temperature_k: float,
                           *, v_amplitude: float = 3.0, n_points: int = 401,
                           period: float = 1e-3,
                           ) -> tuple[np.ndarray, np.ndarray]:
    """Q_FE-V loop (C/m²) of a fresh device at ``temperature_k``."""
    if temperature_k <= 0:
        raise DeviceError("temperature must be positive kelvin")
    bank = DomainBank(material, temperature_k=temperature_k)
    return bank.quasi_static_loop(v_amplitude, n_points=n_points,
                                  period=period)


def loop_metrics(voltages: np.ndarray, charges: np.ndarray,
                 ) -> dict[str, float]:
    """Extract Pr± and Vc± from a traced loop.

    * ``pr_plus``/``pr_minus``: charge at the V = 0 crossings on the
      descending/ascending branches.
    * ``vc_plus``/``vc_minus``: voltages where the charge crosses zero.
    """
    v = np.asarray(voltages, dtype=float)
    q = np.asarray(charges, dtype=float)
    if v.shape != q.shape or v.size < 8:
        raise DeviceError("need matching arrays with >= 8 samples")
    dv = np.diff(v)
    metrics: dict[str, float] = {}
    # Remanent charge: interpolate each branch at V = 0.
    for name, direction in (("pr_minus", 1.0), ("pr_plus", -1.0)):
        best = None
        for k in range(v.size - 1):
            if dv[k] * direction <= 0:
                continue
            v0, v1 = v[k], v[k + 1]
            if v0 <= 0.0 <= v1 or v1 <= 0.0 <= v0:
                frac = -v0 / (v1 - v0) if v1 != v0 else 0.0
                best = q[k] + frac * (q[k + 1] - q[k])
        if best is None:
            raise DeviceError(f"loop does not cross V=0 for {name}")
        metrics[name] = float(best)
    # Coercive voltage: Q = 0 crossings.
    for name, direction in (("vc_plus", 1.0), ("vc_minus", -1.0)):
        best = None
        for k in range(v.size - 1):
            if dv[k] * direction <= 0:
                continue
            q0, q1 = q[k], q[k + 1]
            if q0 <= 0.0 <= q1 or q1 <= 0.0 <= q0:
                frac = -q0 / (q1 - q0) if q1 != q0 else 0.0
                best = v[k] + frac * (v[k + 1] - v[k])
        if best is None:
            raise DeviceError(f"loop does not cross Q=0 for {name}")
        metrics[name] = float(best)
    return metrics


def temperature_family(material: FerroMaterial,
                       temperatures: tuple[float, ...] = (300.0, 330.0,
                                                          360.0, 390.0),
                       *, v_amplitude: float = 3.0,
                       ) -> dict[float, dict[str, float]]:
    """Loop metrics per temperature (the paper's Fig. 4(e) family)."""
    out: dict[float, dict[str, float]] = {}
    for temp in temperatures:
        v, q = pv_loop_at_temperature(material, temp,
                                      v_amplitude=v_amplitude)
        out[float(temp)] = loop_metrics(v, q)
    return out


@dataclass(frozen=True)
class StabilityReport:
    """Outcome of the §VII thermal-viability check."""

    temperature_k: float
    pr_fraction: float
    vc_fraction: float
    below_curie: bool

    @property
    def stable(self) -> bool:
        """Ferroelectric behaviour retained: Pr within 10 %, Vc positive,
        temperature comfortably below the Curie point."""
        return (self.below_curie and self.pr_fraction >= 0.9
                and self.vc_fraction > 0.2)


def check_thermal_stability(material: FerroMaterial,
                            temperature_k: float) -> StabilityReport:
    """Evaluate ferroelectric stability at an operating temperature.

    Used with the peak temperature from :mod:`repro.thermal` to confirm
    the paper's claim that 351.88 K operation "preserves the ferroelectric
    properties ... and stable remanent polarization".
    """
    if temperature_k <= 0:
        raise DeviceError("temperature must be positive kelvin")
    pr_frac = material.ps_at(temperature_k) / material.ps
    vc_frac = material.vc_at(temperature_k) / material.vc_mean
    below_curie = temperature_k < 0.8 * material.t_curie
    return StabilityReport(temperature_k=temperature_k,
                           pr_fraction=pr_frac,
                           vc_fraction=vc_frac,
                           below_curie=below_curie)
