"""Ferroelectric device physics: multi-domain Preisach hysterons with
nucleation-limited-switching dynamics, reliability and temperature models.

This package substitutes for the Monte-Carlo polycrystalline FeCap model
the paper cites (Alessandri et al.), calibrated to the paper's two device
sources: the NVDRAM-class low-voltage cell used in its Spectre runs and
the fabricated 10 nm HZO capacitor of its measurement section.
"""

from repro.ferro.dynamics import (
    minimum_full_switch_pulse,
    pulse_switched_polarization,
    switched_fraction,
    switching_time,
)
from repro.ferro.fecap import FeCapacitor
from repro.ferro.materials import FAB_HZO, NVDRAM_CAL, UC_PER_CM2, FerroMaterial
from repro.ferro.preisach import DomainBank
from repro.ferro.reliability import (
    EnduranceModel,
    ReadDisturbTracker,
    endurance_sweep,
    reads_until_disturb,
    retention_factor,
)
from repro.ferro.thermal_response import (
    StabilityReport,
    check_thermal_stability,
    loop_metrics,
    pv_loop_at_temperature,
    temperature_family,
)

__all__ = [
    "FerroMaterial",
    "NVDRAM_CAL",
    "FAB_HZO",
    "UC_PER_CM2",
    "DomainBank",
    "FeCapacitor",
    "switching_time",
    "switched_fraction",
    "pulse_switched_polarization",
    "minimum_full_switch_pulse",
    "EnduranceModel",
    "endurance_sweep",
    "ReadDisturbTracker",
    "reads_until_disturb",
    "retention_factor",
    "pv_loop_at_temperature",
    "loop_metrics",
    "temperature_family",
    "StabilityReport",
    "check_thermal_stability",
]
