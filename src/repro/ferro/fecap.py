"""Ferroelectric capacitor as a circuit component.

Implements the charge-based backward-Euler companion model:

    i(t_{n+1}) = (Q(v_{n+1}, state') - Q_committed) / dt

where ``state'`` is the domain state evolved over the step at the trial
voltage.  The Newton linearisation uses the numerically-differentiated
effective capacitance ``dQ/dv`` (robust against the strongly nonlinear
switching term).  Domain state mutates only in ``commit``, so rejected
steps need no rollback (matching the solver's contract).
"""

from __future__ import annotations

import numpy as np

from repro.errors import DeviceError
from repro.ferro.dynamics import evolve_states
from repro.ferro.materials import FerroMaterial
from repro.ferro.preisach import DomainBank, charge_density
from repro.spice.components import Component, StampContext

__all__ = ["FeCapacitor"]

#: Voltage perturbation for the numeric dQ/dv (volts).
_DV = 1e-4


class FeCapacitor(Component):
    """MFM ferroelectric capacitor between ``node_p`` (top) and ``node_n``.

    Positive polarization corresponds to the state written by a positive
    ``v(node_p) - v(node_n)``; in the paper's convention bit '1' is the
    positive-P state (minimal switching under a positive read voltage).

    Parameters
    ----------
    material:
        Ferroelectric parameter set.
    initial_state:
        Normalized initial domain state in [-1, 1]; +1 = bit '1',
        -1 = bit '0'.  Defaults to 0 (virgin film).
    temperature_k, rng, vc_shift:
        Forwarded to :class:`~repro.ferro.preisach.DomainBank`.
    """

    def __init__(self, name: str, node_p: str, node_n: str,
                 material: FerroMaterial, *,
                 initial_state: float = 0.0,
                 temperature_k: float | None = None,
                 rng: np.random.Generator | None = None,
                 vc_shift: float = 0.0) -> None:
        super().__init__(name, (node_p, node_n))
        self.bank = DomainBank(material, temperature_k=temperature_k,
                               rng=rng, vc_shift=vc_shift)
        if initial_state:
            self.bank.set_uniform(initial_state)
        self.v_prev = 0.0
        self._q_prev = self.bank.charge(0.0)
        self._dt = 0.0

    # ------------------------------------------------------------------
    @property
    def material(self) -> FerroMaterial:
        return self.bank.material

    def polarization(self) -> float:
        """Committed ferroelectric polarization, C/m²."""
        return self.bank.polarization()

    def polarization_uc_cm2(self) -> float:
        """Committed polarization in µC/cm² (paper's unit)."""
        return self.bank.polarization() * 1e2

    def stored_bit(self) -> int:
        """Decode the committed state as a bit (P >= 0 → '1')."""
        return 1 if self.bank.polarization() >= 0.0 else 0

    def write_state(self, bit: int) -> None:
        """Force the domain state to a fully-written bit (test helper)."""
        if bit not in (0, 1):
            raise DeviceError("bit must be 0 or 1")
        self.bank.set_uniform(1.0 if bit else -1.0)
        self._q_prev = self.bank.charge(self.v_prev)

    def reset_terminal(self) -> None:
        """Re-reference the charge history to 0 V terminals.

        Called at the start of every transient run: node voltages restart
        from 0 V while the domain state persists, so the companion-model
        history must be rebased to avoid a spurious discharge transient.
        """
        self.v_prev = 0.0
        self._q_prev = self.bank.charge(0.0)

    # ------------------------------------------------------------------
    # solver interface
    # ------------------------------------------------------------------
    def begin_step(self, t: float, dt: float) -> None:
        self._dt = dt

    def _trial_charge(self, voltage: float, dt: float) -> float:
        evolved = self.bank.evolved_state(voltage, dt)
        return self.bank.charge(voltage, evolved)

    def _stamp_from_charges(self, ctx: StampContext, v: float, q0: float,
                            q_plus: float, q_minus: float) -> None:
        """Stamp the linearised companion given the trial charges."""
        i, j = self.node_index
        c_eff = max((q_plus - q_minus) / (2.0 * _DV), 1e-21)
        g = c_eff / ctx.dt
        current = (q0 - self._q_prev) / ctx.dt
        # Linearised: i(v') ~= current + g * (v' - v)
        ieq = current - g * v
        ctx.add_conductance(i, j, g)
        ctx.add_current(i, -ieq)
        ctx.add_current(j, ieq)

    def stamp(self, ctx: StampContext) -> None:
        i, j = self.node_index
        v = ctx.v(i) - ctx.v(j)
        # All three numeric-derivative trial points in one vectorized
        # evolve-and-evaluate call (the transient Newton hot path).
        q0, q_plus, q_minus = self.bank.evolved_charges(
            (v, v + _DV, v - _DV), ctx.dt)
        self._stamp_from_charges(ctx, v, q0, q_plus, q_minus)

    def commit(self, x: np.ndarray) -> None:
        i, j = self.node_index
        vi = 0.0 if i < 0 else float(x[i])
        vj = 0.0 if j < 0 else float(x[j])
        v = vi - vj
        self.bank.s = self.bank.evolved_state(v, self._dt)
        self.v_prev = v
        self._q_prev = self.bank.charge(v)

    # ------------------------------------------------------------------
    # batched stamping: all FeCaps of a netlist in one kernel call
    # ------------------------------------------------------------------
    def group_key(self):
        """FeCaps sharing device physics batch into one evaluation."""
        return (self.bank.material, self.bank.temperature_k)

    _TRIAL_OFFSETS = np.array([0.0, _DV, -_DV])

    @staticmethod
    def _group_workspace(components: list["FeCapacitor"]) -> dict:
        """Per-group scratch: constant va/weight stacks + state buffers.

        ``va`` and ``weights`` never change after bank construction, so
        they are stacked once; the state/voltage buffers are refilled
        (cheaply, per-row) on every evaluation.
        """
        first = components[0]
        ws = getattr(first, "_group_ws", None)
        if ws is None or ws["n"] != len(components):
            k = len(components)
            nd = first.bank.s.size
            ws = {
                "n": k,
                "va3": np.stack([c.bank.va for c in components])[:, None, :],
                "w3": np.stack(
                    [c.bank.weights for c in components])[:, None, :],
                "s": np.empty((k, nd)),
                "v": np.empty(k),
            }
            first._group_ws = ws
        return ws

    @staticmethod
    def _group_voltages(x: np.ndarray, components: list["FeCapacitor"],
                        ws: dict) -> np.ndarray:
        v = ws["v"]
        s = ws["s"]
        for idx, component in enumerate(components):
            i, j = component.node_index
            v[idx] = (0.0 if i < 0 else x[i]) - (0.0 if j < 0 else x[j])
            s[idx] = component.bank.s
        return v

    @staticmethod
    def stamp_group(ctx: StampContext, components: list["FeCapacitor"],
                    ) -> None:
        """One vectorized evolve-and-evaluate for every FeCap at once.

        Each capacitor contributes its three numeric-derivative trial
        voltages; the ``(n_caps, 3, n_domains)`` evolution and charge
        evaluation run as single numpy calls, then the scalar companion
        stamps are applied per device.
        """
        first = components[0]
        m = first.bank.material
        ws = FeCapacitor._group_workspace(components)
        v = FeCapacitor._group_voltages(ctx.x, components, ws)
        trials = v[:, None] + FeCapacitor._TRIAL_OFFSETS      # (k, 3)
        evolved = evolve_states(ws["s"][:, None, :], trials, ctx.dt,
                                ws["va3"], m.tau0, m.merz_n)
        q = charge_density(m, first.bank.ps, ws["w3"], evolved,
                           trials) * m.area                   # (k, 3)
        for idx, component in enumerate(components):
            q0, q_plus, q_minus = q[idx]
            component._stamp_from_charges(ctx, v[idx], q0, q_plus, q_minus)

    @staticmethod
    def commit_group(x: np.ndarray, components: list["FeCapacitor"],
                     ) -> None:
        """Batched commit: one evolution call for every FeCap at once."""
        first = components[0]
        m = first.bank.material
        ws = FeCapacitor._group_workspace(components)
        v = FeCapacitor._group_voltages(x, components, ws)
        evolved = evolve_states(ws["s"], v, first._dt,
                                ws["va3"][:, 0, :], m.tau0, m.merz_n)
        q = charge_density(m, first.bank.ps, ws["w3"][:, 0, :], evolved,
                           v) * m.area
        for idx, component in enumerate(components):
            component.bank.s = evolved[idx]
            component.v_prev = float(v[idx])
            component._q_prev = float(q[idx])
