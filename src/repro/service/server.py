"""Front-ends for :class:`~repro.service.BitwiseService`.

Two transports over the same service:

* :func:`run_repl` — a line-oriented console (``repro serve``) with
  tenant switching and column/result payload readout;
* :func:`serve_tcp` — an **asyncio** JSON-lines TCP endpoint (``repro
  serve --port N``), wire-compatible with the original threaded
  server: one JSON request object per line, one JSON response per
  line, in order.

The TCP server is a thin sync facade (:class:`QueryServer`) over an
asyncio event loop running in a dedicated thread.  Every connection's
requests flow through one central
:class:`~repro.service.scheduler.RequestScheduler`, which coalesces
concurrent queries from *all* connections into single
:meth:`~repro.service.BitwiseService.execute` vector batches inside a
small batching window, enforces per-tenant admission control, fills
batches fairly (round-robin across tenants), and serializes mutations
as per-tenant barriers.

Protocol ops (all may carry ``"tenant": "<name>"``; a connection can
also set a default namespace once via ``{"op": "hello", "tenant":
...}``):

``query``/``batch``/``match``/``explain``/``create_column``/
``drop_column``/``columns``/``stats``, plus the mutation path
``update_column``/``write_slice``/``append_rows`` and the paginated
payload readout ``bits`` (``{"op": "bits", "name": ..., "offset": N,
"limit": N}`` — ``name`` is a column or the ``key`` of a cached query
result).

A connection may opt into the **binary wire** with ``{"op": "hello",
"wire": "binary"}``: the hello response is still a JSON line, then
both directions switch to the length-prefixed ``REPB`` frames of
:mod:`repro.service.wire` — request/response metadata as compact
JSON, bulk bit payloads (``bits`` pages, ``create_column``/
``update_column``/``write_slice`` bits, ``append_rows`` values) as
raw little-endian packed words.  JSON-only clients are unaffected.
"""

from __future__ import annotations

import asyncio
import json
import sys
import threading

import numpy as np

from repro.arch.expr import Col, Match
from repro.errors import ProtocolError, QueryError, ReproError
from repro.service.scheduler import (
    AdmissionError,
    RequestScheduler,
    ShuttingDownError,
)
from repro.service.wire import (
    HEADER_SIZE,
    KIND_RESPONSE,
    decode_frame,
    decode_header,
    encode_frame,
)
from repro.service.service import (
    BitwiseService,
    MutationResult,
    QueryResult,
)

__all__ = ["run_repl", "serve_tcp", "QueryServer", "result_payload",
           "mutation_payload"]


def result_payload(result: QueryResult) -> dict:
    """JSON-safe summary of a query result (bits elided; fetch pages
    via the ``bits`` op / REPL command using the returned ``key``)."""
    return {
        "query": result.query,
        "key": result.key,
        "count": result.count,
        "cache_hit": result.cache_hit,
        "primitives_per_row": result.primitives_per_row,
        "naive_primitives_per_row": result.naive_primitives_per_row,
        "energy_nj": result.energy_j * 1e9,
        "cycles": result.cycles,
        "shards": result.shards,
    }


def mutation_payload(result: MutationResult) -> dict:
    """JSON-safe summary of a column mutation."""
    return {
        "op": result.op,
        "column": result.column,
        "offset": result.offset,
        "n_bits": result.n_bits,
        "rows_written": result.rows_written,
        "dirty_shards": result.dirty_shards,
        "energy_nj": result.energy_j * 1e9,
        "cycles": result.cycles,
        "invalidated": result.invalidated,
        "columns_written": list(result.columns_written),
    }


def _json_default(value):
    """Wire-safe conversion for non-JSON-native response values.

    Accepts exactly the numpy scalar/array types the service is known
    to emit; anything else is a server bug that must surface as a
    typed :class:`ProtocolError` (and an error response), not be
    silently stringified into the payload."""
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise ProtocolError(
        f"response value of type {type(value).__name__} is not "
        f"JSON-serializable")


def _error_payload(exc: ReproError) -> dict:
    """Typed wire shape for a service-level error (both wires).

    ``shutting_down`` wins over ``admission`` (it subclasses
    QueryError directly, but keep the order explicit); admission
    rejections attach their machine-readable ``retry_after_ms`` hint
    so clients can back off intelligently."""
    if isinstance(exc, ShuttingDownError):
        return {"ok": False, "error": str(exc),
                "code": "shutting_down"}
    if isinstance(exc, AdmissionError):
        payload = {"ok": False, "error": str(exc),
                   "code": "admission"}
        if exc.retry_after_ms is not None:
            payload["retry_after_ms"] = float(exc.retry_after_ms)
        return payload
    if isinstance(exc, ProtocolError):
        return {"ok": False, "error": str(exc), "code": "protocol"}
    if isinstance(exc, QueryError):
        return {"ok": False, "error": str(exc), "code": "query"}
    return {"ok": False, "error": str(exc)}


def _parse_bitstring(text: str) -> np.ndarray:
    if set(text) - {"0", "1"}:
        raise QueryError(
            f"bit string may only contain 0/1, got "
            f"{sorted(set(text) - {'0', '1'})}")
    return np.frombuffer(text.encode(), dtype=np.uint8) - ord("0")


# ----------------------------------------------------------------------
# REPL
# ----------------------------------------------------------------------
_HELP = """\
commands:
  col <name> random [density] [seed]   create a random column
  col <name> bits <01...>              create a column from a bit string
  cols                                 list columns
  drop <name>                          drop a column
  set <name> <01...>                   overwrite a column in place
  write <name> <offset> <01...>        overwrite a slice of a column
  append <name> <01...> [...]          append rows (named columns get
                                       the bits, others zero-fill)
  bits <name> <offset> <limit>         page a column's (or a cached
                                       result key's) payload
  tenant [<name>|-]                    switch namespace (- = default)
  query <expr>                         run a query (e.g. a & ~b | c)
  match <col,col,...> <0bkey> [0bmask] CAM search over a column group
                                       (x in the key = don't care)
  explain <expr>                       show plan cost without running
  stats                                service counters
  help                                 this text
  quit                                 exit
"""


class _Repl:
    """REPL state: the bound service plus the active tenant."""

    def __init__(self, service: BitwiseService) -> None:
        self.service = service
        self.tenant: str | None = None

    def dispatch(self, line: str) -> dict | None:
        """Execute one REPL command; None means quit."""
        service, tenant = self.service, self.tenant
        parts = line.strip().split(None, 1)
        if not parts:
            return {}
        command = parts[0].lower()
        rest = parts[1] if len(parts) > 1 else ""
        if command in ("quit", "exit"):
            return None
        if command == "help":
            return {"help": _HELP}
        if command == "tenant":
            name = rest.strip()
            self.tenant = None if name in ("", "-") else name
            if self.tenant is not None:
                service.tenant(self.tenant)  # auto-register
            return {"tenant": self.tenant}
        if command == "cols":
            return {"columns": list(service.tenant_columns(tenant)),
                    "n_bits": service.n_bits,
                    "tenant": tenant}
        if command == "stats":
            return {"stats": service.stats()}
        if command == "drop":
            service.drop_column(rest.strip(), tenant=tenant)
            return {"dropped": rest.strip()}
        if command == "col":
            args = rest.split()
            if len(args) < 2:
                raise QueryError("usage: col <name> random|bits ...")
            name, mode = args[0], args[1].lower()
            if mode == "random":
                density = float(args[2]) if len(args) > 2 else 0.5
                seed = int(args[3]) if len(args) > 3 else None
                service.random_column(name, density, seed,
                                      tenant=tenant)
            elif mode == "bits":
                if len(args) < 3:
                    raise QueryError("usage: col <name> bits <01...>")
                bits = _parse_bitstring(args[2])
                if bits.size != service.n_bits:
                    raise QueryError(
                        f"need {service.n_bits} bits, got {bits.size}")
                service.create_column(name, bits, tenant=tenant)
            else:
                raise QueryError(f"unknown col mode {mode!r}")
            return {"created": name}
        if command == "set":
            args = rest.split()
            if len(args) != 2:
                raise QueryError("usage: set <name> <01...>")
            result = service.update_column(
                args[0], _parse_bitstring(args[1]), tenant=tenant)
            return {"mutation": mutation_payload(result)}
        if command == "write":
            args = rest.split()
            if len(args) != 3:
                raise QueryError("usage: write <name> <offset> <01...>")
            result = service.write_slice(
                args[0], int(args[1]), _parse_bitstring(args[2]),
                tenant=tenant)
            return {"mutation": mutation_payload(result)}
        if command == "append":
            args = rest.split()
            if len(args) % 2 or not args:
                raise QueryError(
                    "usage: append <name> <01...> [<name> <01...> ...]")
            values = {args[i]: _parse_bitstring(args[i + 1])
                      for i in range(0, len(args), 2)}
            result = service.append_rows(values, tenant=tenant)
            return {"mutation": mutation_payload(result),
                    "n_bits": service.n_bits}
        if command == "bits":
            args = rest.split()
            if not 1 <= len(args) <= 3:
                raise QueryError("usage: bits <name> <offset> <limit>")
            offset = int(args[1]) if len(args) > 1 else 0
            limit = int(args[2]) if len(args) > 2 else 64
            return {"bits": service.read_bits(args[0], offset, limit,
                                              tenant=tenant)}
        if command == "explain":
            plan = service.compile(rest)
            return {"explain": {
                "key": plan.key, "columns": list(plan.cols),
                "primitives_per_row": plan.primitives,
                "naive_primitives_per_row": plan.naive_primitives,
            }}
        if command == "query":
            return {"result": result_payload(
                service.query(rest, tenant=tenant))}
        if command == "match":
            args = rest.split()
            if not 2 <= len(args) <= 3:
                raise QueryError(
                    "usage: match <col,col,...> <0bkey> [0bmask]")
            cols = [c for c in args[0].split(",") if c]
            expr = Match(*(Col(c) for c in cols), key=args[1],
                         mask=args[2] if len(args) > 2 else None)
            return {"result": result_payload(
                service.query(expr, tenant=tenant))}
        raise QueryError(f"unknown command {command!r} (try 'help')")


def run_repl(service: BitwiseService, in_stream=None, out_stream=None,
             *, prompt: str = "repro> ") -> int:
    """Drive the service from a line stream; returns an exit code."""
    in_stream = in_stream or sys.stdin
    out_stream = out_stream or sys.stdout
    repl = _Repl(service)

    def emit(text: str) -> None:
        print(text, file=out_stream, flush=True)

    emit(f"bitwise service: {service.technology}, "
         f"{service.n_bits} bits x {service.n_shards} shards "
         f"(type 'help')")
    while True:
        out_stream.write(prompt)
        out_stream.flush()
        line = in_stream.readline()
        if not line:
            break
        try:
            payload = repl.dispatch(line)
        except (ReproError, ValueError) as exc:
            # ValueError covers malformed numeric arguments (e.g.
            # 'col x random abc') — a typo must not kill the console.
            emit(f"error: {exc}")
            continue
        if payload is None:
            break
        if "help" in payload:
            emit(payload["help"])
        elif payload:
            emit(json.dumps(payload, indent=2, default=str))
    return 0


# ----------------------------------------------------------------------
# asyncio JSON-lines TCP server
# ----------------------------------------------------------------------
class QueryServer:
    """Async multi-tenant JSON-lines TCP server (sync facade).

    The asyncio event loop, the listening server, and the central
    :class:`RequestScheduler` live in a dedicated daemon thread;
    ``serve_forever()``/``shutdown()``/``server_close()`` keep the
    original threaded server's control surface so callers (CLI,
    tests) are unchanged.
    """

    def __init__(self, service: BitwiseService,
                 address: tuple[str, int], *,
                 batch_window_s: float = 0.001,
                 max_batch: int = 128,
                 max_pending: int = 64,
                 max_line_bytes: int = 1 << 26,
                 request_timeout_s: float | None = None,
                 injector=None,
                 drain_timeout_s: float = 5.0) -> None:
        self.service = service
        self._batch_window_s = batch_window_s
        self._max_batch = max_batch
        self._max_pending = max_pending
        self._request_timeout_s = request_timeout_s
        self._injector = injector
        self._drain_timeout_s = drain_timeout_s
        # JSON lines carry whole column payloads; the default asyncio
        # stream limit (64 KiB) truncates them mid-frame.
        self._max_line_bytes = max_line_bytes
        self._shutdown = threading.Event()
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever,
            name="query-server-loop", daemon=True)
        self._thread.start()
        future = asyncio.run_coroutine_threadsafe(
            self._start(address), self._loop)
        try:
            self.server_address: tuple = future.result(timeout=30)
        except BaseException:
            # Bind failed (port in use, permission, ...): stop the
            # loop thread instead of leaking it and the scheduler.
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10)
            self._loop.close()
            raise

    async def _start(self, address: tuple[str, int]) -> tuple:
        self.scheduler = RequestScheduler(
            self.service, window_s=self._batch_window_s,
            max_batch=self._max_batch, max_pending=self._max_pending,
            request_timeout_s=self._request_timeout_s,
            injector=self._injector)
        self.scheduler.start()
        self._conn_tasks: set[asyncio.Task] = set()
        #: live connections (task -> (writer, conn state)) so graceful
        #: shutdown can say goodbye on the right wire
        self._conns: dict[asyncio.Task, tuple] = {}
        try:
            self._server = await asyncio.start_server(
                self._handle_connection, address[0], address[1],
                limit=self._max_line_bytes)
        except BaseException:
            await self.scheduler.stop()
            raise
        return self._server.sockets[0].getsockname()[:2]

    # -- connection handling -------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        task.add_done_callback(self._conn_tasks.discard)
        # Per-connection state: default tenant namespace plus the
        # negotiated wire ("json" until a hello opts into "binary").
        conn: dict = {"tenant": None, "wire": "json"}
        self._conns[task] = (writer, conn)
        try:
            while True:
                if conn["wire"] == "binary":
                    done = await self._serve_frame_once(
                        reader, writer, conn)
                else:
                    done = await self._serve_line_once(
                        reader, writer, conn)
                if done:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            pass  # server teardown closes live connections
        finally:
            self._conns.pop(task, None)
            writer.close()

    async def _serve_line_once(self, reader, writer,
                               conn: dict) -> bool:
        """One JSON-lines request/response; True means close."""
        try:
            raw = await reader.readline()
        except ValueError:
            # Oversized line: framing is lost, close politely.
            writer.write((json.dumps({
                "ok": False,
                "error": "request line exceeds server limit",
            }) + "\n").encode())
            await writer.drain()
            return True
        if not raw:
            return True
        try:
            request = json.loads(raw.decode())
            response = await self._serve(request, conn)
        except ReproError as exc:
            response = _error_payload(exc)
        except (ValueError, KeyError, TypeError) as exc:
            response = {"ok": False,
                        "error": f"bad request: {exc}"}
        try:
            line = json.dumps(response, default=_json_default)
        except ProtocolError as exc:
            line = json.dumps({"ok": False, "error": str(exc),
                               "code": "protocol"})
        writer.write((line + "\n").encode())
        await writer.drain()
        return False

    async def _serve_frame_once(self, reader, writer,
                                conn: dict) -> bool:
        """One binary-frame request/response; True means close."""
        try:
            header_bytes = await reader.readexactly(HEADER_SIZE)
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return True  # clean EOF between frames
            raise
        try:
            header = decode_header(header_bytes)
            meta_bytes = (await reader.readexactly(header.meta_len)
                          if header.meta_len else b"")
            payload = (await reader.readexactly(header.payload_bytes)
                       if header.payload_bytes else b"")
        except ProtocolError as exc:
            # Header corruption: framing cannot be trusted, report
            # once and close.
            writer.write(encode_frame(KIND_RESPONSE, {
                "ok": False, "error": str(exc), "code": "protocol"}))
            await writer.drain()
            return True
        try:
            request, bits = decode_frame(header, meta_bytes, payload)
        except ProtocolError as exc:
            # Metadata-level violation (bad segment_bits, short
            # payload): the frame was consumed in full, so framing is
            # intact — report and keep serving the connection.
            writer.write(encode_frame(KIND_RESPONSE, {
                "ok": False, "error": str(exc), "code": "protocol"}))
            await writer.drain()
            return False
        try:
            if isinstance(bits, list):
                names = request.pop("value_names", None) or []
                if len(names) != len(bits):
                    raise ProtocolError(
                        f"{len(names)} value_names for "
                        f"{len(bits)} payload segments")
                request["values"] = dict(zip(names, bits))
            elif bits is not None:
                request["bits"] = bits
            response = await self._serve(request, conn)
        except ReproError as exc:
            response = _error_payload(exc)
        except (ValueError, KeyError, TypeError) as exc:
            response = {"ok": False, "error": f"bad request: {exc}"}
        bits_out = None
        if isinstance(response.get("bits"), np.ndarray):
            bits_out = response.pop("bits")
        try:
            frame = encode_frame(KIND_RESPONSE, response, bits_out,
                                 default=_json_default)
        except ProtocolError as exc:
            frame = encode_frame(KIND_RESPONSE, {
                "ok": False, "error": str(exc), "code": "protocol"})
        writer.write(frame)
        await writer.drain()
        return False

    async def _serve(self, request: dict, conn: dict) -> dict:
        service = self.service
        loop = asyncio.get_running_loop()
        op = request.get("op")
        tenant = request.get("tenant", conn["tenant"])
        if op == "hello":
            conn["tenant"] = request.get("tenant")
            if conn["tenant"] is not None:
                service.tenant(conn["tenant"])  # auto-register
            wire = request.get("wire", "json")
            if wire not in ("json", "binary"):
                raise QueryError(
                    f"unknown wire {wire!r} (json or binary)")
            conn["wire"] = wire
            return {"ok": True, "tenant": conn["tenant"],
                    "wire": wire,
                    "technology": service.technology,
                    "n_bits": service.n_bits,
                    "n_shards": service.n_shards}
        if op == "query":
            result = await self.scheduler.submit_query(
                tenant, request["expr"])
            return {"ok": True, **result_payload(result)}
        if op == "match":
            # CAM search; JSON clients inline key/mask as "1x0"-style
            # strings, binary clients ship them as packed payload
            # segments named "key"/"mask".
            cols = [str(c) for c in request.get("cols") or []]
            values = request.get("values") or {}
            key = request.get("key", values.get("key"))
            mask = request.get("mask", values.get("mask"))
            if key is None:
                key = request.get("bits")
            if not cols or key is None:
                raise QueryError("match needs cols and a key")
            expr = Match(*(Col(c) for c in cols), key=key, mask=mask)
            result = await self.scheduler.submit_query(
                tenant, str(expr))
            return {"ok": True, **result_payload(result)}
        if op == "batch":
            results = await self.scheduler.submit_batch(
                tenant, list(request["exprs"]))
            return {"ok": True,
                    "results": [result_payload(r) for r in results]}
        if op == "create_column":
            def create():
                if "bits" in request:
                    service.create_column(
                        request["name"], np.asarray(request["bits"]),
                        tenant=tenant)
                else:
                    service.random_column(
                        request["name"],
                        float(request.get("density", 0.5)),
                        request.get("seed"), tenant=tenant)
            await self.scheduler.submit_exclusive(tenant, create)
            return {"ok": True, "created": request["name"]}
        if op == "drop_column":
            await self.scheduler.submit_exclusive(
                tenant, lambda: service.drop_column(request["name"],
                                                    tenant=tenant))
            return {"ok": True}
        if op == "update_column":
            result = await self.scheduler.submit_exclusive(
                tenant, lambda: service.update_column(
                    request["name"], np.asarray(request["bits"]),
                    tenant=tenant))
            return {"ok": True, **mutation_payload(result)}
        if op == "write_slice":
            result = await self.scheduler.submit_exclusive(
                tenant, lambda: service.write_slice(
                    request["name"], int(request["offset"]),
                    np.asarray(request["bits"]), tenant=tenant))
            return {"ok": True, **mutation_payload(result)}
        if op == "append_rows":
            values = {name: np.asarray(bits) for name, bits in
                      dict(request.get("values") or {}).items()}
            result = await self.scheduler.submit_exclusive(
                tenant, lambda: service.append_rows(
                    values, request.get("n"), tenant=tenant))
            return {"ok": True, **mutation_payload(result),
                    "table_bits": service.n_bits}
        if op == "bits":
            # Binary connections get the page as a raw array (packed
            # straight into the response frame's payload); JSON keeps
            # the "0101..." text shape.
            read = (service.read_bits_array
                    if conn["wire"] == "binary" else service.read_bits)
            page = await self.scheduler.submit_exclusive(
                tenant, lambda: read(
                    request["name"], int(request.get("offset", 0)),
                    int(request.get("limit", 64)), tenant=tenant))
            return {"ok": True, **page}
        if op == "explain":
            plan = await loop.run_in_executor(
                None, lambda: service.compile(request["expr"]))
            return {"ok": True, "key": plan.key,
                    "columns": list(plan.cols),
                    "primitives_per_row": plan.primitives,
                    "naive_primitives_per_row": plan.naive_primitives}
        if op == "columns":
            columns = await loop.run_in_executor(
                None, lambda: list(service.tenant_columns(tenant)))
            return {"ok": True, "columns": columns}
        if op == "stats":
            stats = await loop.run_in_executor(None, service.stats)
            stats["scheduler"] = dict(self.scheduler.metrics)
            return {"ok": True, "stats": stats}
        raise QueryError(f"unknown op {op!r}")

    # -- sync control surface (wire-compatible with socketserver) ------
    def serve_forever(self) -> None:
        """Block until :meth:`shutdown` (interruptible)."""
        while not self._shutdown.wait(timeout=0.2):
            pass

    def shutdown(self) -> None:
        self._shutdown.set()

    async def _notify_shutdown(self) -> None:
        """Tell every live connection the server is going away.

        A typed ``{"code": "shutting_down"}`` error on the
        connection's negotiated wire beats an abrupt RST: retrying
        clients reconnect instead of surfacing a transport error."""
        message = {"ok": False, "error": "server shutting down",
                   "code": "shutting_down"}
        for writer, conn in list(self._conns.values()):
            try:
                if conn["wire"] == "binary":
                    writer.write(encode_frame(KIND_RESPONSE, message))
                else:
                    writer.write(
                        (json.dumps(message) + "\n").encode())
                await writer.drain()
                writer.close()
            except (ConnectionError, RuntimeError, OSError):
                pass

    def server_close(self) -> None:
        """Graceful teardown: stop accepting, drain in-flight batches,
        notify connections, then (if durable) flush the WAL and write
        a final snapshot."""
        self._shutdown.set()
        if self._loop.is_closed():
            return

        async def teardown():
            self._server.close()            # stop accepting
            self.scheduler.begin_drain()    # reject new submissions
            await self.scheduler.drain(self._drain_timeout_s)
            await self._notify_shutdown()
            await self.scheduler.stop()
            await self._server.wait_closed()
            for task in list(self._conn_tasks):
                task.cancel()
            if self._conn_tasks:
                await asyncio.gather(*self._conn_tasks,
                                     return_exceptions=True)

        try:
            asyncio.run_coroutine_threadsafe(
                teardown(), self._loop).result(timeout=10)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10)
            self._loop.close()
            manager = getattr(self.service, "_durability", None)
            if manager is not None:
                try:
                    manager.flush()
                    self.service.checkpoint()
                except ReproError:
                    pass  # keep teardown robust; WAL already flushed


def serve_tcp(service: BitwiseService, port: int,
              host: str = "127.0.0.1", *,
              batch_window_s: float = 0.001,
              max_batch: int = 128,
              max_pending: int = 64,
              request_timeout_s: float | None = None,
              injector=None,
              drain_timeout_s: float = 5.0) -> QueryServer:
    """Bind a :class:`QueryServer`; caller runs ``serve_forever()``."""
    return QueryServer(service, (host, port),
                       batch_window_s=batch_window_s,
                       max_batch=max_batch, max_pending=max_pending,
                       request_timeout_s=request_timeout_s,
                       injector=injector,
                       drain_timeout_s=drain_timeout_s)
