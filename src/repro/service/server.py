"""Front-ends for :class:`~repro.service.BitwiseService`.

Two thin transports over the same service:

* :func:`run_repl` — a line-oriented console (``repro serve``);
* :func:`serve_tcp` — a JSON-lines TCP endpoint (``repro serve
  --port N``), one request object per line, threaded per connection.

Both only speak to the public service API, so they are equally usable
programmatically (the tests drive the REPL through ``io.StringIO`` and
the TCP server through a socket).
"""

from __future__ import annotations

import json
import socketserver
import sys

import numpy as np

from repro.errors import QueryError, ReproError
from repro.service.service import BitwiseService, QueryResult

__all__ = ["run_repl", "serve_tcp", "result_payload"]

_HELP = """\
commands:
  col <name> random [density] [seed]   create a random column
  col <name> bits <01...>              create a column from a bit string
  cols                                 list columns
  drop <name>                          drop a column
  query <expr>                         run a query (e.g. a & ~b | c)
  explain <expr>                       show plan cost without running
  stats                                service counters
  help                                 this text
  quit                                 exit
"""


def result_payload(result: QueryResult) -> dict:
    """JSON-safe summary of a query result (bits elided)."""
    return {
        "query": result.query,
        "key": result.key,
        "count": result.count,
        "cache_hit": result.cache_hit,
        "primitives_per_row": result.primitives_per_row,
        "naive_primitives_per_row": result.naive_primitives_per_row,
        "energy_nj": result.energy_j * 1e9,
        "cycles": result.cycles,
        "shards": result.shards,
    }


def _dispatch(service: BitwiseService, line: str) -> dict | None:
    """Execute one REPL command; None means quit."""
    parts = line.strip().split(None, 1)
    if not parts:
        return {}
    command, rest = parts[0].lower(), parts[1] if len(parts) > 1 else ""
    if command in ("quit", "exit"):
        return None
    if command == "help":
        return {"help": _HELP}
    if command == "cols":
        return {"columns": list(service.columns),
                "n_bits": service.n_bits}
    if command == "stats":
        return {"stats": service.stats()}
    if command == "drop":
        service.drop_column(rest.strip())
        return {"dropped": rest.strip()}
    if command == "col":
        args = rest.split()
        if len(args) < 2:
            raise QueryError("usage: col <name> random|bits ...")
        name, mode = args[0], args[1].lower()
        if mode == "random":
            density = float(args[2]) if len(args) > 2 else 0.5
            seed = int(args[3]) if len(args) > 3 else None
            service.random_column(name, density, seed)
        elif mode == "bits":
            if len(args) < 3:
                raise QueryError("usage: col <name> bits <01...>")
            if set(args[2]) - {"0", "1"}:
                raise QueryError(
                    f"bit string may only contain 0/1, got "
                    f"{sorted(set(args[2]) - {'0', '1'})}")
            bits = np.frombuffer(args[2].encode(), dtype=np.uint8) - ord("0")
            if bits.size != service.n_bits:
                raise QueryError(
                    f"need {service.n_bits} bits, got {bits.size}")
            service.create_column(name, bits)
        else:
            raise QueryError(f"unknown col mode {mode!r}")
        return {"created": name}
    if command == "explain":
        plan = service.compile(rest)
        return {"explain": {
            "key": plan.key, "columns": list(plan.cols),
            "primitives_per_row": plan.primitives,
            "naive_primitives_per_row": plan.naive_primitives,
        }}
    if command == "query":
        return {"result": result_payload(service.query(rest))}
    raise QueryError(f"unknown command {command!r} (try 'help')")


def run_repl(service: BitwiseService, in_stream=None, out_stream=None,
             *, prompt: str = "repro> ") -> int:
    """Drive the service from a line stream; returns an exit code."""
    in_stream = in_stream or sys.stdin
    out_stream = out_stream or sys.stdout

    def emit(text: str) -> None:
        print(text, file=out_stream, flush=True)

    emit(f"bitwise service: {service.technology}, "
         f"{service.n_bits} bits x {service.n_shards} shards "
         f"(type 'help')")
    while True:
        out_stream.write(prompt)
        out_stream.flush()
        line = in_stream.readline()
        if not line:
            break
        try:
            payload = _dispatch(service, line)
        except (ReproError, ValueError) as exc:
            # ValueError covers malformed numeric arguments (e.g.
            # 'col x random abc') — a typo must not kill the console.
            emit(f"error: {exc}")
            continue
        if payload is None:
            break
        if "help" in payload:
            emit(payload["help"])
        elif payload:
            emit(json.dumps(payload, indent=2, default=str))
    return 0


class _QueryHandler(socketserver.StreamRequestHandler):
    """One JSON request per line; one JSON response per line."""

    def handle(self) -> None:
        service: BitwiseService = self.server.service  # type: ignore
        for raw in self.rfile:
            try:
                request = json.loads(raw.decode())
                response = self._serve(service, request)
            except ReproError as exc:
                response = {"ok": False, "error": str(exc)}
            except (ValueError, KeyError, TypeError) as exc:
                response = {"ok": False, "error": f"bad request: {exc}"}
            self.wfile.write((json.dumps(response, default=str)
                              + "\n").encode())
            self.wfile.flush()

    @staticmethod
    def _serve(service: BitwiseService, request: dict) -> dict:
        op = request.get("op")
        if op == "query":
            result = service.query(request["expr"])
            return {"ok": True, **result_payload(result)}
        if op == "batch":
            results = service.execute(list(request["exprs"]))
            return {"ok": True,
                    "results": [result_payload(r) for r in results]}
        if op == "create_column":
            if "bits" in request:
                service.create_column(request["name"],
                                      np.asarray(request["bits"]))
            else:
                service.random_column(request["name"],
                                      float(request.get("density", 0.5)),
                                      request.get("seed"))
            return {"ok": True, "created": request["name"]}
        if op == "drop_column":
            service.drop_column(request["name"])
            return {"ok": True}
        if op == "columns":
            return {"ok": True, "columns": list(service.columns)}
        if op == "stats":
            return {"ok": True, "stats": service.stats()}
        raise QueryError(f"unknown op {op!r}")


class QueryServer(socketserver.ThreadingTCPServer):
    """Threaded JSON-lines TCP server bound to a BitwiseService."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, service: BitwiseService,
                 address: tuple[str, int]) -> None:
        super().__init__(address, _QueryHandler)
        self.service = service


def serve_tcp(service: BitwiseService, port: int,
              host: str = "127.0.0.1") -> QueryServer:
    """Bind a :class:`QueryServer`; caller runs ``serve_forever()``."""
    return QueryServer(service, (host, port))
