"""Columnar packed-word storage for the vectorized query backend.

The reference service keeps every column as per-shard engine-resident
:class:`~repro.arch.bank.BitVector` handles; the vectorized executor
instead holds each named column as **one contiguous packed-``uint64``
matrix** of shape ``(n_shards, words_per_shard)``.  A compiled query
then advances *all* shards together: each plan step is a single
``np.bitwise_*(..., out=)`` kernel over the whole 2-D matrix — no
per-shard Python dispatch, no locks, and numpy releases the GIL for the
duration of every kernel.

Matrices are populated at ``create_column`` and shared zero-copy with
query execution (programs only ever *read* column matrices; all writes
target scratch registers from the :class:`MatrixPool`).  Mutations
rebind a column to a freshly packed matrix (:meth:`ColumnStore.set`,
copy-on-write), so a query holding a :meth:`ColumnStore.snapshot`
keeps serving a consistent pre-mutation view.

Shard geometry is word-aligned and identical to the reference backend's
(:func:`shard_spans`), so results sliced per shard are bit-for-bit the
same on both paths.  Rows beyond a shard's valid span are zero in
column matrices and masked out of reductions (:meth:`ColumnStore.
popcounts` applies the precomputed validity mask), so padding garbage
produced by NOT-like kernels never leaks into counts or readouts.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.errors import QueryError

__all__ = ["ColumnStore", "MatrixPool", "PackedBits", "shard_spans",
           "popcount_words", "dirty_word_indices"]

WORD_BITS = 64


def dirty_word_indices(old_bits: np.ndarray, new_bits: np.ndarray,
                       lo: int, hi: int) -> np.ndarray:
    """Indices of 64-bit words whose value differs inside ``[lo, hi)``.

    ``old_bits``/``new_bits`` are full-width flat 0/1 arrays; only the
    word-aligned region covering ``[lo, hi)`` is compared, so a
    mutation is charged exactly the rows whose content actually
    changed (rewriting identical data dirties nothing).
    """
    lo_w = lo // WORD_BITS
    hi_w = (hi + WORD_BITS - 1) // WORD_BITS
    start, stop = lo_w * WORD_BITS, min(hi_w * WORD_BITS, old_bits.size)
    changed = old_bits[start:stop] != new_bits[start:stop]
    if changed.size % WORD_BITS:
        changed = np.concatenate([
            changed, np.zeros(WORD_BITS - changed.size % WORD_BITS,
                              dtype=bool)])
    words = changed.reshape(-1, WORD_BITS).any(axis=1)
    return lo_w + np.flatnonzero(words)


def shard_spans(n_bits: int, n_shards: int) -> list[tuple[int, int]]:
    """Word-aligned contiguous shard spans covering ``n_bits``.

    Widths below ``64 * n_shards`` use fewer shards (one word is the
    minimum shard); spans differ by at most one word.
    """
    n_words = (n_bits + WORD_BITS - 1) // WORD_BITS
    n_shards = min(n_shards, n_words)
    base, extra = divmod(n_words, n_shards)
    spans = []
    start = 0
    for index in range(n_shards):
        words = base + (1 if index < extra else 0)
        stop = min(start + words * WORD_BITS, n_bits)
        spans.append((start, stop))
        start = stop
    return spans


def popcount_words(words: np.ndarray) -> np.ndarray:
    """Per-element popcount of a uint64 array (vectorized)."""
    if hasattr(np, "bitwise_count"):  # numpy >= 2.0
        return np.bitwise_count(words)
    # Fallback: byte-level table via unpackbits is still one C call.
    flat = np.ascontiguousarray(words).view(np.uint8)
    bits = np.unpackbits(flat).reshape(words.size, 8 * words.dtype.itemsize)
    return bits.sum(axis=1, dtype=np.int64).reshape(words.shape)


class MatrixPool:
    """Thread-safe pool of scratch ``(n_shards, words)`` uint64 matrices.

    The vectorized executor churns through a handful of intermediate
    matrices per query; pooling them keeps steady-state traffic
    allocation-free.  The pool is capped (like the engines' payload
    scratch pool) so a long-lived service cannot grow it without bound.
    """

    def __init__(self, shape: tuple[int, int], *, cap: int = 16) -> None:
        self.shape = tuple(shape)
        self.cap = int(cap)
        self._free: list[np.ndarray] = []
        self._lock = threading.Lock()
        #: take() served from the free list
        self.hits = 0
        #: take() that had to allocate a fresh matrix
        self.misses = 0
        #: give() dropped because the pool was at capacity
        self.evictions = 0
        #: give() accepted back into the free list
        self.returns = 0

    def take(self) -> np.ndarray:
        with self._lock:
            if self._free:
                self.hits += 1
                return self._free.pop()
            self.misses += 1
        return np.empty(self.shape, dtype=np.uint64)

    def give(self, matrix: np.ndarray | None) -> None:
        if matrix is None or matrix.shape != self.shape:
            return
        with self._lock:
            if len(self._free) < self.cap:
                self._free.append(matrix)
                self.returns += 1
            else:
                self.evictions += 1

    def stats(self) -> dict[str, int]:
        """Counter snapshot (hit/miss/evict/return plus free size)."""
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "evictions": self.evictions, "returns": self.returns,
                    "free": len(self._free)}

    def give_unique(self, matrices) -> None:
        """Return matrices, de-duplicated by identity.

        A multi-output program may bind several output names to one
        matrix (their final values coincide in the optimized graph);
        donating it twice would hand the same buffer to two takers.
        """
        seen: list[np.ndarray] = []
        for matrix in matrices:
            if matrix is not None and \
                    not any(matrix is other for other in seen):
                seen.append(matrix)
                self.give(matrix)

    def __len__(self) -> int:
        with self._lock:
            return len(self._free)


class PackedBits:
    """Deferred readout of a result matrix (8x smaller than flat bits).

    Query results carry one of these instead of an eagerly unpacked
    0/1 array: benchmarks and counting clients never pay the unpack,
    while ``.bits`` consumers materialize on first access.  The logical
    width is captured at execution time, so results stay stable across
    later row appends.  :meth:`unpack` returns a **fresh** array every
    call — holders sharing one ``PackedBits`` each get their own copy.
    """

    __slots__ = ("store", "matrix", "n_bits")

    def __init__(self, store: ColumnStore, matrix: np.ndarray) -> None:
        self.store = store
        self.matrix = matrix
        self.n_bits = store.n_bits

    def unpack(self) -> np.ndarray:
        return self.store.unpack(self.matrix, self.n_bits)


class ColumnStore:
    """Named bit columns as packed ``(n_shards, words_per_shard)`` planes.

    Parameters
    ----------
    n_bits:
        Logical table width; every column holds this many bits.
    n_shards:
        Requested shard count (clamped to the word count like the
        reference backend).
    capacity:
        Physical table width the shard geometry is laid out over
        (default: ``n_bits``).  The logical width may later grow up to
        the capacity via :meth:`resize` (row appends) without
        re-sharding — bits beyond ``n_bits`` are zero in every column
        matrix and masked out of reductions.
    """

    def __init__(self, n_bits: int, n_shards: int, *,
                 capacity: int | None = None) -> None:
        if n_bits <= 0:
            raise QueryError("table width must be positive")
        self.capacity = int(capacity if capacity is not None else n_bits)
        if self.capacity < n_bits:
            raise QueryError(
                f"capacity {self.capacity} < table width {n_bits}")
        self.spans = shard_spans(self.capacity, n_shards)
        self.n_shards = len(self.spans)
        #: valid packed words per shard (tail shard may be partial)
        self.shard_words = [
            (stop - start + WORD_BITS - 1) // WORD_BITS
            for start, stop in self.spans
        ]
        self.words_per_shard = max(self.shard_words)
        self.shape = (self.n_shards, self.words_per_shard)
        self._matrices: dict[str, np.ndarray] = {}
        # Uniform layout (every shard holds a full words_per_shard run):
        # the matrix rows concatenate into one contiguous word stream,
        # so readouts reduce to a single unpackbits over the matrix.
        self._uniform = all(words == self.words_per_shard
                            for words in self.shard_words)
        self.resize(int(n_bits))

    def resize(self, n_bits: int) -> None:
        """Set the logical width (grows toward capacity on appends).

        Column matrices are already zero beyond the old width, so only
        the validity mask needs rebuilding; callers write appended
        values afterwards via :meth:`set`.
        """
        if not 0 < n_bits <= self.capacity:
            raise QueryError(
                f"logical width {n_bits} outside (0, {self.capacity}]")
        self.n_bits = int(n_bits)
        # Validity mask: 1-bits exactly at positions holding table bits.
        self._mask = self._pack(np.ones(self.n_bits, dtype=np.uint8))
        self._full = self._uniform and self.n_bits == \
            self.n_shards * self.words_per_shard * WORD_BITS

    # ------------------------------------------------------------------
    # packing / unpacking
    # ------------------------------------------------------------------
    def _pack(self, bits: np.ndarray) -> np.ndarray:
        """Pack a flat 0/1 array into the sharded word matrix."""
        bits = np.asarray(bits).astype(np.uint8)
        if bits.ndim != 1 or bits.size != self.n_bits:
            raise QueryError(
                f"need a flat array of {self.n_bits} bits, got shape "
                f"{bits.shape}")
        n_words = (self.capacity + WORD_BITS - 1) // WORD_BITS
        padded = np.zeros(n_words * WORD_BITS, dtype=np.uint8)
        padded[: self.n_bits] = bits
        words = np.packbits(padded, bitorder="little").view(np.uint64)
        matrix = np.zeros(self.shape, dtype=np.uint64)
        for index, (start, _) in enumerate(self.spans):
            count = self.shard_words[index]
            first = start // WORD_BITS
            matrix[index, :count] = words[first:first + count]
        return matrix

    def unpack(self, matrix: np.ndarray,
               n_bits: int | None = None) -> np.ndarray:
        """Flat 0/1 readout of a result matrix (valid bits only).

        ``n_bits`` overrides the store's *current* logical width —
        deferred readouts (:class:`PackedBits`) pass the width captured
        at execution time, so a later row append cannot change what an
        already-computed result reads back as.
        """
        if n_bits is None:
            n_bits = self.n_bits
        if self._uniform and matrix.flags.c_contiguous:
            # Rows concatenate into one contiguous word stream: one
            # unpackbits, sliced to the table width.
            return np.unpackbits(matrix.view(np.uint8),
                                 bitorder="little")[:n_bits]
        out = np.empty(n_bits, dtype=np.uint8)
        for index, (start, stop) in enumerate(self.spans):
            stop = min(stop, n_bits)
            if stop <= start:
                break
            count = self.shard_words[index]
            bits = np.unpackbits(
                matrix[index, :count].view(np.uint8), bitorder="little")
            out[start:stop] = bits[: stop - start]
        return out

    def popcounts(self, matrix: np.ndarray) -> np.ndarray:
        """Per-shard popcount of a result matrix (masked, vectorized)."""
        if not self._full:  # mask padding / tail garbage out
            matrix = np.bitwise_and(matrix, self._mask)
        return popcount_words(matrix).sum(axis=1, dtype=np.int64)

    def match(self, names, key, mask=None, *,
              out: np.ndarray | None = None) -> np.ndarray:
        """One-pass CAM search of a key against a column group.

        Treats the columns in ``names`` as bit positions of row-major
        records (record *i* = bit *i* of each column) and returns the
        packed hit matrix: bit *i* is 1 when every cared column equals
        its key bit.  ``key``/``mask`` follow the positional convention
        of :class:`repro.arch.expr.Match` (``mask`` bit 1 = compare;
        a key bit masked out is ignored).  The whole search is an
        AND-fold of ``np.bitwise_*`` kernels over the packed matrices —
        no per-row work, one pass over each cared column.
        """
        from repro.arch.expr import _parse_key_bits

        names = list(names)
        key, care = _parse_key_bits(key, len(names), what="key")
        if mask is not None:
            mbits, _ = _parse_key_bits(mask, len(names), what="mask",
                                       allow_x=False)
            care = tuple(c & m for c, m in zip(care, mbits))
        literals = [(self.matrix(name), k)
                    for name, k, m in zip(names, key, care) if m]
        if out is None:
            out = np.empty(self.shape, dtype=np.uint64)
        if not literals:  # all-masked key matches every record
            out.fill(np.uint64(0xFFFFFFFFFFFFFFFF))
            return out
        first, k0 = literals[0]
        if k0:
            np.copyto(out, first)
        else:
            np.bitwise_not(first, out=out)
        scratch = None
        for matrix, k in literals[1:]:
            if k:
                np.bitwise_and(out, matrix, out=out)
            else:
                if scratch is None:
                    scratch = np.empty(self.shape, dtype=np.uint64)
                np.bitwise_not(matrix, out=scratch)
                np.bitwise_and(out, scratch, out=out)
        return out

    # ------------------------------------------------------------------
    # column management
    # ------------------------------------------------------------------
    def add(self, name: str, bits: np.ndarray) -> None:
        if name in self._matrices:
            raise QueryError(f"column {name!r} already exists")
        self._matrices[name] = self._pack(bits)

    def set(self, name: str, bits: np.ndarray) -> None:
        """Rebind a column to a freshly packed matrix (copy-on-write).

        The old matrix is never written in place: queries holding a
        :meth:`snapshot` keep serving the pre-mutation table view.
        """
        if name not in self._matrices:
            raise QueryError(f"no column {name!r}")
        self._matrices[name] = self._pack(bits)

    def drop(self, name: str) -> None:
        if name not in self._matrices:
            raise QueryError(f"no column {name!r}")
        del self._matrices[name]

    def matrix(self, name: str) -> np.ndarray:
        try:
            return self._matrices[name]
        except KeyError:
            raise QueryError(f"no column {name!r}") from None

    def bits(self, name: str) -> np.ndarray:
        return self.unpack(self.matrix(name))

    def snapshot(self) -> dict[str, np.ndarray]:
        """Point-in-time binding of every column to its matrix.

        Matrices are immutable once created, so a query holding a
        snapshot keeps serving a consistent table view even if columns
        are concurrently dropped/recreated (the service's generation
        guard keeps such results out of the cache).
        """
        return dict(self._matrices)

    def __contains__(self, name: str) -> bool:
        return name in self._matrices

    def __len__(self) -> int:
        return len(self._matrices)
