"""Length-prefixed binary frames for bulk bit payloads.

The JSON-lines protocol ships column payloads as JSON integer arrays
— ~5 bytes of text per bit plus a parse on each side.  For bulk ops
(``bits``, ``write_slice``, ``append_rows``, functional
``create_column``/``update_column``) the binary wire packs the same
bits 64 per uint64 word, little-endian, after a fixed 24-byte header:

.. code-block:: text

    offset  size  field
    ------  ----  --------------------------------------------------
        0     4   magic  b"REPB"
        4     1   version (currently 1)
        5     1   kind    (1 = request, 2 = response)
        6     2   flags   (reserved, 0)
        8     8   n_bits  total logical bits in the payload (u64 LE)
       16     4   meta_len     bytes of UTF-8 JSON metadata (u32 LE)
       20     4   payload_words  uint64 words following meta (u32 LE)
    ------  ----  --------------------------------------------------
       24          meta: UTF-8 JSON object (op, name, offset, ...)
    24+meta        payload: payload_words * 8 bytes of raw LE words

Bits pack with :func:`numpy.packbits` (``bitorder="little"``) so bit
*i* of the logical column is bit ``i % 8`` of payload byte ``i // 8``
— the same order :class:`~repro.service.columnstore.ColumnStore` uses
internally, making server-side decode a straight ``frombuffer``.

Multi-segment payloads (``append_rows`` with several columns) carry a
``"segment_bits": [n0, n1, ...]`` list in the metadata; each segment
is padded independently to a word boundary so segment offsets stay
word-aligned.  The decoder treats ``segment_bits`` as untrusted: each
count must be a non-negative integer, the counts must sum to the
header's ``n_bits``, and the padded widths must cover the payload
exactly — anything else raises :class:`ProtocolError`.

A connection starts in JSON-lines and opts in per-connection via
``{"op": "hello", "wire": "binary"}`` — the hello response is still a
JSON line, then both directions switch to frames.  Structural
violations (bad magic, unsupported version, truncated payload,
oversized frame) raise :class:`~repro.errors.ProtocolError`.
"""

from __future__ import annotations

import json
import struct
from typing import NamedTuple

import numpy as np

from repro.errors import ProtocolError

__all__ = [
    "MAGIC", "VERSION", "KIND_REQUEST", "KIND_RESPONSE",
    "HEADER", "HEADER_SIZE", "MAX_FRAME_BYTES", "FrameHeader",
    "pack_bits", "unpack_bits", "encode_frame", "decode_header",
    "decode_frame", "read_frame_async",
]

MAGIC = b"REPB"
VERSION = 1
KIND_REQUEST = 1
KIND_RESPONSE = 2

#: magic | version | kind | flags | n_bits | meta_len | payload_words
HEADER = struct.Struct("<4sBBHQII")
HEADER_SIZE = HEADER.size  # 24

#: hard cap on meta + payload per frame (guards a hostile header from
#: driving an unbounded allocation before the read even starts).
MAX_FRAME_BYTES = 1 << 28


class FrameHeader(NamedTuple):
    kind: int
    flags: int
    n_bits: int
    meta_len: int
    payload_bytes: int


def _words_for(n_bits: int) -> int:
    return (int(n_bits) + 63) // 64


def _pack_segment(bits) -> tuple[np.ndarray, int, int]:
    """``(packed bytes array, n_bits, word-padded size)`` for one
    segment.  :func:`numpy.packbits` binarizes (any nonzero counts as
    a set bit), so no clamp pass is needed; padding is NOT
    materialized — callers write into zero-filled buffers where the
    pad comes for free.
    """
    arr = np.asarray(bits, dtype=np.uint8)
    if arr.ndim != 1:
        arr = arr.ravel()
    packed = np.packbits(arr, bitorder="little")
    return packed, int(arr.size), _words_for(arr.size) * 8


def pack_bits(bits) -> tuple[bytes, int]:
    """Pack a 0/1 array into word-padded little-endian bytes.

    Returns ``(payload, n_bits)``; the payload is padded with zero
    bits to a multiple of 8 bytes (one uint64 word).
    """
    packed, n_bits, padded = _pack_segment(bits)
    if packed.size == padded:
        return packed.tobytes(), n_bits
    out = bytearray(padded)
    out[:packed.size] = packed.data
    return bytes(out), n_bits


def unpack_bits(payload: bytes, n_bits: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: payload bytes -> 0/1 uint8 array."""
    n_bits = int(n_bits)
    if len(payload) * 8 < n_bits:
        raise ProtocolError(
            f"frame payload holds {len(payload) * 8} bits, "
            f"header claims {n_bits}")
    raw = np.frombuffer(payload, dtype=np.uint8)
    return np.unpackbits(raw, count=n_bits, bitorder="little")


def encode_frame(kind: int, meta: dict, bits=None, *,
                 default=None) -> bytes:
    """Encode one frame.

    ``bits`` may be ``None`` (no payload), a single 0/1 array, or a
    list of arrays (multi-segment; per-segment widths are recorded in
    the metadata as ``"segment_bits"``).  ``default`` is forwarded to
    :func:`json.dumps` for the metadata; a metadata object that still
    fails to serialize raises :class:`ProtocolError`.
    """
    if bits is None:
        parts = []
    elif isinstance(bits, (list, tuple)) and bits and all(
            np.ndim(segment) == 0 for segment in bits):
        # A flat list of scalar bits is ONE logical array, not a run
        # of one-bit segments.
        parts = [_pack_segment(bits)]
    elif isinstance(bits, (list, tuple)):
        parts = [_pack_segment(segment) for segment in bits]
        meta = dict(meta)
        meta["segment_bits"] = [count for _, count, _ in parts]
    else:
        parts = [_pack_segment(bits)]
    n_bits = sum(count for _, count, _ in parts)
    payload_len = sum(padded for _, _, padded in parts)
    try:
        meta_bytes = json.dumps(
            meta, separators=(",", ":"),
            default=default).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ProtocolError(
            f"frame metadata is not JSON-serializable: {exc}") from exc
    if len(meta_bytes) + payload_len > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(meta_bytes) + payload_len} bytes exceeds "
            f"the {MAX_FRAME_BYTES}-byte limit")
    # One zero-filled buffer for the whole frame: header packs in
    # place, meta and packed segments copy in once, and word padding
    # between segments is already zero — no intermediate joins.
    frame = bytearray(HEADER_SIZE + len(meta_bytes) + payload_len)
    HEADER.pack_into(frame, 0, MAGIC, VERSION, int(kind), 0, n_bits,
                     len(meta_bytes), payload_len // 8)
    frame[HEADER_SIZE:HEADER_SIZE + len(meta_bytes)] = meta_bytes
    offset = HEADER_SIZE + len(meta_bytes)
    for packed, _, padded in parts:
        frame[offset:offset + packed.size] = packed.data
        offset += padded
    return bytes(frame)


def decode_header(data: bytes) -> FrameHeader:
    """Validate and decode a 24-byte frame header."""
    if len(data) != HEADER_SIZE:
        raise ProtocolError(
            f"frame header needs {HEADER_SIZE} bytes, got {len(data)}")
    magic, version, kind, flags, n_bits, meta_len, words = \
        HEADER.unpack(data)
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r}")
    if version != VERSION:
        raise ProtocolError(
            f"unsupported wire version {version} (speak {VERSION})")
    if kind not in (KIND_REQUEST, KIND_RESPONSE):
        raise ProtocolError(f"unknown frame kind {kind}")
    if meta_len + words * 8 > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {meta_len + words * 8} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit")
    return FrameHeader(kind, flags, n_bits, meta_len, words * 8)


def decode_frame(header: FrameHeader, meta_bytes: bytes,
                 payload: bytes) -> tuple[dict, object]:
    """Decode meta + payload bytes read after :func:`decode_header`.

    Returns ``(meta, bits)`` where ``bits`` is ``None`` (no payload),
    one 0/1 array, or — when the metadata carries ``segment_bits`` —
    a list of arrays.  The ``segment_bits`` key is consumed.
    """
    try:
        meta = json.loads(meta_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad frame metadata: {exc}") from exc
    if not isinstance(meta, dict):
        raise ProtocolError("frame metadata must be a JSON object")
    segments = meta.pop("segment_bits", None)
    if segments is not None:
        if not isinstance(segments, list):
            raise ProtocolError(
                "segment_bits must be a list of bit counts, got "
                f"{type(segments).__name__}")
        for count in segments:
            if isinstance(count, bool) or not isinstance(count, int):
                raise ProtocolError(
                    f"segment_bits count {count!r} is not an integer")
            if count < 0:
                raise ProtocolError(
                    f"segment_bits count {count} is negative")
        if sum(segments) != header.n_bits:
            raise ProtocolError(
                f"segment widths sum to {sum(segments)} bits, "
                f"header claims {header.n_bits}")
        bits, offset = [], 0
        for count in segments:
            size = _words_for(count) * 8
            bits.append(unpack_bits(
                payload[offset:offset + size], count))
            offset += size
        if offset != len(payload):
            raise ProtocolError(
                f"segment widths cover {offset} payload bytes, "
                f"frame carries {len(payload)}")
    elif header.n_bits or payload:
        bits = unpack_bits(payload, header.n_bits)
    else:
        bits = None
    return meta, bits


async def read_frame_async(reader) -> tuple[dict, object]:
    """Read one full frame from an asyncio stream reader."""
    header = decode_header(await reader.readexactly(HEADER_SIZE))
    meta_bytes = (await reader.readexactly(header.meta_len)
                  if header.meta_len else b"")
    payload = (await reader.readexactly(header.payload_bytes)
               if header.payload_bytes else b"")
    return decode_frame(header, meta_bytes, payload)
