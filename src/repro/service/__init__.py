"""Bulk-bitwise analytics service: sharded columns, compiled queries,
batched execution, per-query cost attribution and result caching.

Two interchangeable execution backends answer every query:

* **vector** (default) — the columnar plan-vectorized executor: the
  table lives in a :class:`~repro.service.columnstore.ColumnStore` as
  packed ``(n_shards, words_per_shard)`` uint64 matrices, compiled
  plans lower once to register-machine bytecode, and each plan step
  runs as one whole-matrix numpy kernel (all shards at once, no
  locks, GIL released).  Energy/cycle/primitive accounting is computed
  in closed form from the plan's probed charge events
  (:func:`~repro.arch.primitives.plan_stats`).
* **reference** — the engine-replay ground truth: one
  :class:`~repro.arch.engine.BulkEngine` per shard, thread-pool
  fan-out behind per-shard locks.  The vector backend is pinned
  bit-exact and Stats-exact against this path in the test suite.

Select with ``BitwiseService(..., backend="vector"|"reference")``.
"""

from repro.service.columnstore import ColumnStore, MatrixPool
from repro.service.server import QueryServer, run_repl, serve_tcp
from repro.service.service import (
    BitwiseService,
    ProgramResult,
    QueryResult,
    StatementStats,
)

__all__ = [
    "BitwiseService",
    "ColumnStore",
    "MatrixPool",
    "ProgramResult",
    "QueryResult",
    "QueryServer",
    "StatementStats",
    "run_repl",
    "serve_tcp",
]
