"""Bulk-bitwise analytics service: sharded columns, compiled queries,
batched execution, per-query cost attribution and result caching.

Two interchangeable execution backends answer every query:

* **vector** (default) — the columnar plan-vectorized executor: the
  table lives in a :class:`~repro.service.columnstore.ColumnStore` as
  packed ``(n_shards, words_per_shard)`` uint64 matrices, compiled
  plans lower once to register-machine bytecode, and each plan step
  runs as one whole-matrix numpy kernel (all shards at once, no
  locks, GIL released).  Energy/cycle/primitive accounting is computed
  in closed form from the plan's probed charge events
  (:func:`~repro.arch.primitives.plan_stats`).  With ``workers=N`` the
  matrices live in shared memory and pinned worker processes
  (:mod:`repro.service.shard_workers`) each execute their own block of
  shard rows, returning only popcounts; ``replicas=R`` adds
  asynchronously-fed read replicas served under a generation-fence
  staleness contract (read-your-writes per tenant).
* **reference** — the engine-replay ground truth: one
  :class:`~repro.arch.engine.BulkEngine` per shard, thread-pool
  fan-out behind per-shard locks.  The vector backend is pinned
  bit-exact and Stats-exact against this path in the test suite.

Select with ``BitwiseService(..., backend="vector"|"reference")``.

The serving stack on top is async and multi-tenant: an asyncio
JSON-lines TCP server (:class:`QueryServer`) funnels every
connection through a central :class:`RequestScheduler` that coalesces
concurrent queries into vector batches, admission-controls and
fair-schedules per tenant (:mod:`repro.service.tenancy`), and
serializes column mutations (``update_column`` / ``write_slice`` /
``append_rows``) as barriers.  Mutations charge TBA-write / restore
energy per dirty row and query reads accrue QNRO disturb-scrub costs
(:class:`repro.arch.writeback.ScrubAccountant`); the result cache is
dependency-indexed, so a mutation only evicts the plans that read the
mutated column.

Durability (:mod:`repro.service.durability`): a checksummed
write-ahead log records every mutation barrier and tenant-state delta
before it applies, periodic snapshots pack the whole store + tenant
state into one generation file, and :func:`recover_service` replays
the log for bit-exact recovery on restart.  A :class:`FaultInjector`
arms deterministic faults (torn WAL tails, failed fsyncs, slow or
failing batches) for chaos testing, and the scheduler degrades
gracefully under per-request timeouts.
"""

from repro.service.columnstore import ColumnStore, MatrixPool
from repro.service.durability import (
    DurabilityManager,
    FaultInjector,
    InjectedFault,
    recover_service,
)
from repro.service.scheduler import (
    AdmissionError,
    RequestScheduler,
    ShuttingDownError,
)
from repro.service.server import (
    QueryServer,
    mutation_payload,
    result_payload,
    run_repl,
    serve_tcp,
)
from repro.service.service import (
    BitwiseService,
    MutationResult,
    ProgramResult,
    QueryResult,
    StatementStats,
)
from repro.service.shard_workers import (
    ReplicaSet,
    ReplicaStore,
    SharedColumnStore,
    WorkerPool,
)
from repro.service.tenancy import TenantState, TenantView

__all__ = [
    "AdmissionError",
    "BitwiseService",
    "ColumnStore",
    "DurabilityManager",
    "FaultInjector",
    "InjectedFault",
    "MatrixPool",
    "MutationResult",
    "ProgramResult",
    "QueryResult",
    "QueryServer",
    "ReplicaSet",
    "ReplicaStore",
    "RequestScheduler",
    "SharedColumnStore",
    "ShuttingDownError",
    "StatementStats",
    "WorkerPool",
    "TenantState",
    "TenantView",
    "mutation_payload",
    "recover_service",
    "result_payload",
    "run_repl",
    "serve_tcp",
]
