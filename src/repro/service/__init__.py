"""Bulk-bitwise analytics service: sharded columns, compiled queries,
batched execution, per-query cost attribution and result caching."""

from repro.service.server import QueryServer, run_repl, serve_tcp
from repro.service.service import BitwiseService, QueryResult

__all__ = [
    "BitwiseService",
    "QueryResult",
    "QueryServer",
    "run_repl",
    "serve_tcp",
]
