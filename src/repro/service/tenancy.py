"""Tenant namespaces over one shared :class:`BitwiseService` table.

A *tenant* is a named namespace of logical column names mapped onto
physical column names in the shared store (``"<tenant>::<name>"``;
the default ``None`` tenant is unprefixed, which keeps the pre-tenancy
wire protocol and API bit-compatible).  Because the query language
only admits ``[A-Za-z_]\\w*`` identifiers, a tenant can never name —
and therefore never read or mutate — another tenant's physical
columns.

Compiled plans are keyed on *logical* expressions and therefore shared
across tenants (the same query text compiles once for everyone);
result caching, dependency-based invalidation, disturb/scrub
accounting and quotas all operate on physical names and are fully
isolated per tenant.

Quotas (enforced by the service / scheduler):

* ``quota_bits`` — total physical bits the tenant's columns may pin
  (each column pins the table's full capacity width);
* ``quota_energy_nj`` — total attributed in-memory energy (nJ) the
  tenant's executed queries, programs and mutations may spend; cache
  hits are served from the host cache and spend nothing;
* ``cache_entries`` — result-cache entries the tenant may hold (its
  own LRU within the shared cache);
* ``max_pending`` — concurrent in-flight requests the async server
  admits for the tenant (admission control).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import QueryError

__all__ = ["TenantState", "TenantView", "physical_name"]

_NAME = re.compile(r"[A-Za-z_]\w*")

#: separator between tenant and logical column name; unreachable from
#: the query language, so namespaces cannot be escaped via a query.
SEP = "::"


def physical_name(tenant: str | None, name: str) -> str:
    """Mangle a tenant-logical column name into the shared store key."""
    if not isinstance(name, str) or not _NAME.fullmatch(name):
        raise QueryError(f"invalid column name {name!r}")
    return name if tenant is None else f"{tenant}{SEP}{name}"


def check_tenant_name(tenant: str) -> str:
    if not isinstance(tenant, str) or not _NAME.fullmatch(tenant):
        raise QueryError(f"invalid tenant name {tenant!r}")
    return tenant


@dataclass
class TenantState:
    """Service-side bookkeeping for one tenant namespace."""

    name: str | None
    quota_bits: int | None = None     #: max total physical column bits
    quota_energy_nj: float | None = None  #: max attributed energy (nJ)
    cache_entries: int | None = None  #: max result-cache entries
    max_pending: int | None = None    #: admission-control concurrency
    #: logical -> physical column names
    columns: dict[str, str] = field(default_factory=dict)
    cached: int = 0                   #: live result-cache entries
    energy_spent_nj: float = 0.0      #: attributed energy spent (nJ)

    def resolve(self, name: str) -> str:
        """Physical name of an *existing* column (raises otherwise)."""
        try:
            return self.columns[name]
        except KeyError:
            label = "" if self.name is None else \
                f" for tenant {self.name!r}"
            raise QueryError(f"no column {name!r}{label}") from None

    def check_bit_quota(self, capacity: int, new_columns: int = 1,
                        ) -> None:
        if self.quota_bits is None:
            return
        needed = (len(self.columns) + new_columns) * capacity
        if needed > self.quota_bits:
            raise QueryError(
                f"tenant {self.name!r} over bit quota: {needed} bits "
                f"needed > {self.quota_bits} allowed")

    # -- energy quota (spent post-hoc, gated at admission) -------------
    def charge_energy(self, joules: float) -> None:
        """Accrue attributed in-memory energy against the quota.

        Charging is post-hoc (the cost of a request is only known
        after its closed-form attribution), so a request may overdraw
        the budget once; the scheduler then rejects further work."""
        self.energy_spent_nj += joules * 1e9

    def energy_exhausted(self) -> bool:
        """True once the tenant has spent its energy budget (a zero
        quota is exhausted from the start)."""
        return (self.quota_energy_nj is not None
                and self.energy_spent_nj >= self.quota_energy_nj)


class TenantView:
    """A tenant-scoped facade over a shared :class:`BitwiseService`.

    Exposes the service's column/query/mutation API with every call
    bound to one tenant namespace; obtained via
    :meth:`BitwiseService.tenant`.
    """

    def __init__(self, service, tenant: str | None) -> None:
        self._service = service
        self.tenant = tenant

    # -- columns -------------------------------------------------------
    def create_column(self, name, bits=None):
        return self._service.create_column(name, bits,
                                           tenant=self.tenant)

    def random_column(self, name, density=0.5, seed=None):
        return self._service.random_column(name, density, seed,
                                           tenant=self.tenant)

    def drop_column(self, name):
        return self._service.drop_column(name, tenant=self.tenant)

    def column_bits(self, name):
        return self._service.column_bits(name, tenant=self.tenant)

    @property
    def columns(self) -> tuple[str, ...]:
        return self._service.tenant_columns(self.tenant)

    # -- mutations -----------------------------------------------------
    def update_column(self, name, bits=None):
        return self._service.update_column(name, bits,
                                           tenant=self.tenant)

    def write_slice(self, name, offset, bits):
        return self._service.write_slice(name, offset, bits,
                                         tenant=self.tenant)

    def append_rows(self, values=None, n=None):
        return self._service.append_rows(values, n, tenant=self.tenant)

    # -- queries -------------------------------------------------------
    def compile(self, query):
        return self._service.compile(query)

    def query(self, query, *, use_cache=True):
        return self._service.query(query, use_cache=use_cache,
                                   tenant=self.tenant)

    def execute(self, queries, *, use_cache=True):
        return self._service.execute(queries, use_cache=use_cache,
                                     tenant=self.tenant)

    def match(self, cols, key, mask=None, *, use_cache=True):
        return self._service.match(cols, key, mask,
                                   use_cache=use_cache,
                                   tenant=self.tenant)

    def run_program(self, program):
        return self._service.run_program(program, tenant=self.tenant)

    def read_bits(self, name, offset=0, limit=64):
        return self._service.read_bits(name, offset, limit,
                                       tenant=self.tenant)
