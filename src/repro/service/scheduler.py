"""Central asyncio request scheduler for the serving front-end.

The async server funnels every connection's requests through one
:class:`RequestScheduler`, which

* **coalesces** concurrent queries from all connections into the
  service's vector batches: the first arrival opens a small batching
  window (``window_s``); everything that lands inside it executes as
  ONE :meth:`BitwiseService.execute` call (one set of whole-matrix
  kernels, cross-query CSE within each tenant);
* enforces **per-tenant admission control**: a tenant may hold at most
  ``max_pending`` requests in flight (its
  :attr:`~repro.service.tenancy.TenantState.max_pending` overrides the
  server default); excess requests are rejected immediately with an
  :class:`AdmissionError` instead of growing the queue without bound;
* enforces **energy-denominated quotas**: a tenant whose attributed
  in-memory energy spend has reached its
  :attr:`~repro.service.tenancy.TenantState.quota_energy_nj` budget is
  rejected at admission, and already-queued requests are shed per item
  when the batch executes (the charge is post-hoc, so exhaustion can
  land mid-batch) — co-batched tenants keep executing;
* schedules **fairly**: batches are filled round-robin across tenant
  queues (one query per tenant per rotation), so a flooding tenant
  cannot starve the others — and per-tenant FIFO order is preserved;
* serializes **mutations as barriers**: a tenant's mutation waits for
  the current batch, then runs exclusively before the tenant's later
  requests (read-your-writes per tenant).

The scheduler owns no sockets and is directly testable from asyncio.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import QueryError

__all__ = ["AdmissionError", "RequestScheduler"]


class AdmissionError(QueryError):
    """Per-tenant admission limit exceeded; retry after back-off."""


@dataclass
class _Item:
    kind: str                    # "query" | "exclusive"
    tenant: str | None
    payload: Any                 # query text | zero-arg callable
    future: asyncio.Future = field(repr=False, default=None)
    #: False for members of a batch submission, which holds ONE
    #: admission slot for the whole batch (wire compatibility: the old
    #: threaded server executed a batch as a single request)
    counted: bool = True


class RequestScheduler:
    """Batching, admission-controlled front door to a BitwiseService."""

    def __init__(self, service, *, window_s: float = 0.001,
                 max_batch: int = 128, max_pending: int = 64) -> None:
        self.service = service
        self.window_s = float(window_s)
        self.max_batch = int(max_batch)
        self.max_pending = int(max_pending)
        self._queues: dict[str | None, deque[_Item]] = {}
        self._rotation: deque[str | None] = deque()
        self._pending: dict[str | None, int] = {}
        self._wakeup = asyncio.Event()
        self._task: asyncio.Task | None = None
        self._stopped = False
        self.metrics = {
            "batches": 0,            #: execute() calls issued
            "batched_queries": 0,    #: queries answered through them
            "largest_batch": 0,
            "exclusives": 0,         #: mutations/barrier ops run
            "admission_rejections": 0,
        }

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        self._task = asyncio.get_running_loop().create_task(
            self._run(), name="request-scheduler")

    async def stop(self) -> None:
        self._stopped = True
        self._wakeup.set()
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except (asyncio.CancelledError, Exception):
                pass
        for queue in self._queues.values():
            for item in queue:
                if not item.future.done():
                    item.future.set_exception(
                        QueryError("server shutting down"))
        self._queues.clear()

    # -- submission ----------------------------------------------------
    def _limit(self, tenant: str | None) -> int:
        state = self.service.tenant_state(tenant)
        return state.max_pending if state.max_pending is not None \
            else self.max_pending

    def _check_admission(self, tenant: str | None) -> None:
        state = self.service.tenant_state(tenant)
        if state.energy_exhausted():
            self.metrics["admission_rejections"] += 1
            raise AdmissionError(
                f"tenant {tenant!r} energy quota exhausted "
                f"({state.energy_spent_nj:.1f} nJ spent of "
                f"{state.quota_energy_nj:.1f} nJ)")
        if self._pending.get(tenant, 0) >= self._limit(tenant):
            self.metrics["admission_rejections"] += 1
            raise AdmissionError(
                f"tenant {tenant!r} over admission limit "
                f"({self._limit(tenant)} requests in flight)")

    def _enqueue(self, item: _Item) -> None:
        item.future = asyncio.get_running_loop().create_future()
        queue = self._queues.get(item.tenant)
        if queue is None:
            queue = self._queues[item.tenant] = deque()
            self._rotation.append(item.tenant)
        queue.append(item)
        self._wakeup.set()

    def _admit(self, item: _Item) -> None:
        self._check_admission(item.tenant)
        self._pending[item.tenant] = \
            self._pending.get(item.tenant, 0) + 1
        self._enqueue(item)

    def _settle(self, item: _Item, value=None, error=None) -> None:
        if item.counted:
            self._pending[item.tenant] -= 1
        if item.future.done():
            return
        if error is not None:
            item.future.set_exception(error)
        else:
            item.future.set_result(value)

    async def submit_query(self, tenant: str | None, query: str):
        """Queue one query; resolves to its QueryResult."""
        item = _Item("query", tenant, query)
        self._admit(item)
        return await item.future

    async def submit_batch(self, tenant: str | None, queries):
        """Queue a client batch under ONE admission slot.

        The member queries still coalesce individually (and with other
        connections' traffic) into vector batches; admission counts the
        submission as a single in-flight request, matching the old
        threaded server's one-request batch semantics."""
        queries = list(queries)
        if not queries:
            return []
        self._check_admission(tenant)
        self._pending[tenant] = self._pending.get(tenant, 0) + 1
        items = [_Item("query", tenant, query, counted=False)
                 for query in queries]
        try:
            for item in items:
                self._enqueue(item)
            results = await asyncio.gather(
                *[item.future for item in items],
                return_exceptions=True)
        finally:
            self._pending[tenant] -= 1
        for result in results:
            if isinstance(result, BaseException):
                raise result
        return results

    async def submit_exclusive(self, tenant: str | None,
                               fn: Callable[[], Any]):
        """Queue a barrier op (mutation/DDL); resolves to fn()."""
        item = _Item("exclusive", tenant, fn)
        self._admit(item)
        return await item.future

    # -- the scheduling loop -------------------------------------------
    def _backlog(self) -> bool:
        return any(self._queues.values())

    def _drain_round(self) -> tuple[list[_Item], list[_Item]]:
        """One fair round: a query batch plus due barrier ops.

        Queries are taken round-robin, one per tenant per rotation,
        never past a tenant's first barrier (per-tenant FIFO).  Then
        each tenant whose queue now fronts a barrier contributes that
        one barrier op.
        """
        batch: list[_Item] = []
        progress = True
        while progress and len(batch) < self.max_batch:
            progress = False
            for _ in range(len(self._rotation)):
                tenant = self._rotation[0]
                self._rotation.rotate(-1)
                queue = self._queues.get(tenant)
                if queue and queue[0].kind == "query":
                    batch.append(queue.popleft())
                    progress = True
                    if len(batch) >= self.max_batch:
                        break
        exclusives: list[_Item] = []
        for _ in range(len(self._rotation)):
            tenant = self._rotation[0]
            self._rotation.rotate(-1)
            queue = self._queues.get(tenant)
            if queue and queue[0].kind == "exclusive":
                exclusives.append(queue.popleft())
        return batch, exclusives

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while not self._stopped:
            await self._wakeup.wait()
            self._wakeup.clear()
            if not self._backlog():
                continue
            if self.window_s > 0:
                # Batching window: let concurrent arrivals coalesce.
                await asyncio.sleep(self.window_s)
            while self._backlog():
                batch, exclusives = self._drain_round()
                if batch:
                    await self._execute_batch(loop, batch)
                for item in exclusives:
                    await self._execute_exclusive(loop, item)

    def _reject_exhausted(self, items: list[_Item]) -> list[_Item]:
        """Settle already-admitted items whose tenant has since spent
        its energy budget; returns the still-eligible remainder.

        Charging is post-hoc, so a tenant can exhaust its quota while
        requests are queued; shedding them here (instead of letting
        ``execute`` raise) keeps the rejection per-item — co-batched
        tenants are untouched and never starve."""
        eligible: list[_Item] = []
        for item in items:
            state = self.service.tenant_state(item.tenant)
            if state.energy_exhausted():
                self.metrics["admission_rejections"] += 1
                self._settle(item, error=AdmissionError(
                    f"tenant {item.tenant!r} energy quota exhausted "
                    f"({state.energy_spent_nj:.1f} nJ spent of "
                    f"{state.quota_energy_nj:.1f} nJ)"))
            else:
                eligible.append(item)
        return eligible

    async def _execute_batch(self, loop, batch: list[_Item]) -> None:
        batch = self._reject_exhausted(batch)
        if not batch:
            return
        queries = [item.payload for item in batch]
        tenants = [item.tenant for item in batch]
        self.metrics["batches"] += 1
        self.metrics["batched_queries"] += len(batch)
        self.metrics["largest_batch"] = max(
            self.metrics["largest_batch"], len(batch))
        try:
            results = await loop.run_in_executor(
                None, lambda: self.service.execute(queries,
                                                   tenants=tenants))
        except Exception:
            # One bad query fails a whole execute(); fall back to
            # per-item execution so errors attribute to their request.
            for item in batch:
                await self._execute_single(loop, item)
            return
        for item, result in zip(batch, results):
            self._settle(item, result)

    async def _execute_single(self, loop, item: _Item) -> None:
        try:
            result = await loop.run_in_executor(
                None, lambda: self.service.query(item.payload,
                                                 tenant=item.tenant))
        except Exception as exc:
            self._settle(item, error=exc)
        else:
            self._settle(item, result)

    async def _execute_exclusive(self, loop, item: _Item) -> None:
        if not self._reject_exhausted([item]):
            return
        self.metrics["exclusives"] += 1
        try:
            value = await loop.run_in_executor(None, item.payload)
        except Exception as exc:
            self._settle(item, error=exc)
        else:
            self._settle(item, value)
