"""Central asyncio request scheduler for the serving front-end.

The async server funnels every connection's requests through one
:class:`RequestScheduler`, which

* **coalesces** concurrent queries from all connections into the
  service's vector batches: the first arrival opens a small batching
  window (``window_s``); everything that lands inside it executes as
  ONE :meth:`BitwiseService.execute` call (one set of whole-matrix
  kernels, cross-query CSE within each tenant);
* enforces **per-tenant admission control**: a tenant may hold at most
  ``max_pending`` requests in flight (its
  :attr:`~repro.service.tenancy.TenantState.max_pending` overrides the
  server default); excess requests are rejected immediately with an
  :class:`AdmissionError` instead of growing the queue without bound;
* enforces **energy-denominated quotas**: a tenant whose attributed
  in-memory energy spend has reached its
  :attr:`~repro.service.tenancy.TenantState.quota_energy_nj` budget is
  rejected at admission, and already-queued requests are shed per item
  when the batch executes (the charge is post-hoc, so exhaustion can
  land mid-batch) — co-batched tenants keep executing;
* schedules **fairly**: batches are filled round-robin across tenant
  queues (one query per tenant per rotation), so a flooding tenant
  cannot starve the others — and per-tenant FIFO order is preserved;
* serializes **mutations as barriers**: a tenant's mutation waits for
  the current batch, then runs exclusively before the tenant's later
  requests (read-your-writes per tenant) — and when a durability
  manager is attached, barrier ops **group-commit**: a dedicated
  committer thread fsyncs every queued round under one
  ``fdatasync`` while the scheduler keeps serving, and no op is
  acknowledged before its group is on disk.

Fault tolerance (graceful degradation):

* rejections carry a machine-readable **retry_after_ms** hint so
  clients back off intelligently instead of blind-retrying;
* an optional **per-request timeout** (``request_timeout_s``) bounds
  each batch / barrier executor call: a slow batch settles *its own*
  items with a :class:`~repro.errors.QueryError` while the
  connection, the scheduler loop and co-tenant traffic all survive;
* an armed :class:`~repro.service.durability.FaultInjector` can
  delay or fail batches (``batch.delay`` / ``batch.exec``) and
  barrier ops (``exclusive.*``) for deterministic chaos tests — an
  injected batch failure takes the existing per-item fallback path,
  so errors attribute to individual requests;
* **drain** support for graceful shutdown: :meth:`begin_drain`
  rejects new submissions with :class:`ShuttingDownError` while
  :meth:`drain` awaits the in-flight work.

The scheduler owns no sockets and is directly testable from asyncio.
"""

from __future__ import annotations

import asyncio
import queue as _queue
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import QueryError

__all__ = ["AdmissionError", "RequestScheduler", "ShuttingDownError",
           "ENERGY_RETRY_AFTER_MS"]

#: sentinel telling the committer thread to exit once drained
_COMMIT_STOP = object()

#: hint handed to energy-exhausted tenants — quota refills are an
#: operator action, so the backoff is a coarse constant, not a window
ENERGY_RETRY_AFTER_MS = 1000.0


class AdmissionError(QueryError):
    """Per-tenant admission limit exceeded; retry after back-off.

    ``retry_after_ms`` is a machine-readable hint surfaced on both
    wires: roughly two batching windows for queue-full rejections,
    :data:`ENERGY_RETRY_AFTER_MS` for exhausted energy quotas."""

    def __init__(self, message: str, *,
                 retry_after_ms: float | None = None) -> None:
        super().__init__(message)
        self.retry_after_ms = retry_after_ms


class ShuttingDownError(QueryError):
    """The server is draining; reconnect and retry elsewhere/later."""


@dataclass
class _Item:
    kind: str                    # "query" | "exclusive"
    tenant: str | None
    payload: Any                 # query text | zero-arg callable
    future: asyncio.Future = field(repr=False, default=None)
    #: False for members of a batch submission, which holds ONE
    #: admission slot for the whole batch (wire compatibility: the old
    #: threaded server executed a batch as a single request)
    counted: bool = True


class RequestScheduler:
    """Batching, admission-controlled front door to a BitwiseService."""

    def __init__(self, service, *, window_s: float = 0.001,
                 max_batch: int = 128, max_pending: int = 64,
                 request_timeout_s: float | None = None,
                 injector=None) -> None:
        self.service = service
        self.window_s = float(window_s)
        self.max_batch = int(max_batch)
        self.max_pending = int(max_pending)
        #: executor-side deadline per batch / barrier op (None = off)
        self.request_timeout_s = request_timeout_s
        #: optional FaultInjector consulted inside executor calls
        self.injector = injector
        self._queues: dict[str | None, deque[_Item]] = {}
        self._rotation: deque[str | None] = deque()
        self._pending: dict[str | None, int] = {}
        self._wakeup = asyncio.Event()
        self._task: asyncio.Task | None = None
        #: rounds of barrier outcomes awaiting their WAL group fsync;
        #: a dedicated committer thread drains the whole queue under
        #: ONE fsync (started lazily on the first durable round), so
        #: the commit rate self-clocks to what the disk sustains
        self._commit_q: _queue.SimpleQueue = _queue.SimpleQueue()
        self._commit_thread: threading.Thread | None = None
        self._stopped = False
        self._draining = False
        # Adaptive batching: EWMA of recent batch sizes.  Near 1 the
        # queue is effectively idle — waiting the full window only
        # adds latency — so the window is skipped; above that the
        # window fires early once the backlog reaches the predicted
        # batch size (coalescing already happened, nothing to wait
        # for).
        self._batch_ewma = 2.0
        self.metrics = {
            "batches": 0,            #: execute() calls issued
            "batched_queries": 0,    #: queries answered through them
            "largest_batch": 0,
            "exclusives": 0,         #: mutations/barrier ops run
            "wal_group_commits": 0,  #: mutation rounds fsynced once
            "admission_rejections": 0,
            "timeouts": 0,           #: batches/barriers past deadline
            "drain_rejections": 0,   #: submissions refused mid-drain
            "early_fires": 0,        #: windows cut short (goal met)
            "window_skips": 0,       #: windows skipped (queue idle)
        }

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        self._task = asyncio.get_running_loop().create_task(
            self._run(), name="request-scheduler")

    def begin_drain(self) -> None:
        """Stop admitting; in-flight and queued work still completes."""
        self._draining = True
        self._wakeup.set()

    async def drain(self, timeout_s: float = 5.0) -> bool:
        """Await quiescence (no pending requests); False on timeout."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout_s
        while sum(self._pending.values()) > 0 or self._backlog():
            if loop.time() >= deadline:
                return False
            await asyncio.sleep(0.005)
        return True

    async def stop(self) -> None:
        self._stopped = True
        self._wakeup.set()
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except (asyncio.CancelledError, Exception):
                pass
        # Let the committer thread fsync and settle any queued groups
        # before failing whatever is still in the request queues; it
        # exits once it has drained everything up to the sentinel.
        if self._commit_thread is not None:
            self._commit_q.put(_COMMIT_STOP)
            await asyncio.get_running_loop().run_in_executor(
                None, self._commit_thread.join)
            self._commit_thread = None
            # One tick for the settle callbacks it posted on exit.
            await asyncio.sleep(0)
        for queue in self._queues.values():
            for item in queue:
                if not item.future.done():
                    item.future.set_exception(
                        ShuttingDownError("server shutting down"))
        self._queues.clear()

    # -- submission ----------------------------------------------------
    def _limit(self, tenant: str | None) -> int:
        state = self.service.tenant_state(tenant)
        return state.max_pending if state.max_pending is not None \
            else self.max_pending

    def _retry_hint_ms(self) -> float:
        """Queue-full backoff: about two batching windows."""
        return max(1.0, self.window_s * 2e3)

    def _check_admission(self, tenant: str | None) -> None:
        if self._draining:
            self.metrics["drain_rejections"] += 1
            raise ShuttingDownError("server shutting down")
        state = self.service.tenant_state(tenant)
        if state.energy_exhausted():
            self.metrics["admission_rejections"] += 1
            raise AdmissionError(
                f"tenant {tenant!r} energy quota exhausted "
                f"({state.energy_spent_nj:.1f} nJ spent of "
                f"{state.quota_energy_nj:.1f} nJ)",
                retry_after_ms=ENERGY_RETRY_AFTER_MS)
        if self._pending.get(tenant, 0) >= self._limit(tenant):
            self.metrics["admission_rejections"] += 1
            raise AdmissionError(
                f"tenant {tenant!r} over admission limit "
                f"({self._limit(tenant)} requests in flight)",
                retry_after_ms=self._retry_hint_ms())

    def _enqueue(self, item: _Item) -> None:
        item.future = asyncio.get_running_loop().create_future()
        queue = self._queues.get(item.tenant)
        if queue is None:
            queue = self._queues[item.tenant] = deque()
            self._rotation.append(item.tenant)
        queue.append(item)
        self._wakeup.set()

    def _admit(self, item: _Item) -> None:
        self._check_admission(item.tenant)
        self._pending[item.tenant] = \
            self._pending.get(item.tenant, 0) + 1
        self._enqueue(item)

    def _settle(self, item: _Item, value=None, error=None) -> None:
        if item.counted:
            self._pending[item.tenant] -= 1
        if item.future.done():
            return
        if error is not None:
            item.future.set_exception(error)
        else:
            item.future.set_result(value)

    async def submit_query(self, tenant: str | None, query: str):
        """Queue one query; resolves to its QueryResult."""
        item = _Item("query", tenant, query)
        self._admit(item)
        return await item.future

    async def submit_batch(self, tenant: str | None, queries):
        """Queue a client batch under ONE admission slot.

        The member queries still coalesce individually (and with other
        connections' traffic) into vector batches; admission counts the
        submission as a single in-flight request, matching the old
        threaded server's one-request batch semantics."""
        queries = list(queries)
        if not queries:
            return []
        self._check_admission(tenant)
        self._pending[tenant] = self._pending.get(tenant, 0) + 1
        items = [_Item("query", tenant, query, counted=False)
                 for query in queries]
        try:
            for item in items:
                self._enqueue(item)
            results = await asyncio.gather(
                *[item.future for item in items],
                return_exceptions=True)
        finally:
            self._pending[tenant] -= 1
        for result in results:
            if isinstance(result, BaseException):
                raise result
        return results

    async def submit_exclusive(self, tenant: str | None,
                               fn: Callable[[], Any]):
        """Queue a barrier op (mutation/DDL); resolves to fn()."""
        item = _Item("exclusive", tenant, fn)
        self._admit(item)
        return await item.future

    # -- the scheduling loop -------------------------------------------
    def _backlog(self) -> bool:
        return any(self._queues.values())

    def _backlog_count(self) -> int:
        return sum(len(q) for q in self._queues.values())

    async def _adaptive_window(self) -> None:
        """Wait out the batching window, but no longer than useful.

        The fixed window trades latency for coalescing on every
        request, even when the queue never sees concurrent arrivals.
        Instead, predict the batch size from an EWMA of recent
        batches: when the prediction says batches are singletons,
        skip the window outright; otherwise wait only until the
        backlog reaches the predicted size (further waiting cannot
        grow the batch we expect) or the window expires.
        """
        if self._batch_ewma <= 1.5:
            self.metrics["window_skips"] += 1
            return
        goal = max(2, round(self._batch_ewma))
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.window_s
        while self._backlog_count() < goal:
            remaining = deadline - loop.time()
            if remaining <= 0:
                return
            try:
                await asyncio.wait_for(self._wakeup.wait(), remaining)
            except asyncio.TimeoutError:
                return
            self._wakeup.clear()
        self.metrics["early_fires"] += 1

    def _drain_round(self) -> tuple[list[_Item], list[_Item]]:
        """One fair round: a query batch plus due barrier ops.

        Queries are taken round-robin, one per tenant per rotation,
        never past a tenant's first barrier (per-tenant FIFO).  Then
        each tenant whose queue now fronts barriers contributes its
        consecutive run of them — the round's barrier ops execute in
        order and group-commit under one WAL fsync.
        """
        batch: list[_Item] = []
        progress = True
        while progress and len(batch) < self.max_batch:
            progress = False
            for _ in range(len(self._rotation)):
                tenant = self._rotation[0]
                self._rotation.rotate(-1)
                queue = self._queues.get(tenant)
                if queue and queue[0].kind == "query":
                    batch.append(queue.popleft())
                    progress = True
                    if len(batch) >= self.max_batch:
                        break
        return batch, self._drain_barriers()

    def _drain_barriers(self) -> list[_Item]:
        """Every tenant's consecutive run of front-of-queue barriers."""
        exclusives: list[_Item] = []
        for _ in range(len(self._rotation)):
            tenant = self._rotation[0]
            self._rotation.rotate(-1)
            queue = self._queues.get(tenant)
            while queue and queue[0].kind == "exclusive":
                exclusives.append(queue.popleft())
        return exclusives

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while not self._stopped:
            await self._wakeup.wait()
            self._wakeup.clear()
            if not self._backlog():
                continue
            if self.window_s > 0:
                # Batching window: let concurrent arrivals coalesce
                # (adaptively cut short when the queue looks idle or
                # the expected batch has already formed).
                await self._adaptive_window()
            while self._backlog():
                batch, exclusives = self._drain_round()
                if batch:
                    self._batch_ewma = (
                        0.7 * self._batch_ewma + 0.3 * len(batch))
                    await self._execute_batch(loop, batch)
                    # Mutations that queued while the batch executed
                    # join this round's group commit (one shared
                    # fsync) instead of each paying their own next
                    # round.
                    exclusives.extend(self._drain_barriers())
                if exclusives:
                    await self._execute_exclusives(loop, exclusives)

    def _reject_exhausted(self, items: list[_Item]) -> list[_Item]:
        """Settle already-admitted items whose tenant has since spent
        its energy budget; returns the still-eligible remainder.

        Charging is post-hoc, so a tenant can exhaust its quota while
        requests are queued; shedding them here (instead of letting
        ``execute`` raise) keeps the rejection per-item — co-batched
        tenants are untouched and never starve."""
        eligible: list[_Item] = []
        for item in items:
            state = self.service.tenant_state(item.tenant)
            if state.energy_exhausted():
                self.metrics["admission_rejections"] += 1
                self._settle(item, error=AdmissionError(
                    f"tenant {item.tenant!r} energy quota exhausted "
                    f"({state.energy_spent_nj:.1f} nJ spent of "
                    f"{state.quota_energy_nj:.1f} nJ)",
                    retry_after_ms=ENERGY_RETRY_AFTER_MS))
            else:
                eligible.append(item)
        return eligible

    # -- executor-side wrappers (fault injection lives in the worker
    # thread, exactly where a real stall/exception would strike) ------
    def _batch_fn(self, queries, tenants):
        if self.injector is not None:
            self.injector.delay("batch.delay")
            self.injector.check("batch.exec")
        return self.service.execute(queries, tenants=tenants)

    def _single_fn(self, item: _Item):
        if self.injector is not None:
            self.injector.delay("batch.delay")
        return self.service.query(item.payload, tenant=item.tenant)

    def _exclusive_fn(self, fn: Callable[[], Any]):
        if self.injector is not None:
            self.injector.delay("exclusive.delay")
            self.injector.check("exclusive.exec")
        return fn()

    async def _bounded(self, future):
        """Apply the per-request deadline to one executor future.

        On timeout the worker thread keeps running to completion (we
        cannot kill it), but its requests settle with an error now —
        the caller's latency is bounded and the event loop, other
        tenants and the connection all keep going."""
        if self.request_timeout_s:
            return await asyncio.wait_for(future,
                                          self.request_timeout_s)
        return await future

    async def _execute_batch(self, loop, batch: list[_Item]) -> None:
        batch = self._reject_exhausted(batch)
        if not batch:
            return
        queries = [item.payload for item in batch]
        tenants = [item.tenant for item in batch]
        self.metrics["batches"] += 1
        self.metrics["batched_queries"] += len(batch)
        self.metrics["largest_batch"] = max(
            self.metrics["largest_batch"], len(batch))
        try:
            results = await self._bounded(loop.run_in_executor(
                None, lambda: self._batch_fn(queries, tenants)))
        except asyncio.TimeoutError:
            # Degrade gracefully: THIS batch errors out, nothing else.
            # No per-item fallback — re-running a stalled batch item
            # by item would multiply the stall by the batch size.
            self.metrics["timeouts"] += 1
            for item in batch:
                self._settle(item, error=QueryError(
                    f"request timed out after "
                    f"{self.request_timeout_s:g}s"))
            return
        except Exception:
            # One bad query fails a whole execute(); fall back to
            # per-item execution so errors attribute to their request.
            for item in batch:
                await self._execute_single(loop, item)
            return
        for item, result in zip(batch, results):
            self._settle(item, result)

    async def _execute_single(self, loop, item: _Item) -> None:
        try:
            result = await self._bounded(loop.run_in_executor(
                None, lambda: self._single_fn(item)))
        except asyncio.TimeoutError:
            self.metrics["timeouts"] += 1
            self._settle(item, error=QueryError(
                f"request timed out after {self.request_timeout_s:g}s"))
        except Exception as exc:
            self._settle(item, error=exc)
        else:
            self._settle(item, result)

    async def _execute_exclusives(self, loop,
                                  items: list[_Item]) -> None:
        """Run one round's barrier ops, group-committing the WAL.

        Each op's record is written (and the op applied) in order —
        the WAL-before-apply invariant holds record by record — but
        the round's per-barrier fsyncs are deferred: the outcomes go
        to the *committer thread's* queue and the scheduler moves on
        to the next round while the group's ``fdatasync`` is in
        flight.
        No op is acknowledged before its group is on disk; if the
        group fsync fails, every op it covered settles with that
        error."""
        items = self._reject_exhausted(items)
        if not items:
            return
        manager = getattr(self.service, "durability", None)
        grouped = manager is not None and manager.sync == "batch"
        if grouped:
            self.metrics["wal_group_commits"] += 1
            manager.begin_group()
        outcomes: list[tuple[_Item, Any, Exception | None]] = []
        try:
            for item in items:
                self.metrics["exclusives"] += 1
                try:
                    value = await self._bounded(loop.run_in_executor(
                        None,
                        lambda fn=item.payload:
                            self._exclusive_fn(fn)))
                except asyncio.TimeoutError:
                    self.metrics["timeouts"] += 1
                    outcomes.append((item, None, QueryError(
                        f"request timed out after "
                        f"{self.request_timeout_s:g}s")))
                except Exception as exc:
                    outcomes.append((item, None, exc))
                else:
                    outcomes.append((item, value, None))
        finally:
            if grouped:
                # Settle off the scheduling loop: acks wait for the
                # group fsync, queries of the next round do not.
                self._ensure_committer(loop)
                self._commit_q.put(outcomes)
            else:
                self._settle_outcomes(outcomes)

    def _ensure_committer(self, loop) -> None:
        if self._commit_thread is None \
                or not self._commit_thread.is_alive():
            self._commit_thread = threading.Thread(
                target=self._committer_main, args=(loop,),
                name="wal-committer", daemon=True)
            self._commit_thread.start()

    def _committer_main(self, loop) -> None:
        """Group-commit fsync pump (dedicated thread).

        Drains every queued round under ONE WAL fsync, then posts
        their acknowledgments back to the event loop.  Rounds that
        arrive while an fsync is in flight pile up and share the next
        one, so the fsync rate self-clocks to what the disk sustains
        instead of serializing one sync per mutation round — and the
        fsync starts immediately even while the loop is busy with the
        next round's query batches.  A failed fsync withholds the
        acknowledgment of every op it covered."""
        while True:
            entry = self._commit_q.get()
            stopping = entry is _COMMIT_STOP
            groups = [] if stopping else [entry]
            while True:
                try:
                    entry = self._commit_q.get_nowait()
                except _queue.Empty:
                    break
                if entry is _COMMIT_STOP:
                    stopping = True
                else:
                    groups.append(entry)
            if groups:
                manager = getattr(self.service, "durability", None)
                failure = None
                try:
                    manager.commit_groups(len(groups))
                except Exception as exc:
                    # The groups never reached the disk: none of
                    # their ops is durable, none may be acknowledged.
                    failure = exc
                try:
                    loop.call_soon_threadsafe(
                        self._settle_groups, groups, failure)
                except RuntimeError:
                    return  # loop already closed (teardown race)
            if stopping:
                return

    def _settle_groups(self, groups, failure) -> None:
        for outcomes in groups:
            if failure is not None:
                outcomes = [(item, None,
                             error if error is not None else failure)
                            for item, value, error in outcomes]
            self._settle_outcomes(outcomes)

    def _settle_outcomes(self, outcomes) -> None:
        for item, value, error in outcomes:
            if error is not None:
                self._settle(item, error=error)
            else:
                self._settle(item, value)
