"""Sharded bulk-bitwise query service over the expression compiler.

:class:`BitwiseService` owns a table of named bit columns, compiles
incoming queries once (plan cache keyed on the canonicalized
expression), executes batches, attributes energy/cycle/primitive costs
per query, and serves repeated queries from an LRU result cache — the
production-shape layer the ROADMAP's heavy-traffic north star asks
for, in the spirit of X-SRAM's compound in-memory ops and SLIM's
logic-in-memory pipelines.

Two execution backends answer queries:

* ``backend="vector"`` (default) — the **columnar plan-vectorized
  executor**: columns live in a :class:`~repro.service.columnstore.
  ColumnStore` as packed ``(n_shards, words_per_shard)`` uint64
  matrices, each compiled plan lowers once to register-machine
  bytecode (:meth:`~repro.arch.expr.CompiledQuery.vector_program`),
  and every plan step executes as a single ``np.bitwise_*`` kernel
  over the whole matrix — all shards advance together, lock-free, with
  numpy releasing the GIL.  Energy/cycle/primitive accounting comes
  from the closed-form plan coster
  (:func:`~repro.arch.primitives.plan_stats`), which is Stats-exact
  against an engine replay.  Shared sub-expressions are deduplicated
  *across* the queries of a batch through a per-batch node cache
  (a host-simulation optimization only: attributed costs still model
  each query's full plan).

* ``backend="reference"`` — the engine-replay path: one
  :class:`~repro.arch.engine.BulkEngine` per shard, every (query,
  shard) pair a thread-pool task behind per-shard locks.  Slower by
  construction (O(plan-steps × shards) interpreted engine calls), but
  it is the ground truth the vectorized path is pinned against
  bit-for-bit and Stats-for-Stats in the test suite.  (Replay cost is
  column-flag-state dependent and reference batches interleave
  queries across shards nondeterministically, so Stats equality is
  pinned for serialized execution; the vector backend always charges
  the batch's deterministic sequential serialization.)

Columns are only ever mutated value-preservingly by queries
(complement-flag re-encodings on the reference path; the columnar
store is never written after ingest), so concurrent queries over
shared columns are safe on both backends.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.arch.bank import BitVector
from repro.arch.commands import Command, CommandType, Stats
from repro.arch.engine import BulkEngine
from repro.arch.expr import (
    CompiledQuery,
    Expr,
    _as_expr,
    canonical_key,
    compile_expr,
)
from repro.arch.primitives import default_spec, make_engine, plan_stats
from repro.arch.program import CompiledProgram, Program
from repro.arch.program import compile_program as _compile_program
from repro.arch.spec import MemorySpec
from repro.errors import QueryError
from repro.service.columnstore import ColumnStore, MatrixPool, shard_spans

__all__ = ["BitwiseService", "QueryResult", "ProgramResult",
           "StatementStats"]

_WORD_BITS = 64


@dataclass
class QueryResult:
    """Outcome of one query against the service."""

    query: str                      #: query as submitted
    key: str                        #: canonical (cache) key
    count: int | None               #: popcount of the result (functional)
    bits: np.ndarray | None         #: result bits (functional mode)
    cache_hit: bool
    primitives_per_row: int         #: compiled native primitives / row
    naive_primitives_per_row: int   #: naive-chaining baseline / row
    energy_j: float                 #: attributed in-memory energy
    cycles: int                     #: attributed command cycles
    elapsed_s: float                #: host wall-clock (all shards)
    shards: int                     #: shards that executed the query
    detail: dict = field(default_factory=dict)


@dataclass
class StatementStats:
    """Attributed cost of one program statement (all shards)."""

    index: int                  #: statement position in the program
    name: str                   #: assigned name
    query: str                  #: statement expression as compiled
    energy_j: float
    cycles: int
    stats: Stats                #: full attributed ledger delta


@dataclass
class ProgramResult:
    """Outcome of one multi-statement program run."""

    key: str                        #: canonical program key
    outputs: dict | None            #: output bits per name (functional)
    counts: dict | None             #: output popcounts per name
    statements: list[StatementStats]
    primitives_per_row: int         #: compiled native primitives / row
    naive_primitives_per_row: int   #: naive-chaining baseline / row
    energy_j: float                 #: attributed in-memory energy
    cycles: int                     #: attributed command cycles
    elapsed_s: float                #: host wall-clock
    shards: int
    backend: str
    detail: dict = field(default_factory=dict)


@dataclass
class _CacheEntry:
    result: QueryResult


class _Shard:
    """One engine slice: a private engine, its columns, and a lock."""

    def __init__(self, index: int, engine: BulkEngine,
                 span: tuple[int, int]) -> None:
        self.index = index
        self.engine = engine
        self.span = span            # [start, stop) bits of the table
        self.columns: dict[str, BitVector] = {}
        self.anchor: BitVector | None = None
        self.lock = threading.Lock()

    @property
    def n_bits(self) -> int:
        return self.span[1] - self.span[0]


class BitwiseService:
    """A served table of bit columns with compiled bulk-bitwise queries.

    Parameters
    ----------
    technology:
        ``"feram-2tnc"`` (default) or ``"dram"``.
    n_bits:
        Table width — every column holds this many bits.
    n_shards:
        Slices the table is striped over (word-aligned spans); widths
        below ``64 * n_shards`` use fewer shards.
    functional:
        Bit-exact payloads (default).  ``False`` runs counting-mode
        accounting only (GB-scale tables).
    cache_size:
        LRU result-cache capacity (0 disables caching).
    backend:
        ``"vector"`` (default) executes compiled plans as whole-matrix
        numpy kernels with closed-form cost accounting;
        ``"reference"`` replays plans on per-shard engines (the pinned
        ground truth).
    """

    def __init__(self, technology: str = "feram-2tnc", *,
                 n_bits: int, n_shards: int = 4,
                 functional: bool = True,
                 spec: MemorySpec | None = None,
                 cache_size: int = 64,
                 max_workers: int | None = None,
                 backend: str = "vector") -> None:
        if n_bits <= 0:
            raise QueryError("table width must be positive")
        if n_shards <= 0:
            raise QueryError("need at least one shard")
        if backend not in ("vector", "reference"):
            raise QueryError(f"unknown backend {backend!r} "
                             "(expected 'vector' or 'reference')")
        self.technology = technology
        self.backend = backend
        self.n_bits = int(n_bits)
        self.functional = functional
        self._spec = spec or default_spec(technology)
        spans = shard_spans(self.n_bits, n_shards)
        self.n_shards = len(spans)
        if backend == "reference":
            self._shards = [
                _Shard(i, make_engine(technology, functional=functional,
                                      spec=spec), span)
                for i, span in enumerate(spans)
            ]
            self._inverting = self._shards[0].engine._native_inverting()
            self._pool = ThreadPoolExecutor(
                max_workers=max_workers or self.n_shards,
                thread_name_prefix="bitwise-shard")
            self._store = None
        else:
            # Columnar state: the packed store plus per-shard analytic
            # ledgers that mirror what per-shard engines would record.
            if spec is not None and spec.technology != technology:
                raise QueryError(
                    f"spec {spec.name!r} is not a {technology!r} spec")
            self._shards = []
            self._pool = None
            self._store = ColumnStore(self.n_bits, n_shards) \
                if functional else None
            self._shard_rows = [
                (stop - start + self._spec.row_bits - 1)
                // self._spec.row_bits
                for start, stop in spans
            ]
            self._ledger = Stats()  # merged analytic engine ledger
            self._tba_offsets = [0] * len(spans)
            # Complement-flag encodings the reference engines would
            # leave each column in (parity steering re-encodes columns
            # persistently); evolution is identical on every shard, so
            # one flag per column drives the state-aware coster.
            self._col_flags: dict[str, bool] = {}
            self._stats_lock = threading.Lock()
            self._rows_used = 0
            shape = self._store.shape if self._store is not None else \
                (self.n_shards, 1)
            self._matrix_pool = MatrixPool(shape)
            self._inverting = self._spec.technology == "feram-2tnc"
        self._columns: dict[str, int] = {}
        # Serializes table DDL (create/drop): concurrent clients of the
        # threaded TCP server must not interleave the check-then-act on
        # self._columns (a lost race would overwrite shard vectors and
        # leak allocator rows).
        self._table_lock = threading.RLock()
        self._plans: dict[str, CompiledQuery] = {}
        # Text-level shortcut: repeated query strings skip the parse /
        # canonicalize round-trip entirely (hot for steady traffic).
        # LRU-bounded: distinct strings must not grow memory forever.
        self._plans_by_text: OrderedDict[str, CompiledQuery] = \
            OrderedDict()
        self._plans_by_text_cap = 1024
        self._plans_lock = threading.Lock()
        # Compiled multi-statement programs, keyed by the program's
        # structural signature.  Small LRU: programs are large (one
        # CompiledQuery per statement) but few and long-lived.
        self._program_plans: OrderedDict[tuple, CompiledProgram] = \
            OrderedDict()
        self._program_plans_cap = 8
        self._cache: OrderedDict[str, _CacheEntry] = OrderedDict()
        self._cache_size = int(cache_size)
        self._cache_lock = threading.Lock()
        self._generation = 0  # bumped on every column mutation
        self.cache_hits = 0
        self.cache_misses = 0
        self.queries_served = 0
        self.programs_run = 0
        self._closed = False

    # ------------------------------------------------------------------
    # sharding geometry
    # ------------------------------------------------------------------
    @staticmethod
    def _spans(n_bits: int, n_shards: int) -> list[tuple[int, int]]:
        """Word-aligned contiguous shard spans covering ``n_bits``."""
        return shard_spans(n_bits, n_shards)

    # ------------------------------------------------------------------
    # column management
    # ------------------------------------------------------------------
    def create_column(self, name: str, bits: np.ndarray | None = None,
                      ) -> None:
        """Ingest a column (host row writes are charged to each shard).

        ``bits`` may be omitted in counting mode (placeholder rows)."""
        self._ensure_open()
        with self._table_lock:
            if name in self._columns:
                raise QueryError(f"column {name!r} already exists")
            if bits is not None:
                bits = np.asarray(bits).astype(np.uint8)
                if bits.ndim != 1 or bits.size != self.n_bits:
                    raise QueryError(
                        f"column {name!r} must be a flat array of "
                        f"{self.n_bits} bits, got shape {bits.shape}")
            elif self.functional:
                raise QueryError(
                    "functional service requires explicit column bits")
            if self.backend == "vector":
                if self._store is not None:
                    self._store.add(name, bits)
                with self._stats_lock:
                    if self.functional:
                        # Mirror the reference path exactly: only a
                        # functional load charges host row writes
                        # (counting-mode allocate charges nothing).
                        self._ledger.record(
                            self._spec,
                            Command(CommandType.ROW_WRITE,
                                    repeat=sum(self._shard_rows)))
                    self._rows_used += sum(self._shard_rows)
                    self._col_flags[name] = False
            else:
                for shard in self._shards:
                    start, stop = shard.span
                    with shard.lock:
                        if self.functional:
                            vec = shard.engine.load(
                                bits[start:stop], name,
                                group_with=shard.anchor)
                        else:
                            vec = shard.engine.allocate(
                                stop - start, name,
                                group_with=shard.anchor)
                        shard.anchor = shard.anchor or vec
                        shard.columns[name] = vec
            self._columns[name] = self.n_bits
            self._invalidate_cache()

    def random_column(self, name: str, density: float = 0.5,
                      seed: int | None = None) -> None:
        """Convenience: a random column with the given 1-density."""
        if self.functional:
            rng = np.random.default_rng(seed)
            self.create_column(
                name, (rng.random(self.n_bits) < density).astype(np.uint8))
        else:
            self.create_column(name)

    def drop_column(self, name: str) -> None:
        self._ensure_open()
        with self._table_lock:
            if name not in self._columns:
                raise QueryError(f"no column {name!r}")
            if self.backend == "vector":
                if self._store is not None:
                    self._store.drop(name)
                with self._stats_lock:
                    self._rows_used -= sum(self._shard_rows)
                    self._col_flags.pop(name, None)
            else:
                for shard in self._shards:
                    with shard.lock:
                        vec = shard.columns.pop(name)
                        shard.engine.free(vec)
                        if shard.anchor is vec:
                            shard.anchor = next(
                                iter(shard.columns.values()), None)
            del self._columns[name]
            self._invalidate_cache()

    @property
    def columns(self) -> tuple[str, ...]:
        return tuple(self._columns)

    def column_bits(self, name: str) -> np.ndarray | None:
        """Current logical value of a column (functional mode)."""
        if name not in self._columns:
            raise QueryError(f"no column {name!r}")
        if not self.functional:
            return None
        if self.backend == "vector":
            return self._store.bits(name)
        parts = []
        for shard in self._shards:
            with shard.lock:
                parts.append(shard.columns[name].logical_bits()
                             [: shard.n_bits])
        return np.concatenate(parts)

    # ------------------------------------------------------------------
    # query execution
    # ------------------------------------------------------------------
    def compile(self, query: "Expr | str") -> CompiledQuery:
        """Compile (or fetch the cached plan for) a query."""
        text = query if isinstance(query, str) else None
        if text is not None:
            with self._plans_lock:
                plan = self._plans_by_text.get(text)
                if plan is not None:
                    self._plans_by_text.move_to_end(text)
                    return plan
        expr = _as_expr(query)
        key = canonical_key(expr)
        with self._plans_lock:
            plan = self._plans.get(key)
        if plan is None:
            plan = compile_expr(expr, inverting=self._inverting)
            with self._plans_lock:
                plan = self._plans.setdefault(key, plan)
        if text is not None:
            with self._plans_lock:
                self._plans_by_text.setdefault(text, plan)
                self._plans_by_text.move_to_end(text)
                while len(self._plans_by_text) > \
                        self._plans_by_text_cap:
                    self._plans_by_text.popitem(last=False)
        return plan

    def query(self, query: "Expr | str", *,
              use_cache: bool = True) -> QueryResult:
        """Execute one query (see :meth:`execute` for batches)."""
        return self.execute([query], use_cache=use_cache)[0]

    def execute(self, queries, *,
                use_cache: bool = True) -> list[QueryResult]:
        """Execute a batch of queries.

        The vector backend runs each distinct uncached plan as one
        sequence of whole-matrix numpy kernels (all shards at once,
        sub-expressions shared across the batch); the reference
        backend fans every (query, shard) pair onto a thread pool
        behind per-shard locks.  Results are attributed per query
        (energy, cycles, native primitives) and cached by canonical
        key on both paths.
        """
        self._ensure_open()
        plans: list[tuple[str, CompiledQuery | None, QueryResult | None]]
        plans = []
        pending: dict[str, list[int]] = {}
        for position, query in enumerate(queries):
            text = query if isinstance(query, str) else str(query)
            plan = self.compile(query)
            unknown = [c for c in plan.cols if c not in self._columns]
            if unknown:
                raise QueryError(f"unbound column(s): {unknown}")
            cached = self._cache_get(plan.key) if use_cache else None
            if cached is not None:
                entry = cached.result
                # Fresh bits/detail per hit: a caller mutating its
                # result must not poison the cached copy (or vice
                # versa).
                result = QueryResult(**{
                    **entry.__dict__,
                    "query": text, "cache_hit": True,
                    "bits": None if entry.bits is None
                    else entry.bits.copy(),
                    "detail": dict(entry.detail),
                    "energy_j": 0.0, "cycles": 0, "elapsed_s": 0.0,
                })
                plans.append((text, None, result))
                continue
            plans.append((text, plan, None))
            pending.setdefault(plan.key, []).append(position)

        # The generation snapshot keeps a result computed before a
        # concurrent column mutation out of the (already invalidated)
        # cache.
        with self._cache_lock:
            generation = self._generation
        if self.backend == "vector":
            outputs = self._run_batch_vector(pending, plans)
        else:
            outputs = self._run_batch_reference(pending, plans)

        results: list[QueryResult | None] = [entry[2] for entry in plans]
        for key, positions in pending.items():
            text = plans[positions[0]][0]
            plan = plans[positions[0]][1]
            bits, count, delta, elapsed = outputs[key]
            result = QueryResult(
                query=text, key=plan.key, count=count, bits=bits,
                cache_hit=False,
                primitives_per_row=plan.primitives,
                naive_primitives_per_row=plan.naive_primitives,
                energy_j=delta.total_energy_j,
                cycles=delta.total_cycles,
                elapsed_s=elapsed,
                shards=self.n_shards,
                detail=delta.summary(),
            )
            if use_cache:
                self._cache_put(plan.key, result, generation)
            results[positions[0]] = result
            # Canonically-equal duplicates in the batch get their own
            # result objects: correct query label, private bits.
            for position in positions[1:]:
                results[position] = QueryResult(**{
                    **result.__dict__,
                    "query": plans[position][0],
                    "bits": None if result.bits is None
                    else result.bits.copy(),
                    "detail": dict(result.detail),
                })
        with self._cache_lock:
            self.queries_served += len(plans)
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # multi-statement programs
    # ------------------------------------------------------------------
    def compile_program(self, program: Program) -> CompiledProgram:
        """Compile (or fetch the cached plan for) a program."""
        signature = (
            tuple((name, str(expr)) for name, expr in program.statements),
            program.outputs,
        )
        with self._plans_lock:
            cprog = self._program_plans.get(signature)
            if cprog is not None:
                self._program_plans.move_to_end(signature)
                return cprog
        cprog = _compile_program(program, inverting=self._inverting)
        with self._plans_lock:
            cprog = self._program_plans.setdefault(signature, cprog)
            self._program_plans.move_to_end(signature)
            while len(self._program_plans) > self._program_plans_cap:
                self._program_plans.popitem(last=False)
        return cprog

    def run_program(self, program: "Program | CompiledProgram",
                    ) -> ProgramResult:
        """Execute a multi-statement program over the table.

        The vector backend runs the program's multi-output bytecode as
        whole-matrix numpy kernels (cross-statement CSE, registers
        recycled at last use) and expands the probed per-statement
        charge events in closed form; the reference backend replays
        every statement on each shard engine.  Both attribute one
        Stats delta per statement and are pinned bit- and Stats-exact
        against each other in the test suite.
        """
        self._ensure_open()
        cprog = program if isinstance(program, CompiledProgram) \
            else self.compile_program(program)
        if cprog.inverting != self._inverting:
            raise QueryError("program compiled for the other polarity")
        unknown = [c for c in cprog.cols if c not in self._columns]
        if unknown:
            raise QueryError(f"unbound column(s): {unknown}")
        start = time.perf_counter()
        if self.backend == "vector":
            outputs, counts, per_stmt = self._run_program_vector(cprog)
        else:
            outputs, counts, per_stmt = self._run_program_reference(
                cprog)
        elapsed = time.perf_counter() - start
        total = Stats()
        statements = []
        for index, ((name, plan), stats) in enumerate(
                zip(cprog.stmt_plans, per_stmt)):
            total.iadd(stats)
            statements.append(StatementStats(
                index=index, name=name, query=str(plan.expr),
                energy_j=stats.total_energy_j,
                cycles=stats.total_cycles, stats=stats))
        with self._cache_lock:
            self.programs_run += 1
        return ProgramResult(
            key=cprog.key, outputs=outputs, counts=counts,
            statements=statements,
            primitives_per_row=cprog.primitives,
            naive_primitives_per_row=cprog.naive_primitives,
            energy_j=total.total_energy_j, cycles=total.total_cycles,
            elapsed_s=elapsed, shards=self.n_shards,
            backend=self.backend, detail=total.summary())

    def _run_program_vector(self, cprog: CompiledProgram):
        """Columnar program execution + closed-form attribution."""
        outputs = counts = None
        if self.functional:
            snapshot = self._store.snapshot()
            missing = [c for c in cprog.cols if c not in snapshot]
            if missing:
                raise QueryError(f"unbound column(s): {missing}")
            matrices = cprog.vector_program().run_outputs(
                snapshot, shape=self._store.shape,
                pool=self._matrix_pool)
            outputs = {name: self._store.unpack(matrix)
                       for name, matrix in matrices.items()}
            counts = {name: int(self._store.popcounts(matrix).sum())
                      for name, matrix in matrices.items()}
            self._matrix_pool.give_unique(matrices.values())
        per_stmt = self._charge_program(cprog)
        return outputs, counts, per_stmt

    def _charge_program(self, cprog: CompiledProgram) -> list[Stats]:
        """Closed-form per-statement Stats for one program execution.

        Statement events expand per shard with the running FeRAM
        control-rewrite counter threaded through the statements in
        order — exactly the interleaving a shard replay produces.
        """
        per_stmt = [Stats() for _ in cprog.stmt_plans]
        with self._stats_lock:
            flags = tuple(self._col_flags.get(col, False)
                          for col in cprog.cols)
            events, final = cprog.cost_events(flags)
            for col, flag in zip(cprog.cols, final):
                if col in self._col_flags:
                    self._col_flags[col] = flag
            memo: dict[tuple[int, int], tuple[list[Stats], int]] = {}
            for index, n_rows in enumerate(self._shard_rows):
                state = (n_rows, self._tba_offsets[index])
                costed = memo.get(state)
                if costed is None:
                    offset = state[1]
                    deltas = []
                    for stmt_events in events:
                        stats, offset = plan_stats(
                            self._spec, stmt_events, n_rows,
                            tba_offset=offset)
                        deltas.append(stats)
                    costed = (deltas, offset)
                    memo[state] = costed
                deltas, self._tba_offsets[index] = costed
                for target, delta in zip(per_stmt, deltas):
                    target.iadd(delta)
            for stats in per_stmt:
                self._ledger.iadd(stats)
        return per_stmt

    def _run_program_reference(self, cprog: CompiledProgram):
        """Engine replay: the whole program on every shard."""
        futures = [
            self._pool.submit(self._run_program_on_shard, shard, cprog)
            for shard in self._shards
        ]
        shard_outputs = [future.result() for future in futures]
        per_stmt = [Stats() for _ in cprog.stmt_plans]
        for _, deltas in shard_outputs:
            for target, delta in zip(per_stmt, deltas):
                target.iadd(delta)
        outputs = counts = None
        if self.functional:
            outputs = {
                name: np.concatenate(
                    [bits[name] for bits, _ in shard_outputs])
                for name in cprog.program.outputs
            }
            counts = {name: int(arr.sum())
                      for name, arr in outputs.items()}
        return outputs, counts, per_stmt

    def _run_program_on_shard(self, shard: _Shard,
                              cprog: CompiledProgram):
        with shard.lock:
            engine = shard.engine
            vectors, deltas = cprog.run(engine, shard.columns,
                                        n_bits=shard.n_bits)
            bits = None
            if self.functional:
                bits = {name: vec.logical_bits()[: shard.n_bits]
                        for name, vec in vectors.items()}
            engine.free(*vectors.values())
        return bits, deltas

    # ------------------------------------------------------------------
    # vector backend
    # ------------------------------------------------------------------
    def _run_batch_vector(self, pending: dict[str, list[int]],
                          plans) -> dict[str, tuple]:
        """Columnar execution: O(plan-steps) kernels per distinct query.

        Every distinct plan runs once over the full column matrices;
        the per-batch ``node_cache`` shares identical sub-expressions
        across the batch's queries (attributed costs still model each
        plan standalone, matching the reference replay exactly).
        """
        snapshot = self._store.snapshot() if self._store is not None \
            else {}
        node_cache: dict[str, np.ndarray] = {}
        outputs: dict[str, tuple] = {}
        for key, positions in pending.items():
            plan = plans[positions[0]][1]
            start = time.perf_counter()
            bits = count = None
            if self.functional:
                missing = [c for c in plan.cols if c not in snapshot]
                if missing:
                    raise QueryError(f"unbound column(s): {missing}")
                matrix = plan.vector_program().run(
                    snapshot, shape=self._store.shape,
                    pool=self._matrix_pool, node_cache=node_cache)
                count = int(self._store.popcounts(matrix).sum())
                bits = self._store.unpack(matrix)
            delta = self._charge_vector(plan)
            outputs[key] = (bits, count, delta,
                            time.perf_counter() - start)
        return outputs

    def _charge_vector(self, plan: CompiledQuery) -> Stats:
        """Closed-form per-shard Stats for one plan execution.

        Shards with equal (rows, control-counter) state share one
        closed-form evaluation — in the common equal-width layout the
        whole query is costed with a single :func:`plan_stats` call.
        """
        delta = Stats()
        with self._stats_lock:
            # .get(): a column dropped while this query was in flight
            # charges from the plain encoding and must not resurrect a
            # flag entry (a recreated column starts plain, like a
            # fresh engine vector).
            flags = tuple(self._col_flags.get(col, False)
                          for col in plan.cols)
            events, final = plan.cost_events(flags)
            for col, flag in zip(plan.cols, final):
                if col in self._col_flags:
                    self._col_flags[col] = flag
            memo: dict[tuple[int, int], tuple[Stats, int]] = {}
            for index, n_rows in enumerate(self._shard_rows):
                state = (n_rows, self._tba_offsets[index])
                costed = memo.get(state)
                if costed is None:
                    costed = plan_stats(self._spec, events, n_rows,
                                        tba_offset=state[1])
                    memo[state] = costed
                shard_delta, self._tba_offsets[index] = costed
                delta.iadd(shard_delta)
            self._ledger.iadd(delta)
        return delta

    # ------------------------------------------------------------------
    # reference backend
    # ------------------------------------------------------------------
    def _run_batch_reference(self, pending: dict[str, list[int]],
                             plans) -> dict[str, tuple]:
        """Engine replay: one thread-pool task per (query, shard)."""
        futures: dict[str, list] = {}
        for key, positions in pending.items():
            plan = plans[positions[0]][1]
            futures[key] = [
                self._pool.submit(self._run_on_shard, shard, plan)
                for shard in self._shards
            ]
        outputs: dict[str, tuple] = {}
        for key in pending:
            start = time.perf_counter()
            shard_outputs = [future.result() for future in futures[key]]
            elapsed = time.perf_counter() - start
            delta = Stats()
            for _, shard_delta in shard_outputs:
                delta.iadd(shard_delta)
            if self.functional:
                bits = np.concatenate(
                    [bits for bits, _ in shard_outputs])
                count = int(bits.sum())
            else:
                bits, count = None, None
            outputs[key] = (bits, count, delta, elapsed)
        return outputs

    def _run_on_shard(self, shard: _Shard, plan: CompiledQuery):
        with shard.lock:
            engine = shard.engine
            before = engine.stats.copy()
            vec = plan.run(engine, shard.columns, n_bits=shard.n_bits)
            bits = None
            if self.functional:
                bits = vec.logical_bits()[: shard.n_bits]
            engine.free(vec)
            delta = engine.stats.minus(before)
        return bits, delta

    # ------------------------------------------------------------------
    # result cache
    # ------------------------------------------------------------------
    def _cache_get(self, key: str) -> _CacheEntry | None:
        if self._cache_size <= 0:
            return None
        with self._cache_lock:
            entry = self._cache.get(key)
            if entry is not None:
                self._cache.move_to_end(key)
                self.cache_hits += 1
            else:
                self.cache_misses += 1
            return entry

    def _cache_put(self, key: str, result: QueryResult,
                   generation: int) -> None:
        if self._cache_size <= 0:
            return
        with self._cache_lock:
            if generation != self._generation:
                return  # table mutated while executing: result is stale
            # Cache a private copy: the caller keeps (and may mutate)
            # the returned result object.
            entry = QueryResult(**{
                **result.__dict__,
                "bits": None if result.bits is None
                else result.bits.copy(),
                "detail": dict(result.detail),
            })
            self._cache[key] = _CacheEntry(entry)
            self._cache.move_to_end(key)
            while len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)

    def _invalidate_cache(self) -> None:
        """Any column mutation invalidates cached results."""
        with self._cache_lock:
            self._generation += 1
            self._cache.clear()

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Aggregate service counters and the merged engine ledger."""
        merged = Stats()
        if self.backend == "vector":
            with self._stats_lock:
                merged = self._ledger.copy()
                rows_used = self._rows_used
        else:
            rows_used = 0
            for shard in self._shards:
                with shard.lock:
                    merged.iadd(shard.engine.stats)
                    rows_used += shard.engine.allocator.rows_used
        return {
            "technology": self.technology,
            "backend": self.backend,
            "n_bits": self.n_bits,
            "n_shards": self.n_shards,
            "columns": len(self._columns),
            "rows_used": rows_used,
            "queries_served": self.queries_served,
            "programs_run": self.programs_run,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cached_results": len(self._cache),
            "energy_total_nj": merged.total_energy_j * 1e9,
            "cycles_total": merged.total_cycles,
        }

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            if self._pool is not None:
                self._pool.shutdown(wait=True)

    def _ensure_open(self) -> None:
        if self._closed:
            raise QueryError("service is closed")

    def __enter__(self) -> "BitwiseService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
