"""Sharded bulk-bitwise query service over the expression compiler.

:class:`BitwiseService` owns a table of named bit columns sharded
across independent engine instances (one bank-group-like slice per
shard), compiles incoming queries once (plan cache keyed on the
canonicalized expression), executes batches across shards on a thread
pool, attributes energy/cycle/primitive costs per query, and serves
repeated queries from an LRU result cache — the production-shape layer
the ROADMAP's heavy-traffic north star asks for, in the spirit of
X-SRAM's compound in-memory ops and SLIM's logic-in-memory pipelines.

Columns are only ever mutated value-preservingly by queries (complement
-flag re-encodings); per-shard locks serialize engine access, so
concurrent queries over shared columns are safe.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.arch.bank import BitVector
from repro.arch.commands import Stats
from repro.arch.engine import BulkEngine
from repro.arch.expr import (
    CompiledQuery,
    Expr,
    _as_expr,
    canonical_key,
    compile_expr,
)
from repro.arch.primitives import make_engine
from repro.arch.spec import MemorySpec
from repro.errors import QueryError

__all__ = ["BitwiseService", "QueryResult"]

_WORD_BITS = 64


@dataclass
class QueryResult:
    """Outcome of one query against the service."""

    query: str                      #: query as submitted
    key: str                        #: canonical (cache) key
    count: int | None               #: popcount of the result (functional)
    bits: np.ndarray | None         #: result bits (functional mode)
    cache_hit: bool
    primitives_per_row: int         #: compiled native primitives / row
    naive_primitives_per_row: int   #: naive-chaining baseline / row
    energy_j: float                 #: attributed in-memory energy
    cycles: int                     #: attributed command cycles
    elapsed_s: float                #: host wall-clock (all shards)
    shards: int                     #: shards that executed the query
    detail: dict = field(default_factory=dict)


@dataclass
class _CacheEntry:
    result: QueryResult


class _Shard:
    """One engine slice: a private engine, its columns, and a lock."""

    def __init__(self, index: int, engine: BulkEngine,
                 span: tuple[int, int]) -> None:
        self.index = index
        self.engine = engine
        self.span = span            # [start, stop) bits of the table
        self.columns: dict[str, BitVector] = {}
        self.anchor: BitVector | None = None
        self.lock = threading.Lock()

    @property
    def n_bits(self) -> int:
        return self.span[1] - self.span[0]


class BitwiseService:
    """A served table of bit columns with compiled bulk-bitwise queries.

    Parameters
    ----------
    technology:
        ``"feram-2tnc"`` (default) or ``"dram"``.
    n_bits:
        Table width — every column holds this many bits.
    n_shards:
        Engine slices the table is striped over (word-aligned spans);
        widths below ``64 * n_shards`` use fewer shards.
    functional:
        Bit-exact payloads (default).  ``False`` runs counting-mode
        accounting only (GB-scale tables).
    cache_size:
        LRU result-cache capacity (0 disables caching).
    """

    def __init__(self, technology: str = "feram-2tnc", *,
                 n_bits: int, n_shards: int = 4,
                 functional: bool = True,
                 spec: MemorySpec | None = None,
                 cache_size: int = 64,
                 max_workers: int | None = None) -> None:
        if n_bits <= 0:
            raise QueryError("table width must be positive")
        if n_shards <= 0:
            raise QueryError("need at least one shard")
        self.technology = technology
        self.n_bits = int(n_bits)
        self.functional = functional
        self._shards = [
            _Shard(i, make_engine(technology, functional=functional,
                                  spec=spec), span)
            for i, span in enumerate(self._spans(self.n_bits, n_shards))
        ]
        self.n_shards = len(self._shards)
        self._inverting = self._shards[0].engine._native_inverting()
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers or self.n_shards,
            thread_name_prefix="bitwise-shard")
        self._columns: dict[str, int] = {}
        # Serializes table DDL (create/drop): concurrent clients of the
        # threaded TCP server must not interleave the check-then-act on
        # self._columns (a lost race would overwrite shard vectors and
        # leak allocator rows).
        self._table_lock = threading.RLock()
        self._plans: dict[str, CompiledQuery] = {}
        self._plans_lock = threading.Lock()
        self._cache: OrderedDict[str, _CacheEntry] = OrderedDict()
        self._cache_size = int(cache_size)
        self._cache_lock = threading.Lock()
        self._generation = 0  # bumped on every column mutation
        self.cache_hits = 0
        self.cache_misses = 0
        self.queries_served = 0
        self._closed = False

    # ------------------------------------------------------------------
    # sharding geometry
    # ------------------------------------------------------------------
    @staticmethod
    def _spans(n_bits: int, n_shards: int) -> list[tuple[int, int]]:
        """Word-aligned contiguous shard spans covering ``n_bits``."""
        n_words = (n_bits + _WORD_BITS - 1) // _WORD_BITS
        n_shards = min(n_shards, n_words)
        base, extra = divmod(n_words, n_shards)
        spans = []
        start = 0
        for index in range(n_shards):
            words = base + (1 if index < extra else 0)
            stop = min(start + words * _WORD_BITS, n_bits)
            spans.append((start, stop))
            start = stop
        return spans

    # ------------------------------------------------------------------
    # column management
    # ------------------------------------------------------------------
    def create_column(self, name: str, bits: np.ndarray | None = None,
                      ) -> None:
        """Ingest a column (host row writes are charged to each shard).

        ``bits`` may be omitted in counting mode (placeholder rows)."""
        self._ensure_open()
        with self._table_lock:
            if name in self._columns:
                raise QueryError(f"column {name!r} already exists")
            if bits is not None:
                bits = np.asarray(bits).astype(np.uint8)
                if bits.ndim != 1 or bits.size != self.n_bits:
                    raise QueryError(
                        f"column {name!r} must be a flat array of "
                        f"{self.n_bits} bits, got shape {bits.shape}")
            elif self.functional:
                raise QueryError(
                    "functional service requires explicit column bits")
            for shard in self._shards:
                start, stop = shard.span
                with shard.lock:
                    if self.functional:
                        vec = shard.engine.load(bits[start:stop], name,
                                                group_with=shard.anchor)
                    else:
                        vec = shard.engine.allocate(
                            stop - start, name, group_with=shard.anchor)
                    shard.anchor = shard.anchor or vec
                    shard.columns[name] = vec
            self._columns[name] = self.n_bits
            self._invalidate_cache()

    def random_column(self, name: str, density: float = 0.5,
                      seed: int | None = None) -> None:
        """Convenience: a random column with the given 1-density."""
        if self.functional:
            rng = np.random.default_rng(seed)
            self.create_column(
                name, (rng.random(self.n_bits) < density).astype(np.uint8))
        else:
            self.create_column(name)

    def drop_column(self, name: str) -> None:
        self._ensure_open()
        with self._table_lock:
            if name not in self._columns:
                raise QueryError(f"no column {name!r}")
            for shard in self._shards:
                with shard.lock:
                    vec = shard.columns.pop(name)
                    shard.engine.free(vec)
                    if shard.anchor is vec:
                        shard.anchor = next(
                            iter(shard.columns.values()), None)
            del self._columns[name]
            self._invalidate_cache()

    @property
    def columns(self) -> tuple[str, ...]:
        return tuple(self._columns)

    def column_bits(self, name: str) -> np.ndarray | None:
        """Current logical value of a column (functional mode)."""
        if name not in self._columns:
            raise QueryError(f"no column {name!r}")
        if not self.functional:
            return None
        parts = []
        for shard in self._shards:
            with shard.lock:
                parts.append(shard.columns[name].logical_bits()
                             [: shard.n_bits])
        return np.concatenate(parts)

    # ------------------------------------------------------------------
    # query execution
    # ------------------------------------------------------------------
    def compile(self, query: "Expr | str") -> CompiledQuery:
        """Compile (or fetch the cached plan for) a query."""
        expr = _as_expr(query)
        key = canonical_key(expr)
        with self._plans_lock:
            plan = self._plans.get(key)
        if plan is None:
            plan = compile_expr(expr, inverting=self._inverting)
            with self._plans_lock:
                self._plans.setdefault(key, plan)
        return plan

    def query(self, query: "Expr | str", *,
              use_cache: bool = True) -> QueryResult:
        """Execute one query (see :meth:`execute` for batches)."""
        return self.execute([query], use_cache=use_cache)[0]

    def execute(self, queries, *,
                use_cache: bool = True) -> list[QueryResult]:
        """Execute a batch of queries, fanned out across the shards.

        Every (query, shard) pair is a thread-pool task; per-shard
        locks serialize engine access, so distinct shards run in
        parallel while queries sharing a shard pipeline behind each
        other.  Results are attributed per query (energy, cycles,
        native primitives) and cached by canonical key.
        """
        self._ensure_open()
        plans: list[tuple[str, CompiledQuery | None, QueryResult | None]]
        plans = []
        pending: dict[str, list[int]] = {}
        for position, query in enumerate(queries):
            text = query if isinstance(query, str) else str(query)
            plan = self.compile(query)
            unknown = [c for c in plan.cols if c not in self._columns]
            if unknown:
                raise QueryError(f"unbound column(s): {unknown}")
            cached = self._cache_get(plan.key) if use_cache else None
            if cached is not None:
                entry = cached.result
                # Fresh bits/detail per hit: a caller mutating its
                # result must not poison the cached copy (or vice
                # versa).
                result = QueryResult(**{
                    **entry.__dict__,
                    "query": text, "cache_hit": True,
                    "bits": None if entry.bits is None
                    else entry.bits.copy(),
                    "detail": dict(entry.detail),
                    "energy_j": 0.0, "cycles": 0, "elapsed_s": 0.0,
                })
                plans.append((text, None, result))
                continue
            plans.append((text, plan, None))
            pending.setdefault(plan.key, []).append(position)

        # Fan out: one task per (distinct uncached query, shard).  The
        # generation snapshot keeps a result computed before a
        # concurrent column mutation out of the (already invalidated)
        # cache.
        with self._cache_lock:
            generation = self._generation
        futures: dict[str, list] = {}
        for key, positions in pending.items():
            plan = plans[positions[0]][1]
            futures[key] = [
                self._pool.submit(self._run_on_shard, shard, plan)
                for shard in self._shards
            ]

        results: list[QueryResult | None] = [entry[2] for entry in plans]
        for key, positions in pending.items():
            text = plans[positions[0]][0]
            plan = plans[positions[0]][1]
            start = time.perf_counter()
            shard_outputs = [future.result() for future in futures[key]]
            elapsed = time.perf_counter() - start
            delta = Stats()
            for _, shard_delta in shard_outputs:
                delta = delta.merged_with(shard_delta)
            if self.functional:
                bits = np.concatenate(
                    [bits for bits, _ in shard_outputs])
                count = int(bits.sum())
            else:
                bits, count = None, None
            result = QueryResult(
                query=text, key=plan.key, count=count, bits=bits,
                cache_hit=False,
                primitives_per_row=plan.primitives,
                naive_primitives_per_row=plan.naive_primitives,
                energy_j=delta.total_energy_j,
                cycles=delta.total_cycles,
                elapsed_s=elapsed,
                shards=len(shard_outputs),
                detail=delta.summary(),
            )
            if use_cache:
                self._cache_put(plan.key, result, generation)
            results[positions[0]] = result
            # Canonically-equal duplicates in the batch get their own
            # result objects: correct query label, private bits.
            for position in positions[1:]:
                results[position] = QueryResult(**{
                    **result.__dict__,
                    "query": plans[position][0],
                    "bits": None if result.bits is None
                    else result.bits.copy(),
                    "detail": dict(result.detail),
                })
        with self._cache_lock:
            self.queries_served += len(plans)
        return results  # type: ignore[return-value]

    def _run_on_shard(self, shard: _Shard, plan: CompiledQuery):
        with shard.lock:
            engine = shard.engine
            before = engine.stats.copy()
            vec = plan.run(engine, shard.columns, n_bits=shard.n_bits)
            bits = None
            if self.functional:
                bits = vec.logical_bits()[: shard.n_bits]
            engine.free(vec)
            delta = engine.stats.minus(before)
        return bits, delta

    # ------------------------------------------------------------------
    # result cache
    # ------------------------------------------------------------------
    def _cache_get(self, key: str) -> _CacheEntry | None:
        if self._cache_size <= 0:
            return None
        with self._cache_lock:
            entry = self._cache.get(key)
            if entry is not None:
                self._cache.move_to_end(key)
                self.cache_hits += 1
            else:
                self.cache_misses += 1
            return entry

    def _cache_put(self, key: str, result: QueryResult,
                   generation: int) -> None:
        if self._cache_size <= 0:
            return
        with self._cache_lock:
            if generation != self._generation:
                return  # table mutated while executing: result is stale
            # Cache a private copy: the caller keeps (and may mutate)
            # the returned result object.
            entry = QueryResult(**{
                **result.__dict__,
                "bits": None if result.bits is None
                else result.bits.copy(),
                "detail": dict(result.detail),
            })
            self._cache[key] = _CacheEntry(entry)
            self._cache.move_to_end(key)
            while len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)

    def _invalidate_cache(self) -> None:
        """Any column mutation invalidates cached results."""
        with self._cache_lock:
            self._generation += 1
            self._cache.clear()

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Aggregate service counters and the merged engine ledger."""
        merged = Stats()
        rows_used = 0
        for shard in self._shards:
            with shard.lock:
                merged = merged.merged_with(shard.engine.stats)
                rows_used += shard.engine.allocator.rows_used
        return {
            "technology": self.technology,
            "n_bits": self.n_bits,
            "n_shards": self.n_shards,
            "columns": len(self._columns),
            "rows_used": rows_used,
            "queries_served": self.queries_served,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cached_results": len(self._cache),
            "energy_total_nj": merged.total_energy_j * 1e9,
            "cycles_total": merged.total_cycles,
        }

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._pool.shutdown(wait=True)

    def _ensure_open(self) -> None:
        if self._closed:
            raise QueryError("service is closed")

    def __enter__(self) -> "BitwiseService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
